//! End-to-end writer/reader tests over real temp directories.

use crate::{StoreConfig, StoreError, StoreReader, StoreWriter};
use scap::{StreamSnapshot, StreamUid};
use scap_faults::{FaultPlan, StoreFault, StoreFaultConfig};
use scap_flow::{DirStats, StreamErrors, StreamStatus};
use scap_telemetry::Metric;
use scap_wire::{Direction, FlowKey, Transport};
use std::path::PathBuf;

/// A fresh per-test temp directory (no wall clock: keyed on pid + name).
fn tmp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("scap-store-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn snap(uid: StreamUid, port: u16, priority: u8, first_ts: u64, bytes: u64) -> StreamSnapshot {
    let mut dirs = [DirStats::default(), DirStats::default()];
    dirs[0].total_bytes = bytes;
    dirs[0].total_pkts = 1 + bytes / 1000;
    dirs[0].captured_bytes = bytes;
    StreamSnapshot {
        uid,
        key: FlowKey::new_v4(
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            40000 + uid as u16,
            port,
            Transport::Tcp,
        ),
        first_dir: Direction::Forward,
        status: StreamStatus::ClosedFin,
        errors: StreamErrors::default(),
        priority,
        cutoff_exceeded: false,
        dirs,
        first_ts_ns: first_ts,
        last_ts_ns: first_ts + 1_000_000,
        chunks: 1,
        processing_time_ns: 0,
        resume_gap_bytes: 0,
    }
}

fn payload(uid: StreamUid, len: usize) -> Vec<u8> {
    (0..len).map(|i| (uid as usize * 31 + i) as u8).collect()
}

fn archive_one(w: &mut StoreWriter, s: &StreamSnapshot, fwd: &[u8], rev: &[u8]) {
    w.stream_created(s);
    if !fwd.is_empty() {
        w.stream_data(s, Direction::Forward, fwd, 0);
    }
    if !rev.is_empty() {
        w.stream_data(s, Direction::Reverse, rev, 0);
    }
    w.stream_terminated(s).unwrap();
}

#[test]
fn round_trip_bytes_and_metadata() {
    let dir = tmp_dir("roundtrip");
    let mut w = StoreWriter::open(StoreConfig::new(&dir)).unwrap();
    let s1 = snap(1, 80, 2, 1_000, 500);
    let s2 = snap(2, 53, 0, 2_000, 100);
    archive_one(&mut w, &s1, &payload(1, 500), &payload(101, 200));
    archive_one(&mut w, &s2, &payload(2, 100), &[]);
    let stats = w.finish().unwrap();
    assert_eq!(stats.streams_archived, 2);
    assert_eq!(stats.bytes_archived, 800);
    assert_eq!(stats.write_errors, 0);
    let tele = w.telemetry_snapshot();
    assert_eq!(tele.total(Metric::StoreStreamsArchived), 2);
    assert_eq!(tele.total(Metric::StoreBytesWritten), 800);
    drop(w);

    let r = StoreReader::open(&dir).unwrap();
    assert_eq!(r.len(), 2);
    let rec = r.get(1).unwrap();
    assert_eq!(rec.key, s1.key);
    assert_eq!(rec.priority, 2);
    assert_eq!(rec.status, StreamStatus::ClosedFin);
    assert_eq!(rec.dirs[0].captured_bytes, 500);
    let data = r.read_stream(1).unwrap();
    assert_eq!(data[0], payload(1, 500));
    assert_eq!(data[1], payload(101, 200));
    assert_eq!(r.read_stream(2).unwrap()[1], Vec::<u8>::new());

    // Point lookup works from either orientation.
    assert_eq!(r.lookup(&s1.key).len(), 1);
    assert_eq!(r.lookup(&s1.key.reversed()).len(), 1);
    // Index-only queries.
    let hits = r.query("port 80").unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].uid, 1);
    assert!(r.query("port 9999").unwrap().is_empty());
    assert!(r.query("port &&").is_err());
    // Time-range scans.
    assert_eq!(r.time_range(0, 1_500).len(), 1);
    assert_eq!(r.time_range(0, u64::MAX).len(), 2);
    assert!(r.time_range(3_100_000, u64::MAX).is_empty());

    let report = r.verify().unwrap();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.frames_valid, 3);
    assert_eq!(report.orphan_frames, 0);
}

#[test]
fn chunk_overlap_and_gap_placement() {
    let dir = tmp_dir("placement");
    let mut w = StoreWriter::open(StoreConfig::new(&dir)).unwrap();
    let s = snap(7, 80, 0, 0, 30);
    w.stream_created(&s);
    w.stream_data(&s, Direction::Forward, b"hello ", 0);
    w.stream_data(&s, Direction::Forward, b"world", 6);
    // Overlap: rewrite of an already-delivered region wins.
    w.stream_data(&s, Direction::Forward, b"W", 6);
    // Gap: skipped hole is zero-filled.
    w.stream_data(&s, Direction::Forward, b"!", 13);
    w.stream_terminated(&s).unwrap();
    drop(w);
    let r = StoreReader::open(&dir).unwrap();
    assert_eq!(r.read_stream(7).unwrap()[0], b"hello World\0\0!");
}

#[test]
fn segment_rotation_spreads_streams_across_files() {
    let dir = tmp_dir("rotation");
    let mut w = StoreWriter::open(StoreConfig::new(&dir).segment_bytes(1_000)).unwrap();
    for uid in 1..=6u64 {
        let s = snap(uid, 80, 0, uid * 1_000, 900);
        archive_one(&mut w, &s, &payload(uid, 900), &[]);
    }
    let stats = w.finish().unwrap();
    assert!(stats.segments_created >= 3, "{stats:?}");
    drop(w);
    let r = StoreReader::open(&dir).unwrap();
    assert_eq!(r.len(), 6);
    for uid in 1..=6u64 {
        assert_eq!(r.read_stream(uid).unwrap()[0], payload(uid, 900));
    }
    assert!(r.verify().unwrap().is_clean());
}

#[test]
fn retention_prunes_lowest_priority_first_and_compaction_reclaims() {
    let dir = tmp_dir("retention");
    // Budget fits two 600-byte streams, not three.
    let mut w = StoreWriter::open(StoreConfig::new(&dir).disk_budget(1_400)).unwrap();
    archive_one(&mut w, &snap(1, 80, 2, 1_000, 600), &payload(1, 600), &[]);
    archive_one(&mut w, &snap(2, 53, 0, 2_000, 600), &payload(2, 600), &[]);
    // Third stream exceeds the budget: the priority-0 stream (uid 2)
    // must be the victim, not the older high-priority one.
    archive_one(&mut w, &snap(3, 443, 1, 3_000, 600), &payload(3, 600), &[]);
    let before = std::fs::metadata(crate::segment_path(&dir, 0))
        .unwrap()
        .len();
    let stats = w.finish().unwrap();
    assert_eq!(stats.streams_pruned, 1);
    assert_eq!(stats.bytes_pruned, 600);
    assert_eq!(stats.by_priority.get(&0).unwrap().pruned, 1);
    assert_eq!(stats.by_priority.get(&2).unwrap().pruned, 0);
    assert!((stats.discard_ratio(0) - 1.0).abs() < f64::EPSILON);
    // finish() compacted the tombstone away and reclaimed segment bytes.
    assert!(stats.bytes_reclaimed > 0, "{stats:?} (seg was {before}B)");
    drop(w);

    let r = StoreReader::open(&dir).unwrap();
    assert_eq!(r.len(), 2);
    assert!(r.get(2).is_none());
    assert_eq!(r.read_stream(1).unwrap()[0], payload(1, 600));
    assert_eq!(r.read_stream(3).unwrap()[0], payload(3, 600));
    let report = r.verify().unwrap();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.orphan_frames, 0); // compaction left no dead frames
}

#[test]
fn tenant_shares_split_the_budget_and_isolate_retention() {
    let dir = tmp_dir("tenant-share");
    let base = StoreConfig::new(&dir)
        .segment_bytes(4096)
        .disk_budget(2_000);

    // Share math: permille of the pool, directory per tenant, clamp at
    // 1000‰; an unlimited pool stays unlimited.
    let a_cfg = base.tenant_share("alpha", 700);
    let b_cfg = base.tenant_share("beta", 300);
    assert_eq!(a_cfg.disk_budget, Some(1_400));
    assert_eq!(b_cfg.disk_budget, Some(600));
    assert_eq!(a_cfg.dir, dir.join("alpha"));
    assert_eq!(a_cfg.segment_bytes, 4096);
    assert_eq!(base.tenant_share("all", 2000).disk_budget, Some(2_000));
    assert_eq!(
        StoreConfig::new(&dir).tenant_share("x", 10).disk_budget,
        None
    );

    // Isolation: beta overruns its 600-byte share and prunes its own
    // oldest stream; alpha's archive is untouched.
    let mut a = StoreWriter::open(a_cfg).unwrap();
    let mut b = StoreWriter::open(b_cfg).unwrap();
    archive_one(&mut a, &snap(1, 80, 0, 1_000, 600), &payload(1, 600), &[]);
    archive_one(&mut b, &snap(2, 53, 0, 2_000, 400), &payload(2, 400), &[]);
    archive_one(&mut b, &snap(3, 53, 0, 3_000, 400), &payload(3, 400), &[]);
    let a_stats = a.finish().unwrap();
    let b_stats = b.finish().unwrap();
    assert_eq!(a_stats.streams_pruned, 0);
    assert_eq!(b_stats.streams_pruned, 1);
    drop((a, b));

    let ra = StoreReader::open(dir.join("alpha")).unwrap();
    let rb = StoreReader::open(dir.join("beta")).unwrap();
    assert_eq!(ra.len(), 1);
    assert_eq!(ra.read_stream(1).unwrap()[0], payload(1, 600));
    assert_eq!(rb.len(), 1);
    assert!(rb.get(2).is_none(), "beta's oldest stream was its victim");
}

#[test]
fn torn_append_is_recovered_and_committed_streams_survive() {
    let dir = tmp_dir("torn");
    let mut w = StoreWriter::open(StoreConfig::new(&dir)).unwrap();
    archive_one(&mut w, &snap(1, 80, 0, 1_000, 400), &payload(1, 400), &[]);
    // Arm a plan that tears the very next append.
    let mut plan = FaultPlan::new(99);
    plan.store = StoreFaultConfig {
        torn_append_prob: 1.0,
        kill_after_appends: 0,
    };
    w.attach_faults(&plan);
    let s2 = snap(2, 80, 0, 2_000, 400);
    w.stream_created(&s2);
    w.stream_data(&s2, Direction::Forward, &payload(2, 400), 0);
    match w.stream_terminated(&s2) {
        Err(StoreError::Injected(StoreFault::TornAppend)) => {}
        other => panic!("expected torn append, got {other:?}"),
    }
    assert_eq!(w.stats().write_errors, 1);
    // The writer is dead now.
    assert!(matches!(
        w.stream_terminated(&snap(3, 80, 0, 3_000, 1)),
        Err(StoreError::Dead)
    ));
    drop(w);

    // Before recovery the reader sees the torn tail.
    let r = StoreReader::open(&dir).unwrap();
    let report = r.verify().unwrap();
    assert!(!report.is_clean());
    assert!(report.segment_torn_bytes > 0);
    assert_eq!(r.len(), 1); // the committed stream is still indexed
    drop(r);

    // Writer reopen truncates exactly the torn tail.
    let w2 = StoreWriter::open(StoreConfig::new(&dir)).unwrap();
    assert!(w2.stats().torn_tail_bytes_recovered > 0);
    assert_eq!(w2.live_streams(), 1);
    drop(w2);
    let r2 = StoreReader::open(&dir).unwrap();
    let report2 = r2.verify().unwrap();
    assert!(report2.is_clean(), "{report2}");
    assert_eq!(r2.read_stream(1).unwrap()[0], payload(1, 400));
}

#[test]
fn kill_leaves_orphan_frame_but_no_record() {
    let dir = tmp_dir("kill");
    let mut w = StoreWriter::open(StoreConfig::new(&dir)).unwrap();
    let mut plan = FaultPlan::new(7);
    plan.store = StoreFaultConfig {
        torn_append_prob: 0.0,
        kill_after_appends: 1,
    };
    w.attach_faults(&plan);
    archive_one(&mut w, &snap(1, 80, 0, 1_000, 300), &payload(1, 300), &[]);
    let s2 = snap(2, 80, 0, 2_000, 300);
    w.stream_created(&s2);
    w.stream_data(&s2, Direction::Forward, &payload(2, 300), 0);
    assert!(matches!(
        w.stream_terminated(&s2),
        Err(StoreError::Injected(StoreFault::Kill))
    ));
    drop(w);

    // The killed frame is intact on disk but unreferenced: an orphan,
    // not corruption — and uid 2 is nowhere in the index.
    let w2 = StoreWriter::open(StoreConfig::new(&dir)).unwrap();
    assert_eq!(w2.stats().torn_tail_bytes_recovered, 0);
    drop(w2);
    let r = StoreReader::open(&dir).unwrap();
    assert_eq!(r.len(), 1);
    assert!(r.get(2).is_none());
    let report = r.verify().unwrap();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.orphan_frames, 1);
    assert_eq!(r.read_stream(1).unwrap()[0], payload(1, 300));
}

#[test]
fn export_pcap_round_trips_payload() {
    let dir = tmp_dir("export");
    let mut w = StoreWriter::open(StoreConfig::new(&dir)).unwrap();
    let s = snap(1, 80, 0, 1_000_000, 3_000);
    archive_one(&mut w, &s, &payload(1, 3_000), &payload(9, 100));
    w.finish().unwrap();
    drop(w);
    let r = StoreReader::open(&dir).unwrap();
    let mut buf = Vec::new();
    let n = r.export_pcap(&[1], &mut buf, 65535).unwrap();
    assert_eq!(n, 4); // 3000/1400 -> 3 forward chunks + 1 reverse
    let pkts = scap_trace::pcap::PcapReader::new(&buf[..])
        .unwrap()
        .read_all()
        .unwrap();
    assert_eq!(pkts.len(), 4);
    // Reparse the synthesized frames and reassemble the forward payload.
    let mut fwd = Vec::new();
    for p in &pkts {
        let parsed = scap_wire::parse_frame(&p.frame).unwrap();
        let key = parsed.key.unwrap();
        if key == s.key {
            fwd.extend_from_slice(&p.frame[parsed.payload_off..][..parsed.payload_len]);
        }
    }
    assert_eq!(fwd, payload(1, 3_000));
}

#[test]
fn federated_query_merges_shards_and_reports_partial() {
    use crate::federated::{FederatedReader, ShardOutcome};
    use std::time::Duration;

    let root = tmp_dir("federated");
    // Three shard archives, one stream each, ports 80 / 443 / 80.
    for (shard, port) in [(0u64, 80u16), (1, 443), (2, 80)] {
        let dir = root.join(format!("shard-{shard}"));
        let mut w = StoreWriter::open(StoreConfig::new(&dir)).unwrap();
        let s = snap(shard + 1, port, 0, 1_000_000 * (shard + 1), 2_000);
        archive_one(&mut w, &s, &payload(shard + 1, 2_000), &[]);
        w.finish().unwrap();
    }

    let fed = FederatedReader::open(&root).unwrap();
    assert_eq!(fed.nshards(), 3);
    let res = fed.query("port 80", Duration::from_secs(30));
    assert!(!res.partial, "healthy shards must give a complete result");
    assert_eq!(res.records.len(), 2);
    assert_eq!(res.ok_shards(), 3);
    let shards: Vec<usize> = res.records.iter().map(|(s, _)| *s).collect();
    assert_eq!(shards, vec![0, 2]);

    // Lose one shard's archive entirely (a garbage index would merely
    // be truncated by torn-tail recovery): the query must go partial,
    // name the broken shard, and still return the healthy records.
    std::fs::remove_dir_all(root.join("shard-1")).unwrap();
    let res = fed.query("port 80", Duration::from_secs(30));
    assert!(res.partial, "a broken shard must mark the result partial");
    assert_eq!(res.records.len(), 2, "healthy shards still answer");
    assert!(matches!(res.statuses[1].outcome, ShardOutcome::Error(_)));

    // A zero budget times every surviving shard out: explicit, not
    // silent (the lost shard still reports its error).
    let res = fed.query("port 80", Duration::ZERO);
    assert!(res.partial);
    assert_eq!(res.records.len(), 0);
    assert!(!res
        .statuses
        .iter()
        .any(|s| matches!(s.outcome, ShardOutcome::Ok(_))));
    assert_eq!(res.statuses[0].outcome, ShardOutcome::TimedOut);
    assert_eq!(res.statuses[2].outcome, ShardOutcome::TimedOut);
}
