//! Fixed 64-bucket log2 histograms.
//!
//! Bucket 0 holds exactly the value 0; bucket `b ≥ 1` holds the range
//! `[2^(b-1), 2^b - 1]` (the top bucket is open-ended). Recording a value
//! is therefore one `leading_zeros` and one indexed add — cheap enough
//! for the per-packet path.

use crate::MetricCell;

/// Number of histogram buckets (covers the full `u64` range).
pub const BUCKETS: usize = 64;

/// The bucket a value lands in.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive `(low, high)` range of values a bucket holds.
pub fn bucket_range(b: usize) -> (u64, u64) {
    assert!(b < BUCKETS, "bucket {b} out of range");
    match b {
        0 => (0, 0),
        63 => (1u64 << 62, u64::MAX),
        _ => (1u64 << (b - 1), (1u64 << b) - 1),
    }
}

/// A log2 histogram over generic cells (plain or atomic).
pub struct Hist64<C> {
    buckets: [C; BUCKETS],
    sum: C,
}

impl<C: MetricCell> Default for Hist64<C> {
    fn default() -> Self {
        Hist64 {
            buckets: std::array::from_fn(|_| C::default()),
            sum: C::default(),
        }
    }
}

impl<C: MetricCell> Hist64<C> {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].add(1);
        self.sum.add(v);
    }

    /// Record `n` observations of the same value in one add — the
    /// batched fast path uses this for amortized per-packet costs.
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        self.buckets[bucket_of(v)].add(n);
        self.sum.add(v.wrapping_mul(n));
    }

    /// Copy the current state out as plain data.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].get()),
            sum: self.sum.get(),
        }
    }
}

/// Plain-data histogram state (what exporters and tests consume).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded values (for means).
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; BUCKETS],
            sum: 0,
        }
    }
}

impl HistSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ≤ q ≤ 1.0`) with linear
    /// interpolation inside the containing bucket: the `r`-th of `c`
    /// observations in bucket `[lo, hi]` is placed at the midpoint of
    /// its 1/c-wide slice (`lo + (hi-lo)·(2r-1)/(2c)`), so a
    /// single-observation bucket estimates its midpoint rather than its
    /// lower bound. The estimate always stays inside the bucket that
    /// holds the true rank-`⌈q·n⌉` sample, i.e. within 2× of the true
    /// quantile. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, c) in self.buckets.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = bucket_range(b);
                let r = rank - seen; // 1-based rank within this bucket
                let width = hi - lo;
                let off = (width as u128 * (2 * r as u128 - 1) / (2 * *c as u128)) as u64;
                return lo + off;
            }
            seen += c;
        }
        bucket_range(BUCKETS - 1).0
    }

    /// Conservative quantile: the lower bound of the containing bucket,
    /// guaranteed ≤ the true quantile. The pulse plane's exemplar
    /// threshold uses this so the tail-sample set is never vacuously
    /// empty (an interpolated estimate can overshoot the true sample
    /// maximum when the quantile bucket is the top occupied one).
    pub(crate) fn quantile_floor(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_range(b).0;
            }
        }
        bucket_range(BUCKETS - 1).0
    }

    /// The lower bound of the bucket containing the `q`-quantile — the
    /// pre-interpolation conservative estimate, kept for callers that
    /// need a value guaranteed ≤ the true quantile.
    #[deprecated(note = "use `quantile`, which interpolates within the bucket")]
    pub fn quantile_lower_bound(&self, q: f64) -> u64 {
        self.quantile_floor(q)
    }

    /// Element-wise accumulate another histogram into this one. The sum
    /// wraps like the recording path does, so merging shard snapshots
    /// of extreme values cannot panic.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.wrapping_add(*b);
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_range(1), (1, 1));
        assert_eq!(bucket_range(2), (2, 3));
        assert_eq!(bucket_range(63).1, u64::MAX);
    }

    proptest! {
        /// Satellite: value → bucket → range round-trip. Every value lands
        /// in a bucket whose range contains it, and both range endpoints
        /// map back to that same bucket.
        #[test]
        fn bucket_round_trip(v in any::<u64>()) {
            let b = bucket_of(v);
            let (lo, hi) = bucket_range(b);
            prop_assert!(lo <= v && v <= hi, "value {v} outside bucket {b} range [{lo},{hi}]");
            prop_assert_eq!(bucket_of(lo), b);
            prop_assert_eq!(bucket_of(hi), b);
        }

        #[test]
        fn buckets_partition_the_u64_line(b in 0usize..BUCKETS) {
            // Adjacent buckets tile the line with no gap or overlap.
            let (lo, hi) = bucket_range(b);
            prop_assert!(lo <= hi);
            if b + 1 < BUCKETS {
                let (next_lo, _) = bucket_range(b + 1);
                prop_assert_eq!(hi + 1, next_lo);
            }
        }
    }

    #[test]
    fn quantiles_and_mean() {
        let h: Hist64<std::cell::Cell<u64>> = Hist64::default();
        for v in [1u64, 1, 1, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum, 1003);
        // p50 falls in bucket 1 (the single-value bucket [1,1]), so
        // interpolation cannot move it; p99 interpolates to the midpoint
        // of 1000's bucket [512,1023] rather than its lower bound.
        assert_eq!(s.quantile(0.5), 1);
        let (lo, hi) = bucket_range(bucket_of(1000));
        assert_eq!(s.quantile(0.99), lo + (hi - lo) / 2);
        #[allow(deprecated)]
        {
            assert_eq!(s.quantile_lower_bound(0.99), lo);
            assert_eq!(s.quantile_lower_bound(0.5), 1);
        }
        assert!((s.mean() - 250.75).abs() < 1e-9);
        assert_eq!(HistSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let a: Hist64<std::cell::Cell<u64>> = Hist64::default();
        let b: Hist64<std::cell::Cell<u64>> = Hist64::default();
        for _ in 0..7 {
            a.record(900);
        }
        b.record_n(900, 7);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    fn hist_of(samples: &[u64]) -> HistSnapshot {
        let h: Hist64<std::cell::Cell<u64>> = Hist64::default();
        for &v in samples {
            h.record(v);
        }
        h.snapshot()
    }

    /// True rank-based quantile of a raw sample set.
    fn true_quantile(samples: &mut [u64], q: f64) -> u64 {
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
        samples[rank - 1]
    }

    proptest! {
        /// Satellite: merging per-shard histograms is commutative and
        /// associative — the fleet harvest may absorb shards in any order.
        #[test]
        fn merge_is_commutative_and_associative(
            a in proptest::collection::vec(any::<u64>(), 0..40),
            b in proptest::collection::vec(any::<u64>(), 0..40),
            c in proptest::collection::vec(any::<u64>(), 0..40),
        ) {
            let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
            // a+b == b+a
            let mut ab = ha.clone();
            ab.merge(&hb);
            let mut ba = hb.clone();
            ba.merge(&ha);
            prop_assert_eq!(&ab, &ba);
            // (a+b)+c == a+(b+c)
            let mut ab_c = ab.clone();
            ab_c.merge(&hc);
            let mut bc = hb.clone();
            bc.merge(&hc);
            let mut a_bc = ha.clone();
            a_bc.merge(&bc);
            prop_assert_eq!(ab_c, a_bc);
        }

        /// Satellite: a merged histogram's quantile estimate lands in the
        /// same log2 bucket as the true quantile of the concatenated
        /// sample streams — i.e. the estimate is bounded within a factor
        /// of two of the exact order statistic, and the interpolated
        /// value never escapes the containing bucket.
        #[test]
        fn merged_quantile_bounds_true_quantile(
            a in proptest::collection::vec(any::<u64>(), 1..60),
            b in proptest::collection::vec(any::<u64>(), 1..60),
            qm in 1u32..1000,
        ) {
            let q = f64::from(qm) / 1000.0;
            let mut merged = hist_of(&a);
            merged.merge(&hist_of(&b));
            let mut all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
            let exact = true_quantile(&mut all, q);
            let est = merged.quantile(q);
            let (lo, hi) = bucket_range(bucket_of(exact));
            prop_assert!(
                lo <= est && est <= hi,
                "estimate {est} escaped bucket [{lo},{hi}] of true quantile {exact}"
            );
            #[allow(deprecated)]
            let cons = merged.quantile_lower_bound(q);
            prop_assert!(cons <= exact, "conservative estimate {cons} > true {exact}");
        }
    }
}
