//! scaptop — a `top`-style live dashboard over a Scap capture.
//!
//! Drives the kernel synchronously over a pcap file (or a synthetic
//! campus trace) and redraws a terminal dashboard every `--interval`
//! packets: per-queue rates, overload-governor level, arena occupancy,
//! the flight recorder's drop breakdown by layer and reason, and the
//! top-K streams by delivered bytes.
//!
//! On a TTY each frame repaints in place (ANSI clear); when stdout is a
//! pipe the frames print sequentially, which is what the CI smoke run
//! consumes. All numbers are keyed on the trace's virtual clock, so the
//! same trace and seed render byte-identical frames; `--delay-ms` adds
//! wall-clock pacing between frames for watching live.
//!
//! ```text
//! scaptop trace.pcap                    # dashboard over a pcap
//! scaptop trace.pcap "tcp and port 80"  # with a BPF filter
//! scaptop --gen 8                       # synthetic 8 MB campus trace
//! scaptop --gen 8 --interval 2000 --topk 5 --cutoff 16384 --delay-ms 100
//! scaptop --scapd /tmp/ctl              # per-tenant panel of a scapd instance
//! scaptop --gen 8 --shards 4            # sharded-fleet panel
//! scaptop --gen 8 --shards 4 --storm    # ... under a seeded shard-kill storm
//! ```
//!
//! With `--shards N` the trace is partitioned across an in-process
//! [`scap::ShardFleet`]: the panel shows each shard's supervisor state,
//! lease age, partition share, respawn/kill counters, and the exact
//! packet/byte loss attributed to its blackouts; `--storm` runs the
//! seeded shard-kill storm on top. The final line checks the fleet
//! conservation identity and the exit code reports it.
//!
//! With `--scapd DIR` scaptop does not capture anything itself: it
//! polls the daemon's `scapd-status.tsv` in the control directory and
//! renders a per-tenant panel — delivered rate, queue depth against
//! the quota cap, quota headroom, and drop attribution (slow-consumer
//! drops vs the tenant's own cutoff discards) — until the daemon
//! writes its `scapd-done` marker.

use scap::telemetry::{Gauge, Metric, Snapshot};
use scap::{DispatchMode, EventKind, ScapConfig, ScapKernel};
use scap_bench::render::{
    bar, latency_panel, mbit_per_sec, permille, rate_per_sec, Frame, LatencyHistory,
};
use scap_flight::{attribution, FlightKind};
use scap_trace::gen::{CampusMix, CampusMixConfig};
use scap_trace::pcap::PcapReader;
use scap_trace::Packet;
use std::collections::HashMap;

fn die(msg: &str) -> ! {
    eprintln!("scaptop: {msg}");
    std::process::exit(2);
}

/// Per-queue counters remembered from the previous frame, for rates.
#[derive(Clone, Copy, Default)]
struct QueuePrev {
    pkts: u64,
    bytes: u64,
}

struct Dashboard {
    interval: u64,
    topk: usize,
    frame: Frame,
    fastpath: bool,
    offload: bool,
    latency: bool,
    latency_hist: LatencyHistory,
    prev_ts_ns: u64,
    prev_fp_pkts: u64,
    prev_evictions: u64,
    prev_queues: Vec<QueuePrev>,
    /// uid -> (flow key, delivered bytes), fed by Data events.
    streams: HashMap<u64, (String, u64)>,
}

impl Dashboard {
    fn render(&mut self, kernel: &ScapKernel, fed: usize, total: usize, now_ns: u64) {
        let snap: Snapshot = kernel.telemetry_snapshot();
        let out = self.frame.begin();
        let dt = (now_ns.saturating_sub(self.prev_ts_ns)) as f64 / 1e9;
        out.push_str(&format!(
            "scaptop — {fed}/{total} packets | trace time {:.3} s | wire {} pkts / {} B | {} streams tracked\n\n",
            now_ns as f64 / 1e9,
            snap.total(Metric::WirePackets),
            snap.total(Metric::WireBytes),
            snap.gauge(0, Gauge::TrackedStreams),
        ));

        // Per-queue delivered rates over the last frame window (virtual
        // time). Delivered counters are sharded per core/queue; wire
        // counters live on shard 0 and show up in the header instead.
        out.push_str(
            "queue delivered      bytes    pkt/s (window)  Mbit/s (window)  streams  backlog\n",
        );
        let nq = kernel.ncores();
        self.prev_queues.resize(nq, QueuePrev::default());
        for q in 0..nq {
            let pkts = snap.counter(q, Metric::DeliveredPackets);
            let bytes = snap.counter(q, Metric::DeliveredBytes);
            let prev = self.prev_queues[q];
            let rate_p = rate_per_sec(pkts - prev.pkts, dt);
            let rate_b = mbit_per_sec(bytes - prev.bytes, dt);
            out.push_str(&format!(
                "  q{q:<3} {pkts:>9} {bytes:>10} {rate_p:>15.0} {rate_b:>16.2} {streams:>8} {backlog:>8}\n",
                streams = kernel.tracked_streams(q),
                backlog = kernel.event_backlog(q),
            ));
            self.prev_queues[q] = QueuePrev { pkts, bytes };
        }
        self.prev_ts_ns = now_ns;

        // Gauges: governor, arena, backlog, ring fill.
        let arena = snap.gauge(0, Gauge::ArenaUsedPermille);
        let ring = snap.gauge(0, Gauge::RingFillPermille);
        out.push_str(&format!(
            "\ngovernor level {}   arena {} [{}]   ring fill {}   event backlog {}   fdir filters {}\n",
            snap.gauge(0, Gauge::GovernorLevel),
            permille(arena),
            bar(arena),
            permille(ring),
            snap.gauge(0, Gauge::EventBacklog),
            snap.gauge(0, Gauge::FdirFilters),
        ));

        // Flow-table health: load factor of the open-addressed index
        // and mean probe length in cache-line groups per lookup.
        let load = snap.gauge(0, Gauge::FlowLoadPermille);
        let probe = snap.gauge(0, Gauge::FlowProbeCentigroups);
        out.push_str(&format!(
            "flow table     load {} [{}]   probe length {}.{:02} groups/lookup\n",
            permille(load),
            bar(load),
            probe / 100,
            probe % 100,
        ));
        // Poll-mode panel: how full the bursts run and the dispatch rate.
        let fp_pkts = snap.total(Metric::FastpathPackets);
        if self.fastpath {
            let fill = snap.gauge(0, Gauge::FastpathFillPermille);
            let fp_rate = rate_per_sec(fp_pkts - self.prev_fp_pkts, dt);
            out.push_str(&format!(
                "fast path      burst fill {} [{}]   {} bursts / {} pkts   {:.0} pkt/s (window)\n",
                permille(fill),
                bar(fill),
                snap.total(Metric::FastpathBursts),
                fp_pkts,
                fp_rate,
            ));
        }
        self.prev_fp_pkts = fp_pkts;

        // Offload panel: how much the NIC-stage rule table is resolving
        // before the host, and its churn under capacity pressure.
        if self.offload {
            let os = kernel.offload_stats();
            let wire = snap.total(Metric::WirePackets).max(1);
            let hit_pct = 100.0 * os.hits as f64 / wire as f64;
            let load = kernel.offload_load_permille();
            let ev_rate = rate_per_sec(os.evictions - self.prev_evictions, dt);
            out.push_str(&format!(
                "offload        rules {}   load {} [{}]   hit rate {:.1}%   evictions {} ({:.0}/s window)\n",
                kernel.offload_rules(),
                permille(load),
                bar(load),
                hit_pct,
                os.evictions,
                ev_rate,
            ));
            out.push_str(&format!(
                "offload mix    drop {} pkts / {} B   sample {} kept / {} shed   bypass {}   mark {}   punt {}\n",
                os.drop_frames,
                os.drop_bytes,
                os.sample_kept_frames,
                os.sample_drop_frames,
                os.bypass_frames,
                os.mark_frames,
                os.control_passthrough,
            ));
            self.prev_evictions = os.evictions;
        }

        // Drop breakdown straight from the flight recorder.
        let events = kernel.flight().events();
        out.push_str("\nloss attribution (flight recorder)\n");
        let rows = attribution(&events);
        if rows.is_empty() {
            out.push_str("  no losses recorded\n");
        }
        for r in rows.iter().take(6) {
            out.push_str(&format!(
                "  {:<8} {:<12} {:<16} {:>8} events {:>10} pkts {:>12} bytes\n",
                r.kind.name(),
                r.layer.name(),
                r.reason.name(),
                r.events,
                r.pkts,
                r.bytes,
            ));
        }
        let overwritten: u64 = kernel.flight().total_dropped();
        if overwritten > 0 {
            out.push_str(&format!(
                "  (+{overwritten} journal events overwritten by ring wrap)\n"
            ));
        }

        // Top-K streams by delivered bytes.
        out.push_str(&format!("\ntop {} streams by delivered bytes\n", self.topk));
        let mut top: Vec<(&u64, &(String, u64))> = self.streams.iter().collect();
        top.sort_by_key(|(uid, (_, b))| (std::cmp::Reverse(*b), **uid));
        for (uid, (key, bytes)) in top.into_iter().take(self.topk) {
            out.push_str(&format!("  uid {uid:<6} {key:<48} {bytes:>12}\n"));
        }

        // Per-stage pulse percentiles with a p99 trend sparkline.
        if self.latency {
            latency_panel(out, &kernel.pulse_snapshot(), &mut self.latency_hist);
        }

        self.frame.flush();
    }
}

/// One parsed row of scapd's status table.
#[derive(Clone, Default)]
struct TenantRow {
    name: String,
    state: String,
    matched: u64,
    delivered: u64,
    drained: u64,
    dropped: u64,
    discarded: u64,
    queue: u64,
    queue_cap: u64,
    headroom: u64,
    strikes: u64,
    spool: u64,
    acked: u64,
}

/// Parse `scapd-status.tsv`: a `# k=v ...` header line followed by a
/// tab-separated tenant table.
fn parse_scapd_status(text: &str) -> (HashMap<String, u64>, Vec<TenantRow>) {
    let mut meta = HashMap::new();
    let mut rows = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix('#') {
            for kv in rest.split_whitespace() {
                if let Some((k, v)) = kv.split_once('=') {
                    if let Ok(n) = v.parse() {
                        meta.insert(k.to_string(), n);
                    }
                }
            }
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() < 14 || cols[0] == "tenant" {
            continue;
        }
        let num = |i: usize| cols[i].trim().parse().unwrap_or(0);
        rows.push(TenantRow {
            name: cols[0].to_string(),
            state: cols[2].to_string(),
            matched: num(3),
            delivered: num(4),
            drained: num(5),
            dropped: num(6),
            discarded: num(7),
            queue: num(8),
            queue_cap: num(9),
            headroom: num(10),
            strikes: num(11),
            spool: num(12),
            acked: num(13),
        });
    }
    (meta, rows)
}

/// The `--scapd DIR` mode: a per-tenant panel over a live (or just
/// finished) scapd control directory.
fn scapd_panel(dir: &str, delay_ms: u64) -> ! {
    let status = std::path::Path::new(dir).join("scapd-status.tsv");
    let done_marker = std::path::Path::new(dir).join("scapd-done");
    let mut frame = Frame::new(delay_ms.max(50));
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let mut prev: HashMap<String, (u64, u64)> = HashMap::new(); // name -> (delivered, ts_ns)
    loop {
        let done = done_marker.exists();
        let text = match std::fs::read_to_string(&status) {
            Ok(t) => t,
            Err(_) if !done => {
                if std::time::Instant::now() > deadline {
                    die("no scapd-status.tsv appeared (is scapd running?)");
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
                continue;
            }
            Err(e) => die(&format!("cannot read {}: {e}", status.display())),
        };
        let (meta, rows) = parse_scapd_status(&text);
        let ts = meta.get("ts_ns").copied().unwrap_or(0);
        let out = frame.begin();
        out.push_str(&format!(
            "scapd @ {dir} — {}/{} packets | trace time {:.3} s | {} tenants{}\n\n",
            meta.get("fed").copied().unwrap_or(0),
            meta.get("total").copied().unwrap_or(0),
            ts as f64 / 1e9,
            rows.len(),
            if done { " | done" } else { "" },
        ));
        out.push_str(
            "tenant       state         delivered   Mbit/s  queue      [cap]    headroom  \
             drop attribution\n",
        );
        for r in &rows {
            let (pd, pt) = prev.get(&r.name).copied().unwrap_or((r.delivered, ts));
            let dt = ts.saturating_sub(pt) as f64 / 1e9;
            let rate = mbit_per_sec(r.delivered - pd, dt);
            let fill = (r.queue * 1000).checked_div(r.queue_cap).unwrap_or(0);
            out.push_str(&format!(
                "{:<12} {:<12} {:>10} {:>8.2} {:>8} [{}] {:>9} {:>6} slow-consumer B, \
                 {} cutoff B, {} strikes\n",
                r.name,
                r.state,
                r.delivered,
                rate,
                r.queue,
                bar(fill),
                r.headroom,
                r.dropped,
                r.discarded,
                r.strikes,
            ));
            out.push_str(&format!(
                "             spooled payload {} B / acked {} B / drained {} B / matched {} B\n",
                r.spool, r.acked, r.drained, r.matched,
            ));
            prev.insert(r.name.clone(), (r.delivered, ts));
        }
        frame.flush();
        if done {
            let verdict = std::fs::read_to_string(&done_marker).unwrap_or_default();
            println!(
                "\nscapd panel complete: {} tenants | daemon says: {}",
                rows.len(),
                verdict.trim(),
            );
            std::process::exit(i32::from(!verdict.starts_with("ok")));
        }
        if std::time::Instant::now() > deadline {
            die("scapd never wrote its done marker");
        }
    }
}

/// The `--shards N` mode: partition the trace across a supervised shard
/// fleet and render the supervisor's per-shard view each interval.
fn shards_panel(
    packets: &[Packet],
    nshards: usize,
    storm_seed: Option<u64>,
    interval: u64,
    delay_ms: u64,
    latency: bool,
) -> ! {
    use scap::{FaultPlan, FleetConfig, ShardFleet};

    let cfg = FleetConfig {
        nshards,
        faults: storm_seed.map(|s| FaultPlan::shard_storm(s, nshards)),
        ..FleetConfig::default()
    };
    let backoff_cap_ns = cfg.backoff_cap_ns;
    let mut fleet = ShardFleet::new(cfg);
    let mut frame = Frame::new(delay_ms);
    let mut latency_hist = LatencyHistory::default();

    let mut render = |fleet: &ShardFleet, fed: usize, now_ns: u64| {
        let fs = fleet.fleet_stats();
        let out = frame.begin();
        out.push_str(&format!(
            "scaptop --shards {nshards} — {fed}/{} packets | trace time {:.3} s | \
             {} flows | {} kills / {} respawns / {} parked\n\n",
            packets.len(),
            now_ns as f64 / 1e9,
            fs.streams_created,
            fs.kills,
            fs.respawns,
            fs.parked,
        ));
        out.push_str(
            "shard  state       lease_age_ms  offered_pkts  part%  tracked  kills  \
             respawns  down_pkts  down_bytes  blackout_ms\n",
        );
        let wire = fs.wire_packets.max(1);
        for st in fleet.status() {
            out.push_str(&format!(
                "  {:<4} {:<11} {:>12.2} {:>13} {:>6.1} {:>8} {:>6} {:>9} {:>10} {:>11} {:>12.2}\n",
                st.shard,
                st.state.name(),
                st.lease_age_ns as f64 / 1e6,
                st.offered_pkts,
                100.0 * st.offered_pkts as f64 / wire as f64,
                st.tracked_streams,
                st.kills,
                st.respawns,
                st.down_pkts,
                st.down_bytes,
                st.max_blackout_ns as f64 / 1e6,
            ));
        }
        out.push_str(&format!(
            "\nfleet  wire {} pkts / {} B | delivered {} | dropped {} | discarded {} | \
             shard-down {} pkts / {} B\n",
            fs.wire_packets,
            fs.wire_bytes,
            fs.delivered_packets,
            fs.dropped_packets,
            fs.discarded_packets,
            fs.shard_down_packets,
            fs.shard_down_bytes,
        ));
        if latency {
            latency_panel(out, &fleet.fleet_pulse(), &mut latency_hist);
        }
        frame.flush();
    };

    let mut now = 0u64;
    for (i, pkt) in packets.iter().enumerate() {
        now = pkt.ts_ns;
        fleet.offer(pkt);
        if ((i + 1) as u64).is_multiple_of(interval) {
            render(&fleet, i + 1, now);
        }
    }
    // Let pending respawns land, then flush and render the final frame.
    fleet.tick(now + backoff_cap_ns + 1);
    fleet.finish(now + backoff_cap_ns + 2);
    render(&fleet, packets.len(), now);

    let fs = fleet.fleet_stats();
    let conserved = fs.packets_conserved() && fs.bytes_conserved();
    println!(
        "\nfleet capture complete: {} packets | {} flows | {} kills / {} respawns / \
         {} parked | worst blackout {:.2} ms | conservation {}",
        fs.wire_packets,
        fs.streams_created,
        fs.kills,
        fs.respawns,
        fs.parked,
        fs.max_blackout_ns as f64 / 1e6,
        if conserved { "ok" } else { "VIOLATED" },
    );
    std::process::exit(i32::from(!conserved));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: scaptop [file.pcap] [filter] [--gen MB] [--interval PKTS] \
             [--topk N] [--cutoff BYTES] [--fastpath] [--offload] [--latency] \
             [--burst FRAMES] [--delay-ms MS] [--seed N] [--scapd DIR] \
             [--shards N [--storm]]"
        );
        std::process::exit(0);
    }

    let mut gen_mb: Option<u64> = None;
    let mut scapd_dir: Option<String> = None;
    let mut interval: u64 = 1000;
    let mut topk: usize = 10;
    let mut cutoff: Option<u64> = None;
    let mut fastpath = false;
    let mut offload = false;
    let mut latency = false;
    let mut burst: Option<usize> = None;
    let mut delay_ms: u64 = 0;
    let mut seed: u64 = 42;
    let mut shards: Option<usize> = None;
    let mut storm = false;
    let mut positional: Vec<&String> = Vec::new();
    let mut i = 0;
    let numarg = |args: &[String], i: usize, name: &str| -> u64 {
        args.get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| die(&format!("{name} needs a number")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--gen" => {
                i += 1;
                gen_mb = Some(numarg(&args, i, "--gen"));
            }
            "--interval" => {
                i += 1;
                interval = numarg(&args, i, "--interval").max(1);
            }
            "--topk" => {
                i += 1;
                topk = numarg(&args, i, "--topk") as usize;
            }
            "--cutoff" => {
                i += 1;
                cutoff = Some(numarg(&args, i, "--cutoff"));
            }
            "--fastpath" => fastpath = true,
            "--offload" => offload = true,
            "--latency" => latency = true,
            "--burst" => {
                i += 1;
                burst = Some(numarg(&args, i, "--burst").max(1) as usize);
            }
            "--delay-ms" => {
                i += 1;
                delay_ms = numarg(&args, i, "--delay-ms");
            }
            "--seed" => {
                i += 1;
                seed = numarg(&args, i, "--seed");
            }
            "--shards" => {
                i += 1;
                shards = Some(numarg(&args, i, "--shards").max(1) as usize);
            }
            "--storm" => storm = true,
            "--scapd" => {
                i += 1;
                scapd_dir = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--scapd needs a path"))
                        .clone(),
                );
            }
            other if other.starts_with("--") => die(&format!("unknown flag {other}")),
            _ => positional.push(&args[i]),
        }
        i += 1;
    }

    if let Some(dir) = scapd_dir {
        scapd_panel(&dir, delay_ms);
    }

    let packets: Vec<Packet> = match (gen_mb, positional.first()) {
        (Some(mb), _) => CampusMix::new(CampusMixConfig::sized(seed, mb << 20)).collect_all(),
        (None, Some(path)) => {
            let f = std::fs::File::open(path)
                .unwrap_or_else(|e| die(&format!("cannot open {path}: {e}")));
            PcapReader::new(f)
                .unwrap_or_else(|e| die(&format!("not a pcap file: {e}")))
                .read_all()
                .unwrap_or_else(|e| die(&format!("read error: {e}")))
        }
        (None, None) => die("no pcap file given (or use --gen MB)"),
    };
    if let Some(n) = shards {
        shards_panel(
            &packets,
            n,
            storm.then_some(seed),
            interval,
            delay_ms,
            latency,
        );
    }
    let filter_expr = if gen_mb.is_some() {
        positional.first().map(|s| s.as_str()).unwrap_or("")
    } else {
        positional.get(1).map(|s| s.as_str()).unwrap_or("")
    };

    let mut config = ScapConfig {
        use_fdir: true,
        ..ScapConfig::default()
    };
    if !filter_expr.is_empty() {
        config.filter = Some(
            scap_filter::Filter::new(filter_expr)
                .unwrap_or_else(|e| die(&format!("bad filter expression: {e}"))),
        );
    }
    if let Some(c) = cutoff {
        config.cutoff.default = Some(c);
    }
    if fastpath {
        config.dispatch = DispatchMode::Fastpath;
    }
    if offload {
        config.use_offload = true;
    }
    if let Some(n) = burst {
        config.fastpath_burst = n;
    }
    let mut kernel = ScapKernel::new(config);

    let mut dash = Dashboard {
        interval,
        topk,
        frame: Frame::new(delay_ms),
        fastpath,
        offload,
        latency,
        latency_hist: LatencyHistory::default(),
        prev_ts_ns: 0,
        prev_fp_pkts: 0,
        prev_evictions: 0,
        prev_queues: Vec::new(),
        streams: HashMap::new(),
    };

    let total = packets.len();
    let mut now = 0u64;
    for (i, pkt) in packets.iter().enumerate() {
        now = pkt.ts_ns;
        kernel.nic_receive(pkt);
        for core in 0..kernel.ncores() {
            if fastpath {
                while kernel.poll_burst(core, now).is_some() {}
            } else {
                while kernel.kernel_poll(core, now).is_some() {}
            }
            kernel.kernel_timers(core, now);
            while let Some(ev) = kernel.next_event(core) {
                kernel.note_delivery(&ev, now);
                if let EventKind::Data { dir, chunk, .. } = ev.kind {
                    let e = dash
                        .streams
                        .entry(ev.stream.uid)
                        .or_insert_with(|| (ev.stream.key.to_string(), 0));
                    e.1 += chunk.len as u64;
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }
        if ((i + 1) as u64).is_multiple_of(dash.interval) {
            dash.render(&kernel, i + 1, total, now);
        }
    }
    kernel.finish(now.saturating_add(1));
    for core in 0..kernel.ncores() {
        while let Some(ev) = kernel.next_event(core) {
            kernel.note_delivery(&ev, now.saturating_add(1));
            if let EventKind::Data { dir, chunk, .. } = ev.kind {
                let e = dash
                    .streams
                    .entry(ev.stream.uid)
                    .or_insert_with(|| (ev.stream.key.to_string(), 0));
                e.1 += chunk.len as u64;
                kernel.release_data(ev.stream.uid, dir, chunk);
            }
        }
    }
    dash.render(&kernel, total, total, now.saturating_add(1));

    let s = kernel.stats();
    let events = kernel.flight().events();
    println!(
        "\ncapture complete: {} packets | {} streams | {} payload bytes | {}",
        s.stack.wire_packets,
        s.stack.streams_reported,
        s.stack.delivered_bytes,
        scap_flight::top_reasons_line(&events, 3),
    );
    // Sanity line the smoke gate greps: restarts vs journal must agree.
    let restart_events = events
        .iter()
        .filter(|e| e.kind == FlightKind::Restarted)
        .count() as u64;
    if restart_events != s.resilience.restarts {
        eprintln!(
            "scaptop: restart counter {} disagrees with journal {}",
            s.resilience.restarts, restart_events
        );
        std::process::exit(1);
    }
}
