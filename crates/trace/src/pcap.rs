//! Libpcap file-format reader and writer.
//!
//! Implements the classic pcap container (not pcapng): the 24-byte global
//! header followed by per-packet records. Both byte orders and both
//! timestamp resolutions (microsecond magic `0xA1B2C3D4`, nanosecond
//! magic `0xA1B23C4D`) are read; writing always produces native-order
//! nanosecond files, which modern tcpdump/wireshark accept.

use crate::{Packet, TraceError};
use std::io::{BufReader, BufWriter, Read, Write};

/// Microsecond-resolution pcap magic.
pub const MAGIC_USEC: u32 = 0xA1B2_C3D4;
/// Nanosecond-resolution pcap magic.
pub const MAGIC_NSEC: u32 = 0xA1B2_3C4D;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// Write `packets` as a pcap file with the default 65535-byte snaplen
/// (no truncation in practice).
pub fn write_file<'a, W: Write>(
    w: W,
    packets: impl IntoIterator<Item = &'a Packet>,
) -> Result<(), TraceError> {
    write_file_with_snaplen(w, packets, 65535)
}

/// Write `packets` as a pcap file, truncating each frame to `snaplen`
/// bytes. Truncated records keep the true wire length in `orig_len`
/// (with `incl_len = min(len, snaplen)`), exactly as `tcpdump -s` does —
/// readers can still account for the missing bytes.
pub fn write_file_with_snaplen<'a, W: Write>(
    w: W,
    packets: impl IntoIterator<Item = &'a Packet>,
    snaplen: u32,
) -> Result<(), TraceError> {
    let mut w = BufWriter::new(w);
    // Global header: magic, v2.4, thiszone 0, sigfigs 0, snaplen, linktype.
    w.write_all(&MAGIC_NSEC.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?;
    w.write_all(&4u16.to_le_bytes())?;
    w.write_all(&0i32.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&snaplen.to_le_bytes())?;
    w.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
    for p in packets {
        let sec = (p.ts_ns / 1_000_000_000) as u32;
        let nsec = (p.ts_ns % 1_000_000_000) as u32;
        let orig = p.frame.len() as u32;
        let incl = orig.min(snaplen);
        w.write_all(&sec.to_le_bytes())?;
        w.write_all(&nsec.to_le_bytes())?;
        w.write_all(&incl.to_le_bytes())?;
        w.write_all(&orig.to_le_bytes())?;
        w.write_all(&p.frame[..incl as usize])?;
    }
    w.flush()?;
    Ok(())
}

/// Streaming pcap reader.
pub struct PcapReader<R: Read> {
    r: BufReader<R>,
    swapped: bool,
    nsec: bool,
    snaplen: u32,
}

impl<R: Read> PcapReader<R> {
    /// Open a pcap stream, parsing the global header.
    pub fn new(r: R) -> Result<Self, TraceError> {
        let mut r = BufReader::new(r);
        let mut hdr = [0u8; 24];
        r.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes(hdr[0..4].try_into().unwrap());
        let (swapped, nsec) = match magic {
            MAGIC_USEC => (false, false),
            MAGIC_NSEC => (false, true),
            m if m.swap_bytes() == MAGIC_USEC => (true, false),
            m if m.swap_bytes() == MAGIC_NSEC => (true, true),
            m => return Err(TraceError::BadMagic(m)),
        };
        let snaplen = read_u32(&hdr[16..20], swapped);
        Ok(PcapReader {
            r,
            swapped,
            nsec,
            snaplen: snaplen.max(65535),
        })
    }

    /// Read the next packet; `Ok(None)` at clean end-of-file.
    pub fn next_packet(&mut self) -> Result<Option<Packet>, TraceError> {
        let mut rec = [0u8; 16];
        match self.r.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let sec = read_u32(&rec[0..4], self.swapped) as u64;
        let frac = read_u32(&rec[4..8], self.swapped) as u64;
        let incl = read_u32(&rec[8..12], self.swapped);
        if incl > self.snaplen.max(262_144) {
            return Err(TraceError::BadRecord(format!(
                "record length {incl} exceeds snap length"
            )));
        }
        let mut frame = vec![0u8; incl as usize];
        self.r.read_exact(&mut frame)?;
        let ts_ns = sec * 1_000_000_000 + if self.nsec { frac } else { frac * 1000 };
        Ok(Some(Packet::new(ts_ns, frame)))
    }

    /// Read the whole file into memory.
    pub fn read_all(mut self) -> Result<Vec<Packet>, TraceError> {
        let mut out = Vec::new();
        while let Some(p) = self.next_packet()? {
            out.push(p);
        }
        Ok(out)
    }
}

fn read_u32(b: &[u8], swapped: bool) -> u32 {
    let v = u32::from_le_bytes(b.try_into().unwrap());
    if swapped {
        v.swap_bytes()
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_wire::{PacketBuilder, TcpFlags};

    fn sample_packets() -> Vec<Packet> {
        vec![
            Packet::new(
                1_500_000_123,
                PacketBuilder::tcp_v4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, 3, 4, TcpFlags::SYN, b""),
            ),
            Packet::new(
                2_000_000_456,
                PacketBuilder::udp_v4([3, 3, 3, 3], [4, 4, 4, 4], 5, 6, b"payload"),
            ),
        ]
    }

    #[test]
    fn roundtrip_preserves_packets() {
        let pkts = sample_packets();
        let mut buf = Vec::new();
        write_file(&mut buf, &pkts).unwrap();
        let back = PcapReader::new(&buf[..]).unwrap().read_all().unwrap();
        assert_eq!(back, pkts);
    }

    #[test]
    fn snaplen_truncation_keeps_orig_len() {
        let mut pkts = sample_packets();
        pkts.push(Packet::new(
            3_000_000_789,
            PacketBuilder::udp_v4([5, 5, 5, 5], [6, 6, 6, 6], 7, 8, &[0xAB; 200]),
        ));
        let snaplen = 60u32;
        let mut buf = Vec::new();
        write_file_with_snaplen(&mut buf, &pkts, snaplen).unwrap();
        // Header advertises the snaplen.
        assert_eq!(u32::from_le_bytes(buf[16..20].try_into().unwrap()), snaplen);
        // Walk the records: incl_len = min(len, snaplen), orig_len = wire
        // length, and exactly incl_len frame bytes follow.
        let mut off = 24;
        for p in &pkts {
            let incl = u32::from_le_bytes(buf[off + 8..off + 12].try_into().unwrap());
            let orig = u32::from_le_bytes(buf[off + 12..off + 16].try_into().unwrap());
            assert_eq!(orig, p.frame.len() as u32);
            assert_eq!(incl, (p.frame.len() as u32).min(snaplen));
            assert_eq!(
                &buf[off + 16..off + 16 + incl as usize],
                &p.frame[..incl as usize]
            );
            off += 16 + incl as usize;
        }
        assert_eq!(off, buf.len());
        // Round-trip: the reader yields the truncated prefixes.
        let back = PcapReader::new(&buf[..]).unwrap().read_all().unwrap();
        assert_eq!(back.len(), pkts.len());
        for (b, p) in back.iter().zip(&pkts) {
            assert_eq!(b.ts_ns, p.ts_ns);
            assert_eq!(
                &b.frame[..],
                &p.frame[..p.frame.len().min(snaplen as usize)]
            );
        }
        // At least one sample frame must actually have been truncated for
        // the test to mean anything.
        assert!(pkts.iter().any(|p| p.frame.len() > snaplen as usize));
    }

    #[test]
    fn reads_byteswapped_files() {
        let pkts = sample_packets();
        let mut buf = Vec::new();
        write_file(&mut buf, &pkts).unwrap();
        // Byte-swap the whole header to simulate a foreign-endian file.
        for i in (0..24).step_by(4) {
            buf[i..i + 4].reverse();
        }
        // Records too.
        let mut off = 24;
        for p in &pkts {
            for i in (off..off + 16).step_by(4) {
                buf[i..i + 4].reverse();
            }
            off += 16 + p.frame.len();
        }
        let back = PcapReader::new(&buf[..]).unwrap().read_all().unwrap();
        assert_eq!(back, pkts);
    }

    #[test]
    fn usec_resolution_scales_to_ns() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_USEC.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&0i32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&65535u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        // One 4-byte packet at t = 7s + 123us.
        buf.extend_from_slice(&7u32.to_le_bytes());
        buf.extend_from_slice(&123u32.to_le_bytes());
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(&[9, 9, 9, 9]);
        let pkts = PcapReader::new(&buf[..]).unwrap().read_all().unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].ts_ns, 7_000_123_000);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = [0u8; 24];
        assert!(matches!(
            PcapReader::new(&buf[..]),
            Err(TraceError::BadMagic(0))
        ));
    }

    #[test]
    fn truncated_file_is_io_error() {
        let pkts = sample_packets();
        let mut buf = Vec::new();
        write_file(&mut buf, &pkts).unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert!(r.next_packet().unwrap().is_some());
        assert!(r.next_packet().is_err());
    }
}
