//! Ethernet II frame view.

use crate::{Result, WireError};

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the group bit (least-significant bit of the first octet) is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl core::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType values relevant to the monitoring stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// IPv6 (0x86DD).
    Ipv6,
    /// 802.1Q VLAN tag (0x8100).
    Vlan,
    /// Anything else, with the raw value preserved.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86DD => EtherType::Ipv6,
            0x8100 => EtherType::Vlan,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(v: EtherType) -> u16 {
        match v {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86DD,
            EtherType::Vlan => 0x8100,
            EtherType::Other(o) => o,
        }
    }
}

/// A read-only view over an Ethernet II frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetFrame<'a> {
    buf: &'a [u8],
}

impl<'a> EthernetFrame<'a> {
    /// Length of the Ethernet II header (no VLAN tags, no FCS).
    pub const HEADER_LEN: usize = 14;

    /// Wrap `buf`, checking it is long enough to hold the header.
    pub fn new_checked(buf: &'a [u8]) -> Result<Self> {
        if buf.len() < Self::HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(EthernetFrame { buf })
    }

    /// Destination MAC address.
    pub fn dst_addr(&self) -> MacAddr {
        let mut m = [0u8; 6];
        m.copy_from_slice(&self.buf[0..6]);
        MacAddr(m)
    }

    /// Source MAC address.
    pub fn src_addr(&self) -> MacAddr {
        let mut m = [0u8; 6];
        m.copy_from_slice(&self.buf[6..12]);
        MacAddr(m)
    }

    /// EtherType of the payload.
    pub fn ethertype(&self) -> EtherType {
        u16::from_be_bytes([self.buf[12], self.buf[13]]).into()
    }

    /// The L3 payload bytes.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[Self::HEADER_LEN..]
    }
}

/// Write an Ethernet II header into `buf` (must be at least 14 bytes).
pub fn emit_header(buf: &mut [u8], dst: MacAddr, src: MacAddr, ethertype: EtherType) {
    buf[0..6].copy_from_slice(&dst.0);
    buf[6..12].copy_from_slice(&src.0);
    let et: u16 = ethertype.into();
    buf[12..14].copy_from_slice(&et.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let mut buf = [0u8; 14];
        let src = MacAddr([1, 2, 3, 4, 5, 6]);
        let dst = MacAddr([7, 8, 9, 10, 11, 12]);
        emit_header(&mut buf, dst, src, EtherType::Ipv4);
        let f = EthernetFrame::new_checked(&buf).unwrap();
        assert_eq!(f.src_addr(), src);
        assert_eq!(f.dst_addr(), dst);
        assert_eq!(f.ethertype(), EtherType::Ipv4);
    }

    #[test]
    fn short_buffer_is_truncated() {
        assert_eq!(
            EthernetFrame::new_checked(&[0u8; 13]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn ethertype_conversions() {
        for et in [
            EtherType::Ipv4,
            EtherType::Arp,
            EtherType::Ipv6,
            EtherType::Vlan,
            EtherType::Other(0x88CC),
        ] {
            let raw: u16 = et.into();
            assert_eq!(EtherType::from(raw), et);
        }
    }

    #[test]
    fn mac_addr_display_and_flags() {
        let m = MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(m.to_string(), "de:ad:be:ef:00:01");
        assert!(!m.is_broadcast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr([0x01, 0, 0, 0, 0, 0]).is_multicast());
        assert!(!m.is_multicast());
    }
}
