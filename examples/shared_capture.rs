//! Multiple applications sharing one capture (§5.6 of the paper).
//!
//! A flow accountant (wants statistics only — cutoff 0), a web-traffic
//! IDS (wants port-80 streams, first 64 KB), and a DNS monitor (wants
//! UDP port 53, everything) run against ONE kernel capture. The kernel
//! generalizes their requirements — union of the filters, largest
//! cutoff — performs flow tracking and reassembly once, and each
//! application sees exactly its own filtered, cutoff-trimmed view of the
//! shared streams.
//!
//! Run with: `cargo run --release --example shared_capture`

use scap::sharing::shared_apps::{SharedFlowStats, SharedMatcher};
use scap::{union_config, AppSlot, ScapConfig, ScapKernel, ScapSimStack, SharedApps};
use scap_filter::Filter;
use scap_patterns::{builtin_web_patterns, AhoCorasick};
use scap_sim::{CostModel, Engine, EngineConfig};
use scap_trace::gen::{CampusMix, CampusMixConfig};
use std::sync::Arc;

fn main() {
    let patterns = builtin_web_patterns();
    let traffic = CampusMix::new(CampusMixConfig {
        patterns: Some(Arc::new(patterns.clone())),
        pattern_prob: 0.4,
        ..CampusMixConfig::sized(19, 12 << 20)
    })
    .collect_all();

    // Three applications with very different requirements.
    let slots = vec![
        AppSlot::new(
            "accounting",
            None,    // all streams
            Some(0), // no payload at all
            Box::new(SharedFlowStats::default()),
        ),
        AppSlot::new(
            "web-ids",
            Some(Filter::new("tcp and port 80").expect("valid")),
            Some(64 << 10),
            Box::new(SharedMatcher::new(AhoCorasick::new(&patterns, true))),
        ),
        AppSlot::new(
            "dns-monitor",
            Some(Filter::new("udp and port 53").expect("valid")),
            None,
            Box::new(SharedFlowStats::default()),
        ),
    ];

    // The kernel runs the generalized configuration.
    let base = ScapConfig {
        memory_bytes: 64 << 20,
        inactivity_timeout_ns: 500_000_000,
        ..ScapConfig::default()
    };
    let cfg = union_config(base, &slots, false).expect("filters compile");
    println!(
        "kernel generalization: filter = {}, default cutoff = {:?}",
        if cfg.filter.is_some() {
            "union of app filters"
        } else {
            "none (an app wants everything)"
        },
        cfg.cutoff.default,
    );

    let mut stack = ScapSimStack::new(ScapKernel::new(cfg), SharedApps::new(slots));
    // Unbounded-CPU engine: this example demonstrates sharing semantics,
    // not overload behaviour.
    let report = Engine::new(EngineConfig {
        model: CostModel {
            core_hz: 1e15,
            ..CostModel::default()
        },
        ..EngineConfig::default()
    })
    .run(traffic, &mut stack);

    println!(
        "\none reassembly pass: {} streams tracked, {} delivered payload bytes\n",
        report.stats.streams_created, report.stats.delivered_bytes
    );
    for slot in stack.app().slots() {
        println!(
            "{:>12}: {:>6} events, {:>10} data bytes seen, {:>4} matches",
            slot.name,
            slot.events,
            slot.bytes,
            slot.app.matches(),
        );
    }
    println!("\nThe accountant saw zero payload (its cutoff is 0), the IDS saw only");
    println!("port-80 stream prefixes, the DNS monitor only UDP/53 — all from one");
    println!("in-kernel reassembly pass over the shared stream memory.");
}
