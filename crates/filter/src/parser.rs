//! Recursive-descent parser for filter expressions.
//!
//! Grammar (tcpdump-flavoured):
//!
//! ```text
//! expr   := term (("or" | "||") term)*
//! term   := factor (("and" | "&&") factor)*
//! factor := ("not" | "!") factor | "(" expr ")" | prim
//! prim   := proto [portprim]            ; "tcp port 80" sugar
//!         | portprim | hostprim | netprim | lenprim
//! proto  := "ip" | "ip6" | "tcp" | "udp" | "icmp"
//! portprim := qual? ("port" NUM | "portrange" NUM "-" NUM)
//! hostprim := qual? "host" IPV4
//! netprim  := qual? "net" IPV4 "/" NUM
//! lenprim  := "greater" NUM | "less" NUM
//! qual   := "src" | "dst"
//! ```

use crate::ast::{Expr, Primitive, ProtoKind, Qual};
use crate::lexer::{Token, TokenKind};
use crate::FilterError;

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

/// Parse a token stream into an expression. Empty input means "match all".
pub fn parse_tokens(toks: &[Token]) -> Result<Expr, FilterError> {
    if toks.is_empty() {
        return Ok(Expr::Prim(Primitive::True));
    }
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(p.err("trailing tokens after expression"));
    }
    Ok(e)
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> FilterError {
        FilterError::Parse {
            pos: self.pos,
            what: what.to_string(),
        }
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn peek_word(&self) -> Option<&str> {
        match self.peek() {
            Some(TokenKind::Word(w)) => Some(w.as_str()),
            _ => None,
        }
    }

    fn bump(&mut self) -> Option<&TokenKind> {
        let t = self.toks.get(self.pos).map(|t| &t.kind);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if self.peek_word() == Some(w) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_number(&mut self, what: &str) -> Result<u64, FilterError> {
        match self.bump() {
            Some(TokenKind::Number(n)) => Ok(*n),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(what))
            }
        }
    }

    fn expect_port(&mut self, what: &str) -> Result<u16, FilterError> {
        let n = self.expect_number(what)?;
        u16::try_from(n).map_err(|_| self.err("port number out of range"))
    }

    fn expr(&mut self) -> Result<Expr, FilterError> {
        let mut lhs = self.term()?;
        loop {
            let is_or = match self.peek() {
                Some(TokenKind::OrOr) => true,
                Some(TokenKind::Word(w)) if w == "or" => true,
                _ => false,
            };
            if !is_or {
                return Ok(lhs);
            }
            self.pos += 1;
            let rhs = self.term()?;
            lhs = Expr::or(lhs, rhs);
        }
    }

    fn term(&mut self) -> Result<Expr, FilterError> {
        let mut lhs = self.factor()?;
        loop {
            let is_and = match self.peek() {
                Some(TokenKind::AndAnd) => true,
                Some(TokenKind::Word(w)) if w == "and" => true,
                _ => false,
            };
            if !is_and {
                return Ok(lhs);
            }
            self.pos += 1;
            let rhs = self.factor()?;
            lhs = Expr::and(lhs, rhs);
        }
    }

    fn factor(&mut self) -> Result<Expr, FilterError> {
        match self.peek() {
            Some(TokenKind::Bang) => {
                self.pos += 1;
                Ok(Expr::not(self.factor()?))
            }
            Some(TokenKind::Word(w)) if w == "not" => {
                self.pos += 1;
                Ok(Expr::not(self.factor()?))
            }
            Some(TokenKind::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                match self.bump() {
                    Some(TokenKind::RParen) => Ok(e),
                    _ => Err(self.err("expected ')'")),
                }
            }
            _ => self.primitive(),
        }
    }

    fn qual(&mut self) -> Qual {
        if self.eat_word("src") {
            Qual::Src
        } else if self.eat_word("dst") {
            Qual::Dst
        } else {
            Qual::Either
        }
    }

    fn primitive(&mut self) -> Result<Expr, FilterError> {
        // Protocol keyword, optionally fused with a port primitive
        // ("tcp port 80" means "tcp and port 80").
        let proto = match self.peek_word() {
            Some("ip") => Some(ProtoKind::Ip),
            Some("ip6") => Some(ProtoKind::Ip6),
            Some("tcp") => Some(ProtoKind::Tcp),
            Some("udp") => Some(ProtoKind::Udp),
            Some("icmp") => Some(ProtoKind::Icmp),
            _ => None,
        };
        if let Some(k) = proto {
            self.pos += 1;
            let fused = matches!(
                self.peek_word(),
                Some("port") | Some("portrange") | Some("src") | Some("dst")
            );
            let base = Expr::Prim(Primitive::Proto(k));
            if fused {
                let rest = self.primitive()?;
                return Ok(Expr::and(base, rest));
            }
            return Ok(base);
        }

        let q = self.qual();
        match self.peek_word() {
            Some("host") => {
                self.pos += 1;
                match self.bump() {
                    Some(TokenKind::Ipv4(a)) => Ok(Expr::Prim(Primitive::Host(q, *a))),
                    _ => Err(self.err("expected IPv4 address after 'host'")),
                }
            }
            Some("net") => {
                self.pos += 1;
                let addr = match self.bump() {
                    Some(TokenKind::Ipv4(a)) => *a,
                    _ => return Err(self.err("expected IPv4 address after 'net'")),
                };
                if !matches!(self.bump(), Some(TokenKind::Slash)) {
                    return Err(self.err("expected '/' after network address"));
                }
                let prefix = self.expect_number("expected prefix length")?;
                if prefix > 32 {
                    return Err(self.err("prefix length out of range"));
                }
                Ok(Expr::Prim(Primitive::Net(q, addr, prefix as u8)))
            }
            Some("port") => {
                self.pos += 1;
                let n = self.expect_port("expected port number")?;
                Ok(Expr::Prim(Primitive::Port(q, n)))
            }
            Some("portrange") => {
                self.pos += 1;
                let lo = self.expect_port("expected port number")?;
                if !matches!(self.bump(), Some(TokenKind::Dash)) {
                    return Err(self.err("expected '-' in port range"));
                }
                let hi = self.expect_port("expected port number")?;
                if lo > hi {
                    return Err(self.err("port range lower bound exceeds upper bound"));
                }
                Ok(Expr::Prim(Primitive::PortRange(q, lo, hi)))
            }
            Some("greater") if q == Qual::Either => {
                self.pos += 1;
                let n = self.expect_number("expected length")?;
                Ok(Expr::Prim(Primitive::Greater(n as u32)))
            }
            Some("less") if q == Qual::Either => {
                self.pos += 1;
                let n = self.expect_number("expected length")?;
                Ok(Expr::Prim(Primitive::Less(n as u32)))
            }
            _ => Err(self.err("expected a filter primitive")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(s: &str) -> Result<Expr, FilterError> {
        parse_tokens(&lex(s).unwrap())
    }

    #[test]
    fn empty_is_true() {
        assert_eq!(parse("").unwrap(), Expr::Prim(Primitive::True));
    }

    #[test]
    fn simple_proto() {
        assert_eq!(
            parse("tcp").unwrap(),
            Expr::Prim(Primitive::Proto(ProtoKind::Tcp))
        );
    }

    #[test]
    fn fused_proto_port() {
        assert_eq!(
            parse("tcp port 80").unwrap(),
            Expr::and(
                Expr::Prim(Primitive::Proto(ProtoKind::Tcp)),
                Expr::Prim(Primitive::Port(Qual::Either, 80)),
            )
        );
        assert_eq!(
            parse("udp dst port 53").unwrap(),
            Expr::and(
                Expr::Prim(Primitive::Proto(ProtoKind::Udp)),
                Expr::Prim(Primitive::Port(Qual::Dst, 53)),
            )
        );
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let e = parse("tcp or udp and port 53").unwrap();
        assert_eq!(
            e,
            Expr::or(
                Expr::Prim(Primitive::Proto(ProtoKind::Tcp)),
                Expr::and(
                    Expr::Prim(Primitive::Proto(ProtoKind::Udp)),
                    Expr::Prim(Primitive::Port(Qual::Either, 53)),
                ),
            )
        );
    }

    #[test]
    fn parens_override_precedence() {
        let e = parse("(tcp or udp) and port 53").unwrap();
        assert_eq!(
            e,
            Expr::and(
                Expr::or(
                    Expr::Prim(Primitive::Proto(ProtoKind::Tcp)),
                    Expr::Prim(Primitive::Proto(ProtoKind::Udp)),
                ),
                Expr::Prim(Primitive::Port(Qual::Either, 53)),
            )
        );
    }

    #[test]
    fn not_and_bang() {
        assert_eq!(parse("not tcp").unwrap(), parse("!tcp").unwrap());
        assert_eq!(parse("a and b").err(), parse("a && b").err());
    }

    #[test]
    fn net_and_host() {
        assert_eq!(
            parse("src net 10.0.0.0/8").unwrap(),
            Expr::Prim(Primitive::Net(Qual::Src, [10, 0, 0, 0], 8))
        );
        assert_eq!(
            parse("dst host 1.2.3.4").unwrap(),
            Expr::Prim(Primitive::Host(Qual::Dst, [1, 2, 3, 4]))
        );
    }

    #[test]
    fn portrange() {
        assert_eq!(
            parse("portrange 1000-2000").unwrap(),
            Expr::Prim(Primitive::PortRange(Qual::Either, 1000, 2000))
        );
        assert!(parse("portrange 2000-1000").is_err());
    }

    #[test]
    fn length_primitives() {
        assert_eq!(
            parse("greater 100").unwrap(),
            Expr::Prim(Primitive::Greater(100))
        );
        assert_eq!(parse("less 64").unwrap(), Expr::Prim(Primitive::Less(64)));
    }

    #[test]
    fn errors() {
        assert!(parse("tcp and").is_err());
        assert!(parse("(tcp").is_err());
        assert!(parse("port 99999").is_err());
        assert!(parse("net 10.0.0.0/33").is_err());
        assert!(parse("tcp udp").is_err()); // trailing tokens
        assert!(parse("host").is_err());
    }
}
