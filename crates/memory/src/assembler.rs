//! Per-direction chunk assembly.
//!
//! In-order payload (the reassembly engine's output) is copied once,
//! directly into the stream's current block. When a block fills, the
//! chunk is complete and handed to the caller for event delivery; a new
//! block is allocated for the remainder. Supports the `overlap` parameter
//! (the last N bytes of a completed chunk are replayed at the head of the
//! next one, for patterns spanning chunk boundaries) and explicit flushes
//! (flush timeout, stream termination, cutoff).

use crate::arena::{Arena, ChunkBuf, OutOfMemory};

/// Assembles one direction of one stream into chunks.
#[derive(Debug)]
pub struct ChunkAssembler {
    chunk_size: usize,
    overlap: usize,
    cur: Option<ChunkBuf>,
    /// Stream offset of the next byte to be written.
    written: u64,
    /// Total payload bytes copied into blocks (cost-model input).
    pub bytes_copied: u64,
    /// Chunks completed (filled or flushed).
    pub chunks_completed: u64,
}

impl ChunkAssembler {
    /// A new assembler with the stream's chunk size and overlap.
    pub fn new(chunk_size: usize, overlap: usize) -> Self {
        assert!(chunk_size > 0);
        assert!(overlap < chunk_size, "overlap must be smaller than chunk");
        ChunkAssembler {
            chunk_size,
            overlap,
            cur: None,
            written: 0,
            bytes_copied: 0,
            chunks_completed: 0,
        }
    }

    /// Stream offset of the next byte (how much has been assembled).
    pub fn stream_offset(&self) -> u64 {
        self.written
    }

    /// The bytes buffered in the partial chunk, if any (checkpointing:
    /// they are part of the committed offset but not yet emitted).
    pub fn pending_bytes(&self) -> &[u8] {
        self.cur.as_ref().map_or(&[], |c| c.bytes())
    }

    /// Rebuild an assembler mid-stream after a warm restart: the next
    /// byte to write is `committed`, and `pending` (possibly empty) is
    /// the partial-chunk content that was buffered at checkpoint time.
    /// `committed` includes the pending bytes, so the restored partial
    /// chunk starts at `committed - pending.len()`.
    pub fn resume(
        arena: &mut Arena,
        chunk_size: usize,
        overlap: usize,
        committed: u64,
        pending: &[u8],
    ) -> Result<Self, OutOfMemory> {
        assert!(chunk_size > 0);
        assert!(overlap < chunk_size, "overlap must be smaller than chunk");
        assert!(pending.len() <= chunk_size);
        assert!(committed >= pending.len() as u64);
        let mut asm = ChunkAssembler {
            chunk_size,
            overlap,
            cur: None,
            written: committed,
            bytes_copied: 0,
            chunks_completed: 0,
        };
        if !pending.is_empty() {
            let mut cur = arena.alloc(chunk_size, committed - pending.len() as u64)?;
            cur.data[..pending.len()].copy_from_slice(pending);
            cur.len = pending.len();
            asm.cur = Some(cur);
        }
        Ok(asm)
    }

    /// Change the chunk geometry; takes effect at the next block
    /// allocation (`scap_set_stream_parameter` semantics: "the next
    /// invocation of the callback").
    pub fn set_geometry(&mut self, chunk_size: usize, overlap: usize) {
        assert!(chunk_size > 0);
        assert!(overlap < chunk_size);
        self.chunk_size = chunk_size;
        self.overlap = overlap;
    }

    /// Current chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// True when a partial chunk is buffered.
    pub fn has_pending(&self) -> bool {
        self.cur.as_ref().is_some_and(|c| c.len > 0)
    }

    /// Bytes currently buffered in the partial chunk.
    pub fn pending_len(&self) -> usize {
        self.cur.as_ref().map_or(0, |c| c.len)
    }

    /// Append in-order payload. Completed chunks are pushed to `out`.
    ///
    /// On arena exhaustion the already-appended prefix stays; the caller
    /// treats the remainder as a dropped packet (and PPL accounting takes
    /// over).
    pub fn append(
        &mut self,
        arena: &mut Arena,
        mut data: &[u8],
        out: &mut Vec<ChunkBuf>,
    ) -> Result<(), OutOfMemory> {
        while !data.is_empty() {
            if self.cur.is_none() {
                self.cur = Some(arena.alloc(self.chunk_size, self.written)?);
            }
            let cur = self.cur.as_mut().expect("just ensured");
            let take = data.len().min(cur.room());
            cur.data[cur.len..cur.len + take].copy_from_slice(&data[..take]);
            cur.len += take;
            self.bytes_copied += take as u64;
            self.written += take as u64;
            data = &data[take..];
            if cur.room() == 0 {
                let full = self.cur.take().expect("full chunk present");
                // Start the next chunk with the overlap tail of this one.
                if self.overlap > 0 {
                    let tail_start = full.len - self.overlap;
                    let mut next = arena
                        .alloc(self.chunk_size, full.start_offset + tail_start as u64)
                        .inspect_err(|_| {
                            // Deliver the full chunk even if the next block
                            // could not be allocated.
                        });
                    match next.as_mut() {
                        Ok(next_buf) => {
                            next_buf.data[..self.overlap].copy_from_slice(&full.data[tail_start..]);
                            next_buf.len = self.overlap;
                            self.bytes_copied += self.overlap as u64;
                            self.cur = Some(next.unwrap());
                        }
                        Err(_) => {
                            self.chunks_completed += 1;
                            out.push(full);
                            return Err(OutOfMemory);
                        }
                    }
                }
                self.chunks_completed += 1;
                out.push(full);
            }
        }
        Ok(())
    }

    /// Record a reassembly error in the chunk under construction (fast
    /// mode sets a flag on the chunk that had holes).
    pub fn mark_error(&mut self) {
        if let Some(c) = self.cur.as_mut() {
            c.had_error = true;
        }
    }

    /// Flush the partial chunk (flush timeout, cutoff, or termination).
    /// Returns `None` when nothing is buffered.
    pub fn flush(&mut self) -> Option<ChunkBuf> {
        let c = self.cur.take()?;
        if c.len == 0 {
            // An empty block (e.g. only overlap bytes pending with
            // overlap = 0) is not worth an event; the caller releases it.
            return Some(c);
        }
        self.chunks_completed += 1;
        Some(c)
    }

    /// Give back the in-progress block without emitting it (stream is
    /// being force-evicted; its partial data is discarded).
    pub fn abandon(&mut self, arena: &mut Arena) {
        if let Some(c) = self.cur.take() {
            arena.release(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arena() -> Arena {
        Arena::new(1 << 22)
    }

    #[test]
    fn exact_multiple_fills_exactly() {
        let mut a = arena();
        let mut asm = ChunkAssembler::new(1024, 0);
        let mut out = Vec::new();
        asm.append(&mut a, &[1u8; 2048], &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert!(!asm.has_pending());
        assert_eq!(asm.stream_offset(), 2048);
        assert_eq!(out[0].start_offset, 0);
        assert_eq!(out[1].start_offset, 1024);
    }

    #[test]
    fn partial_chunk_flushes() {
        let mut a = arena();
        let mut asm = ChunkAssembler::new(1024, 0);
        let mut out = Vec::new();
        asm.append(&mut a, &[9u8; 100], &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(asm.pending_len(), 100);
        let c = asm.flush().unwrap();
        assert_eq!(c.len, 100);
        assert_eq!(c.bytes(), &[9u8; 100][..]);
        assert!(asm.flush().is_none());
    }

    #[test]
    fn overlap_replays_tail_bytes() {
        let mut a = arena();
        let mut asm = ChunkAssembler::new(8, 3);
        let mut out = Vec::new();
        let data: Vec<u8> = (0u8..16).collect();
        asm.append(&mut a, &data, &mut out).unwrap();
        // First chunk: bytes 0..8. Second chunk begins with bytes 5..8
        // (the 3-byte overlap), then 8..13 fills it to 8 bytes.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].bytes(), &[0, 1, 2, 3, 4, 5, 6, 7][..]);
        assert_eq!(out[1].bytes(), &[5, 6, 7, 8, 9, 10, 11, 12][..]);
        assert_eq!(out[1].start_offset, 5);
        let tail = asm.flush().unwrap();
        assert_eq!(tail.bytes(), &[10, 11, 12, 13, 14, 15][..]);
    }

    #[test]
    fn content_is_preserved_across_chunks() {
        let mut a = arena();
        let mut asm = ChunkAssembler::new(100, 0);
        let mut out = Vec::new();
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for piece in data.chunks(37) {
            asm.append(&mut a, piece, &mut out).unwrap();
        }
        if let Some(t) = asm.flush() {
            out.push(t);
        }
        let reassembled: Vec<u8> = out.iter().flat_map(|c| c.bytes().to_vec()).collect();
        assert_eq!(reassembled, data);
    }

    #[test]
    fn error_flag_travels_with_chunk() {
        let mut a = arena();
        let mut asm = ChunkAssembler::new(64, 0);
        let mut out = Vec::new();
        asm.append(&mut a, &[1u8; 10], &mut out).unwrap();
        asm.mark_error();
        asm.append(&mut a, &[2u8; 54], &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].had_error);
    }

    #[test]
    fn arena_exhaustion_reported() {
        let mut a = Arena::new(128);
        let mut asm = ChunkAssembler::new(128, 0);
        let mut out = Vec::new();
        // First block fits; the second allocation must fail.
        assert!(asm.append(&mut a, &[0u8; 200], &mut out).is_err());
        // The full first chunk was still delivered.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len, 128);
    }

    #[test]
    fn abandon_releases_block() {
        let mut a = arena();
        let used_before = a.used();
        let mut asm = ChunkAssembler::new(1024, 0);
        let mut out = Vec::new();
        asm.append(&mut a, &[5u8; 10], &mut out).unwrap();
        assert!(a.used() > used_before);
        asm.abandon(&mut a);
        assert_eq!(a.used(), used_before);
        assert!(!asm.has_pending());
    }

    proptest! {
        /// Reassembled content equals input for arbitrary chunk sizes,
        /// overlaps, and write granularities.
        #[test]
        fn roundtrip_any_geometry(
            chunk_size in 8usize..200,
            overlap in 0usize..7,
            data in proptest::collection::vec(any::<u8>(), 0..2000),
            granularity in 1usize..97,
        ) {
            prop_assume!(overlap < chunk_size);
            let mut a = Arena::new(1 << 22);
            let mut asm = ChunkAssembler::new(chunk_size, overlap);
            let mut out = Vec::new();
            for piece in data.chunks(granularity) {
                asm.append(&mut a, piece, &mut out).unwrap();
            }
            if let Some(t) = asm.flush() {
                if t.len > 0 { out.push(t); }
            }
            // Strip each chunk's overlap prefix (except the first) and
            // concatenate: must equal the input.
            let mut got = Vec::new();
            for c in &out {
                let skip = (got.len() as u64).saturating_sub(c.start_offset) as usize;
                prop_assert!(skip <= c.len);
                got.extend_from_slice(&c.bytes()[skip..]);
            }
            prop_assert_eq!(got, data);
        }
    }
}
