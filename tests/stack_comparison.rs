//! The paper's headline comparisons as executable assertions: on the
//! same workload, under the same cost model, Scap must beat the
//! user-level baselines the way §6 reports.

use scap::apps::{PatternMatchApp, StreamTouchApp};
use scap::{ScapConfig, ScapKernel, ScapSimStack};
use scap_baseline::apps::{PatternScanApp, TouchApp};
use scap_baseline::{UserStack, UserStackConfig};
use scap_bench::common::engine;
use scap_patterns::AhoCorasick;
use scap_sim::EngineReport;
use scap_trace::gen::{CampusMix, CampusMixConfig};
use scap_trace::replay::{natural_rate_bps, RateReplay};
use scap_trace::Packet;
use std::sync::Arc;

const RING: usize = 4 << 20;
const ARENA: usize = 12 << 20;

fn trace_with_patterns() -> (Vec<Packet>, f64, Vec<Vec<u8>>) {
    let pats = scap_patterns::generate_web_attack_patterns(400, 99);
    let trace = CampusMix::new(CampusMixConfig {
        patterns: Some(Arc::new(pats.clone())),
        pattern_prob: 0.4,
        ..CampusMixConfig::sized(17, 48 << 20)
    })
    .collect_all();
    let natural = natural_rate_bps(&trace);
    (trace, natural, pats)
}

fn scap_run(trace: &[Packet], natural: f64, gbps: f64, ac: &AhoCorasick) -> EngineReport {
    let replayed: Vec<Packet> =
        RateReplay::new(trace.iter().cloned(), natural, gbps * 1e9).collect();
    let mut stack = ScapSimStack::new(
        ScapKernel::new(ScapConfig {
            memory_bytes: ARENA,
            inactivity_timeout_ns: 500_000_000,
            flush_timeout_ns: 5_000_000,
            // Scap's standing overload control: shed long-stream tails
            // above half-full memory (same setting the experiments use).
            ppl: scap_memory::PplConfig {
                base_threshold: 0.5,
                num_priorities: 1,
                overload_cutoff: Some(64 << 10),
            },
            ..ScapConfig::default()
        }),
        PatternMatchApp::new(ac.clone()),
    );
    engine().run(replayed, &mut stack)
}

fn libnids_run(trace: &[Packet], natural: f64, gbps: f64, ac: &AhoCorasick) -> EngineReport {
    let replayed: Vec<Packet> =
        RateReplay::new(trace.iter().cloned(), natural, gbps * 1e9).collect();
    let mut stack = UserStack::new(
        UserStackConfig {
            ring_bytes: RING,
            inactivity_timeout_ns: 500_000_000,
            ..UserStackConfig::libnids()
        },
        PatternScanApp::new(ac.clone()),
    );
    engine().run(replayed, &mut stack)
}

/// §6.3: Scap delivers streams at rates where the baselines already
/// drop heavily (paper: 2× higher loss-free rate).
#[test]
fn stream_delivery_rate_advantage_is_at_least_2x() {
    let trace = CampusMix::new(CampusMixConfig::sized(21, 48 << 20)).collect_all();
    let natural = natural_rate_bps(&trace);

    let at = |gbps: f64| -> (f64, f64) {
        let replayed: Vec<Packet> =
            RateReplay::new(trace.iter().cloned(), natural, gbps * 1e9).collect();
        let mut nids = UserStack::new(
            UserStackConfig {
                ring_bytes: RING,
                inactivity_timeout_ns: 500_000_000,
                ..UserStackConfig::libnids()
            },
            TouchApp::default(),
        );
        let nids_drop = engine()
            .run(replayed.clone(), &mut nids)
            .stats
            .drop_percent();
        let mut sc = ScapSimStack::new(
            ScapKernel::new(ScapConfig {
                memory_bytes: ARENA,
                inactivity_timeout_ns: 500_000_000,
                flush_timeout_ns: 5_000_000,
                ..ScapConfig::default()
            }),
            StreamTouchApp::default(),
        );
        let scap_drop = engine().run(replayed, &mut sc).stats.drop_percent();
        (nids_drop, scap_drop)
    };

    // At 2.5 Gbit/s libnids is already dropping...
    let (nids_25, scap_25) = at(2.5);
    assert!(
        nids_25 > 1.0,
        "libnids at 2.5G should drop (got {nids_25:.1}%)"
    );
    assert!(
        scap_25 < 0.1,
        "scap at 2.5G must be loss-free (got {scap_25:.1}%)"
    );
    // ...while Scap is still loss-free at twice that rate.
    let (_, scap_5) = at(5.0);
    assert!(
        scap_5 < 0.1,
        "scap at 5G must be loss-free (got {scap_5:.1}%)"
    );
}

/// §6.5: at an overload rate, Scap processes substantially more traffic
/// and finds substantially more matches than the baselines.
#[test]
fn pattern_matching_under_overload_favors_scap() {
    let (trace, natural, pats) = trace_with_patterns();
    let ac = AhoCorasick::new(&pats, false);

    let scap = scap_run(&trace, natural, 6.0, &ac);
    let nids = libnids_run(&trace, natural, 6.0, &ac);

    assert!(
        nids.stats.drop_percent() > 50.0,
        "libnids at 6G should be overloaded (got {:.1}%)",
        nids.stats.drop_percent()
    );
    assert!(
        scap.stats.drop_percent() < nids.stats.drop_percent() * 0.7,
        "scap should drop far less ({:.1}% vs {:.1}%)",
        scap.stats.drop_percent(),
        nids.stats.drop_percent()
    );
    assert!(
        scap.stats.matches as f64 > nids.stats.matches as f64 * 1.2,
        "scap should match more ({} vs {})",
        scap.stats.matches,
        nids.stats.matches
    );
}

/// §6.5.1: under overload, Scap's stream loss stays far below its packet
/// loss, while the baselines lose streams roughly proportionally.
#[test]
fn scap_loses_far_fewer_streams_than_packets() {
    let (trace, natural, pats) = trace_with_patterns();
    let ac = AhoCorasick::new(&pats, false);
    let total_flows = scap_trace::stats::TraceStats::from_packets(trace.iter()).flows as f64;

    let scap = scap_run(&trace, natural, 6.0, &ac);
    let nids = libnids_run(&trace, natural, 6.0, &ac);

    let scap_stream_loss = 100.0 * (total_flows - scap.stats.streams_reported as f64) / total_flows;
    let nids_stream_loss = 100.0 * (total_flows - nids.stats.streams_reported as f64) / total_flows;

    assert!(
        scap_stream_loss < scap.stats.drop_percent() / 3.0,
        "scap stream loss {scap_stream_loss:.1}% should be far below its packet loss {:.1}%",
        scap.stats.drop_percent()
    );
    assert!(
        nids_stream_loss > nids.stats.drop_percent() / 3.0,
        "baseline stream loss {nids_stream_loss:.1}% should track its packet loss {:.1}%",
        nids.stats.drop_percent()
    );
    assert!(scap_stream_loss < nids_stream_loss / 4.0);
}

/// §6.2: with a zero cutoff, Scap's flow export costs almost nothing at
/// user level while Libnids burns a core.
#[test]
fn flow_export_cpu_gap() {
    use scap::apps::FlowStatsApp;
    use scap_baseline::apps::FlowExportApp;
    let trace = CampusMix::new(CampusMixConfig::sized(23, 32 << 20)).collect_all();
    let natural = natural_rate_bps(&trace);
    let replayed: Vec<Packet> =
        RateReplay::new(trace.iter().cloned(), natural, 2.0 * 1e9).collect();

    let mut sc = ScapSimStack::new(
        ScapKernel::new(ScapConfig {
            memory_bytes: ARENA,
            cutoff: scap::CutoffPolicy {
                default: Some(0),
                ..Default::default()
            },
            inactivity_timeout_ns: 500_000_000,
            ..ScapConfig::default()
        }),
        FlowStatsApp::default(),
    );
    let scap_rep = engine().run(replayed.clone(), &mut sc);

    let mut nids = UserStack::new(
        UserStackConfig {
            ring_bytes: RING,
            inactivity_timeout_ns: 500_000_000,
            ..UserStackConfig::libnids()
        },
        FlowExportApp::default(),
    );
    let nids_rep = engine().run(replayed, &mut nids);

    assert!(
        scap_rep.user_cpu_percent() < 10.0,
        "scap flow export CPU {:.1}% (paper: <10%)",
        scap_rep.user_cpu_percent()
    );
    assert!(
        nids_rep.user_cpu_percent() > scap_rep.user_cpu_percent() * 5.0,
        "libnids CPU {:.1}% vs scap {:.1}%",
        nids_rep.user_cpu_percent(),
        scap_rep.user_cpu_percent()
    );
}

/// Fig. 7: with the cache model attached, Scap takes fewer misses per
/// packet than the user-level stacks at the same (low) rate.
#[test]
fn locality_cache_misses_favor_scap() {
    use scap_sim::CacheSim;
    let (trace, natural, pats) = trace_with_patterns();
    let ac = AhoCorasick::new(&pats, false);
    let replayed: Vec<Packet> =
        RateReplay::new(trace.iter().cloned(), natural, 0.5 * 1e9).collect();

    let mut nids = UserStack::new(
        UserStackConfig {
            ring_bytes: RING,
            inactivity_timeout_ns: 500_000_000,
            ..UserStackConfig::libnids()
        },
        PatternScanApp::new(ac.clone()),
    )
    .with_cache(CacheSim::paper_l2());
    let nids_rep = engine().run(replayed.clone(), &mut nids);
    let nids_mpp = nids.cache_misses() as f64 / nids_rep.stats.wire_packets as f64;

    let mut sc = ScapSimStack::new(
        ScapKernel::new(ScapConfig {
            memory_bytes: ARENA,
            inactivity_timeout_ns: 500_000_000,
            ..ScapConfig::default()
        }),
        PatternMatchApp::new(ac),
    )
    .with_cache(CacheSim::paper_l2());
    let scap_rep = engine().run(replayed, &mut sc);
    let scap_mpp = sc.cache_misses() as f64 / scap_rep.stats.wire_packets as f64;

    assert!(
        scap_mpp < nids_mpp,
        "scap misses/packet {scap_mpp:.2} should undercut libnids {nids_mpp:.2}"
    );
}
