//! The user-level monitoring stack over the PF_PACKET ring, configurable
//! into the paper's three baselines (Libnids, Snort/Stream5, YAF).
//!
//! Architecture (what the paper's Fig. 13 calls "Stream abstraction,
//! user-level implementation"):
//!
//! 1. **NIC** — same simulated NIC as Scap (RSS to per-core queues).
//! 2. **Kernel (softirq)** — per-core threads copy each frame, up to the
//!    snap length, into one shared ring. No protocol understanding.
//! 3. **User (one thread)** — the application's capture loop pops frames
//!    from the ring, tracks flows in a *user-level* table (with the
//!    static size limit real Libnids/Snort have), reassembles TCP by
//!    copying payload *again* into per-stream buffers, and hands
//!    chunk-sized pieces to the application.
//!
//! The structural contrast with Scap: one extra copy per payload byte,
//! performed late and with poor locality; all protocol work on the single
//! application core; handshake loss unrecoverable at user level.

use crate::apps::BaselineApp;
use crate::ring::PacketRing;
use scap_flow::{FlowTable, FlowTableConfig, StreamId};
use scap_nic::Nic;
use scap_reassembly::{OverlapPolicy, ReasmConfig, ReassemblyMode, TcpConn};
use scap_sim::{CacheSim, CaptureStack, CoreBudgets, StackStats, Work};
use scap_trace::Packet;
use scap_wire::{parse_frame, Direction, Transport};
use std::collections::HashMap;

/// Baseline stack configuration.
#[derive(Debug, Clone)]
pub struct UserStackConfig {
    /// Human-readable stack name (for experiment tables).
    pub name: &'static str,
    /// Capture snap length (YAF uses 96; the others take whole frames).
    pub snaplen: usize,
    /// Perform TCP stream reassembly at user level.
    pub reassemble: bool,
    /// Only track TCP connections whose SYN was observed (Libnids).
    pub require_handshake: bool,
    /// User-level per-stream cutoff (the §6.6 patched baselines).
    pub cutoff: Option<u64>,
    /// Static flow-table limit (the Fig. 5 failure mode). Real Libnids
    /// and Snort cap out around one million tracked streams.
    pub max_flows: usize,
    /// Target-based overlap policy (Stream5 feature; Libnids ~ Linux).
    pub policy: OverlapPolicy,
    /// PF_PACKET ring size in bytes (paper: 512 MB).
    pub ring_bytes: usize,
    /// Stream-buffer memory budget (paper: 1 GB).
    pub stream_memory: usize,
    /// Chunk size delivered to the application (paper: 16 KB).
    pub chunk_size: usize,
    /// Inactivity timeout (paper: 10 s).
    pub inactivity_timeout_ns: u64,
    /// Kernel cores feeding the ring.
    pub cores: usize,
}

impl UserStackConfig {
    /// Libnids-like configuration.
    pub fn libnids() -> Self {
        UserStackConfig {
            name: "libnids",
            snaplen: 65535,
            reassemble: true,
            require_handshake: true,
            cutoff: None,
            max_flows: 1 << 20,
            policy: OverlapPolicy::Linux,
            ring_bytes: 512 << 20,
            stream_memory: 1 << 30,
            chunk_size: 16 << 10,
            inactivity_timeout_ns: 10_000_000_000,
            cores: 8,
        }
    }

    /// Snort/Stream5-like configuration.
    pub fn stream5() -> Self {
        UserStackConfig {
            name: "stream5",
            require_handshake: false,
            policy: OverlapPolicy::First,
            ..Self::libnids()
        }
    }

    /// YAF-like configuration (flow export, 96-byte snap length, no
    /// reassembly).
    pub fn yaf() -> Self {
        UserStackConfig {
            name: "yaf",
            snaplen: 96,
            reassemble: false,
            require_handshake: false,
            ..Self::libnids()
        }
    }
}

/// Per-stream user-level state.
struct UState {
    uid: u64,
    conn: Option<TcpConn>,
    /// Per-direction reassembled-but-undelivered buffer.
    buf: [Vec<u8>; 2],
    /// Per-direction delivered byte counts (for the cutoff).
    delivered: [u64; 2],
    tracked: bool,
}

/// A baseline capture stack under simulation.
pub struct UserStack<A: BaselineApp> {
    cfg: UserStackConfig,
    nic: Nic<Packet>,
    ring: PacketRing,
    flows: FlowTable,
    ustates: HashMap<StreamId, UState>,
    app: A,
    cache: Option<CacheSim>,
    stats: StackStats,
    buffered_bytes: usize,
    uid_counter: u64,
    next_expiry_scan: u64,
}

impl<A: BaselineApp> UserStack<A> {
    /// Build a stack from a configuration and application.
    pub fn new(cfg: UserStackConfig, app: A) -> Self {
        UserStack {
            nic: Nic::new(cfg.cores.max(1), 4096),
            ring: PacketRing::new(cfg.ring_bytes),
            flows: FlowTable::new(
                FlowTableConfig {
                    initial_capacity: 4096,
                    max_flows: Some(cfg.max_flows),
                },
                0xBA5E_11E5,
            ),
            ustates: HashMap::new(),
            app,
            cache: None,
            stats: StackStats::default(),
            buffered_bytes: 0,
            uid_counter: 0,
            next_expiry_scan: 0,
            cfg,
        }
    }

    /// Attach a cache model (for the locality experiment).
    pub fn with_cache(mut self, cache: CacheSim) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Total cache misses recorded (when a cache model is attached).
    pub fn cache_misses(&self) -> u64 {
        self.cache.as_ref().map_or(0, |c| c.misses)
    }

    /// The stack's display name.
    pub fn name(&self) -> &'static str {
        self.cfg.name
    }

    fn stream_buf_addr(uid: u64, dir: usize, offset: u64) -> u64 {
        0x10_0000_0000 + uid * 0x40_0000 + dir as u64 * 0x20_0000 + offset
    }

    fn flow_rec_addr(id: StreamId) -> u64 {
        0x90_0000_0000 + id.slot() as u64 * 512
    }

    /// Process one frame popped from the ring (the user capture loop
    /// body). Returns the user work performed.
    fn process_slot(&mut self, pkt: &Packet, captured: usize, addr: u64, now: u64) -> Work {
        let mut work = Work {
            u_packets: 1,
            u_syscalls: 1,
            u_bytes_touched: captured as u64,
            ..Default::default()
        };
        if let Some(c) = self.cache.as_mut() {
            work.u_cache_misses += c.access(addr, captured);
        }
        let Ok(parsed) = parse_frame(&pkt.frame) else {
            return work;
        };
        let Some(key) = parsed.key else { return work };

        work.u_tracking_ops += 1;
        let lookup = match self.flows.lookup_or_insert(&key, now) {
            Ok(l) => l,
            Err(_) => {
                // Static table full: the stream is lost for monitoring.
                // Count the loss once, on the connection attempt.
                if parsed.tcp.map(|m| m.flags.is_syn_only()).unwrap_or(false) {
                    self.stats.streams_lost += 1;
                }
                self.stats.discarded_packets += 1;
                return work;
            }
        };
        let id = lookup.id;
        let dir = lookup.direction;
        if let Some(c) = self.cache.as_mut() {
            work.u_cache_misses += c.access(Self::flow_rec_addr(id), 128);
        }

        if lookup.created {
            let is_syn = parsed.tcp.map(|m| m.flags.is_syn_only()).unwrap_or(false);
            let trackable =
                !self.cfg.require_handshake || key.transport() != Transport::Tcp || is_syn;
            self.uid_counter += 1;
            self.ustates.insert(
                id,
                UState {
                    uid: self.uid_counter,
                    conn: None,
                    buf: [Vec::new(), Vec::new()],
                    delivered: [0, 0],
                    tracked: trackable,
                },
            );
            if trackable {
                self.stats.streams_created += 1;
            }
        }

        {
            let rec = self.flows.get_mut(id).expect("live");
            rec.dirs[dir.index()].total_pkts += 1;
            rec.dirs[dir.index()].total_bytes += pkt.len() as u64;
        }
        self.flows.touch(id, now);

        let Some(mut ust) = self.ustates.remove(&id) else {
            // TIME_WAIT tombstone: absorb silently.
            self.stats.discarded_packets += 1;
            return work;
        };
        if !ust.tracked {
            self.stats.discarded_packets += 1;
            self.stats.discarded_bytes += pkt.len() as u64;
            self.ustates.insert(id, ust);
            return work;
        }

        let mut closed = None;
        if key.transport() == Transport::Tcp && self.cfg.reassemble {
            if let Some(meta) = parsed.tcp {
                if ust.conn.is_none() {
                    let rc =
                        ReasmConfig::for_mode(ReassemblyMode::Fast).with_policy(self.cfg.policy);
                    ust.conn = Some(TcpConn::new(rc));
                }
                let conn = ust.conn.as_mut().expect("just ensured");
                // Snap-length truncation would break reassembly; the
                // reassembling baselines capture whole frames.
                let payload = parsed.payload();
                let cutoff = self.cfg.cutoff.unwrap_or(u64::MAX);
                let already = ust.delivered[dir.index()] + ust.buf[dir.index()].len() as u64;
                let mut appended = 0u64;
                let buf = &mut ust.buf[dir.index()];
                let outcome = conn.on_segment(dir, &meta, payload, &mut |off, data| {
                    // User-level cutoff: data past the cap is discarded
                    // *after* all the capture work was spent on it.
                    let pos = off.max(already);
                    let _ = pos;
                    let room = cutoff.saturating_sub(already + appended);
                    let take = (room as usize).min(data.len());
                    buf.extend_from_slice(&data[..take]);
                    appended += take as u64;
                });
                work.u_bytes_copied += appended;
                self.buffered_bytes += appended as usize;
                if let Some(c) = self.cache.as_mut() {
                    work.u_cache_misses += c.access(
                        Self::stream_buf_addr(ust.uid, dir.index(), already),
                        appended as usize,
                    );
                }
                if outcome.data.delivered > 0 || outcome.data.buffered > 0 {
                    let rec = self.flows.get_mut(id).expect("live");
                    rec.dirs[dir.index()].captured_pkts += 1;
                    rec.dirs[dir.index()].captured_bytes += appended;
                }
                if self.cfg.cutoff.is_some() && appended < outcome.data.delivered {
                    self.stats.discarded_bytes += outcome.data.delivered - appended;
                }
                closed = outcome.closed_now;

                // Stream-memory pressure: the baselines drop arriving
                // packets once their buffers are exhausted.
                if self.buffered_bytes > self.cfg.stream_memory {
                    let over = appended as usize;
                    let blen = ust.buf[dir.index()].len();
                    ust.buf[dir.index()].truncate(blen.saturating_sub(over));
                    self.buffered_bytes -= over.min(self.buffered_bytes);
                    self.stats.dropped_packets += 1;
                    self.stats.dropped_bytes += pkt.len() as u64;
                }
            }
        } else if key.transport() == Transport::Udp && self.cfg.reassemble {
            let payload = parsed.payload();
            let cutoff = self.cfg.cutoff.unwrap_or(u64::MAX);
            let already = ust.delivered[dir.index()] + ust.buf[dir.index()].len() as u64;
            let room = cutoff.saturating_sub(already);
            let take = (room as usize).min(payload.len());
            ust.buf[dir.index()].extend_from_slice(&payload[..take]);
            self.buffered_bytes += take;
            work.u_bytes_copied += take as u64;
            let rec = self.flows.get_mut(id).expect("live");
            rec.dirs[dir.index()].captured_pkts += 1;
            rec.dirs[dir.index()].captured_bytes += take as u64;
        }

        // Deliver chunk-sized pieces to the application.
        for d in [Direction::Forward, Direction::Reverse] {
            while ust.buf[d.index()].len() >= self.cfg.chunk_size {
                let chunk: Vec<u8> = ust.buf[d.index()].drain(..self.cfg.chunk_size).collect();
                self.buffered_bytes -= chunk.len().min(self.buffered_bytes);
                if let Some(c) = self.cache.as_mut() {
                    work.u_cache_misses += c.access(
                        Self::stream_buf_addr(ust.uid, d.index(), ust.delivered[d.index()]),
                        chunk.len(),
                    );
                }
                ust.delivered[d.index()] += chunk.len() as u64;
                self.stats.delivered_bytes += chunk.len() as u64;
                let aw = self.app.on_data(ust.uid, d, &chunk);
                work.add(&aw);
            }
        }

        if let Some(_kind) = closed {
            self.finish_stream(id, ust, &mut work);
            // TIME_WAIT tombstone.
            let l = self
                .flows
                .lookup_or_insert(&key, now)
                .expect("slot just freed");
            let _ = l;
        } else {
            self.ustates.insert(id, ust);
        }
        work
    }

    fn finish_stream(&mut self, id: StreamId, mut ust: UState, work: &mut Work) {
        let (total_bytes, total_pkts) = match self.flows.get(id) {
            Some(rec) => (
                rec.dirs[0].total_bytes + rec.dirs[1].total_bytes,
                rec.dirs[0].total_pkts + rec.dirs[1].total_pkts,
            ),
            None => (0, 0),
        };
        for d in [Direction::Forward, Direction::Reverse] {
            // Flush any buffered out-of-order tail first.
            if let Some(conn) = ust.conn.as_mut() {
                let buf = &mut ust.buf[d.index()];
                let before = buf.len();
                conn.dir_mut(d).flush(&mut |_, data| {
                    buf.extend_from_slice(data);
                });
                let flushed = ust.buf[d.index()].len() - before;
                work.u_bytes_copied += flushed as u64;
                self.buffered_bytes += flushed;
            }
            let tail = std::mem::take(&mut ust.buf[d.index()]);
            if !tail.is_empty() {
                self.buffered_bytes -= tail.len().min(self.buffered_bytes);
                self.stats.delivered_bytes += tail.len() as u64;
                let aw = self.app.on_data(ust.uid, d, &tail);
                work.add(&aw);
            }
        }
        if ust.tracked {
            let aw = self.app.on_stream_end(ust.uid, total_bytes, total_pkts);
            work.add(&aw);
            self.stats.streams_reported += 1;
        }
        self.flows.remove(id);
    }

    /// Periodic user-level housekeeping: inactivity expiration.
    fn expire(&mut self, now: u64, work: &mut Work) {
        if now < self.next_expiry_scan {
            return;
        }
        self.next_expiry_scan = now + 100_000_000; // scan every 100 ms
        loop {
            let expired = self
                .flows
                .expire_inactive(now, self.cfg.inactivity_timeout_ns, 64);
            if expired.is_empty() {
                break;
            }
            for rec in expired {
                let id = rec.id;
                if let Some(ust) = self.ustates.remove(&id) {
                    // Reinstate briefly so finish_stream can read totals.
                    // (The record is already removed; use its values.)
                    let mut ust = ust;
                    for d in [Direction::Forward, Direction::Reverse] {
                        if let Some(conn) = ust.conn.as_mut() {
                            let buf = &mut ust.buf[d.index()];
                            conn.dir_mut(d).flush(&mut |_, data| {
                                buf.extend_from_slice(data);
                            });
                        }
                        let tail = std::mem::take(&mut ust.buf[d.index()]);
                        if !tail.is_empty() {
                            self.buffered_bytes -= tail.len().min(self.buffered_bytes);
                            self.stats.delivered_bytes += tail.len() as u64;
                            let aw = self.app.on_data(ust.uid, d, &tail);
                            work.add(&aw);
                        }
                    }
                    if ust.tracked {
                        let aw = self.app.on_stream_end(
                            ust.uid,
                            rec.dirs[0].total_bytes + rec.dirs[1].total_bytes,
                            rec.dirs[0].total_pkts + rec.dirs[1].total_pkts,
                        );
                        work.add(&aw);
                        self.stats.streams_reported += 1;
                    }
                }
                work.u_tracking_ops += 1;
            }
        }
    }
}

impl<A: BaselineApp> CaptureStack for UserStack<A> {
    fn tick(&mut self, now_ns: u64, packets: &[Packet], budgets: &mut CoreBudgets) {
        // Stages 1+2 interleaved: NIC admission with immediate softirq
        // copy into the ring while the core has budget (softirq runs
        // concurrently with arrival on real hardware).
        let ncores = self.nic.queue_count();
        let softirq = |stats: &mut StackStats,
                       ring: &mut PacketRing,
                       cache: &mut Option<CacheSim>,
                       nic: &mut Nic<Packet>,
                       core: usize,
                       budgets: &mut CoreBudgets,
                       snaplen: usize| {
            while budgets.can_run(core) {
                let Some(pkt) = nic.queue_mut(core).pop() else {
                    break;
                };
                let mut w = Work {
                    k_packets: 1,
                    ..Default::default()
                };
                match ring.push(&pkt, snaplen) {
                    Some((addr, captured)) => {
                        w.k_bytes_copied += captured as u64;
                        if let Some(c) = cache.as_mut() {
                            w.k_cache_misses += c.access(addr, captured);
                        }
                    }
                    None => {
                        stats.dropped_packets += 1;
                        stats.dropped_bytes += pkt.len() as u64;
                    }
                }
                budgets.charge_kernel(core, &w);
            }
        };
        for p in packets {
            self.stats.wire_packets += 1;
            self.stats.wire_bytes += p.len() as u64;
            if let Ok(parsed) = parse_frame(&p.frame) {
                if let Some(q) = self.nic.receive(&parsed, p.clone()).queue() {
                    softirq(
                        &mut self.stats,
                        &mut self.ring,
                        &mut self.cache,
                        &mut self.nic,
                        q,
                        budgets,
                        self.cfg.snaplen,
                    );
                }
            } else {
                self.stats.discarded_packets += 1;
            }
        }
        for core in 0..ncores {
            softirq(
                &mut self.stats,
                &mut self.ring,
                &mut self.cache,
                &mut self.nic,
                core,
                budgets,
                self.cfg.snaplen,
            );
        }
        // Stage 3 — the single user thread on core 0.
        while budgets.can_run(0) {
            let Some(slot) = self.ring.pop() else { break };
            let w = self.process_slot(&slot.packet, slot.captured, slot.addr, now_ns);
            budgets.charge_user(0, &w);
        }
        let mut w = Work::default();
        self.expire(now_ns, &mut w);
        budgets.charge_user(0, &w);
    }

    fn finish(&mut self, now_ns: u64) {
        // Drain NIC queues into the ring, then the ring through the app.
        for core in 0..self.nic.queue_count() {
            while let Some(pkt) = self.nic.queue_mut(core).pop() {
                if self.ring.push(&pkt, self.cfg.snaplen).is_none() {
                    self.stats.dropped_packets += 1;
                    self.stats.dropped_bytes += pkt.len() as u64;
                }
            }
        }
        while let Some(slot) = self.ring.pop() {
            self.process_slot(&slot.packet, slot.captured, slot.addr, now_ns);
        }
        // Close every remaining stream.
        let ids: Vec<StreamId> = self.flows.iter().map(|r| r.id).collect();
        let mut work = Work::default();
        for id in ids {
            if let Some(ust) = self.ustates.remove(&id) {
                self.finish_stream(id, ust, &mut work);
            } else {
                self.flows.remove(id);
            }
        }
    }

    fn stats(&self) -> StackStats {
        let mut s = self.stats;
        s.dropped_packets += self.nic.stats().ring_dropped_frames;
        s.matches = self.app.matches();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{FlowExportApp, PatternScanApp, TouchApp};
    use scap_patterns::AhoCorasick;
    use scap_sim::{Engine, EngineConfig};
    use scap_trace::gen::{CampusMix, CampusMixConfig};
    use std::sync::Arc;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default())
    }

    fn trace() -> Vec<Packet> {
        CampusMix::new(CampusMixConfig::sized(31, 2 << 20)).collect_all()
    }

    #[test]
    fn libnids_reassembles_within_capacity() {
        let mut stack = UserStack::new(UserStackConfig::libnids(), TouchApp::default());
        let report = engine().run(trace(), &mut stack);
        assert_eq!(report.stats.dropped_packets, 0);
        assert!(stack.app().bytes > 0);
        assert!(report.stats.streams_created > 10);
        assert_eq!(report.stats.streams_created, report.stats.streams_reported);
    }

    #[test]
    fn yaf_exports_flows_without_data_delivery() {
        let mut stack = UserStack::new(UserStackConfig::yaf(), FlowExportApp::default());
        let report = engine().run(trace(), &mut stack);
        assert_eq!(report.stats.dropped_packets, 0);
        assert!(stack.app().exported > 10);
        assert_eq!(report.stats.delivered_bytes, 0);
    }

    #[test]
    fn stream5_finds_patterns_like_scap_does() {
        let pats = vec![b"XXWEBATTACKXX".to_vec()];
        let t = CampusMix::new(CampusMixConfig {
            patterns: Some(Arc::new(pats.clone())),
            pattern_prob: 1.0,
            ..CampusMixConfig::sized(33, 2 << 20)
        })
        .collect_all();
        let ac = AhoCorasick::new(&pats, false);
        let mut stack = UserStack::new(UserStackConfig::stream5(), PatternScanApp::new(ac));
        let report = engine().run(t, &mut stack);
        assert!(report.stats.matches > 0);
    }

    #[test]
    fn static_flow_limit_loses_streams() {
        use scap_trace::concurrent::ConcurrentStreams;
        let gen = ConcurrentStreams {
            streams: 200,
            data_packets_per_stream: 3,
            payload_per_packet: 500,
            wire_gap_ns: 10_000,
        };
        let cfg = UserStackConfig {
            max_flows: 50,
            ..UserStackConfig::libnids()
        };
        let mut stack = UserStack::new(cfg, TouchApp::default());
        let report = engine().run(gen.iter().collect::<Vec<_>>(), &mut stack);
        assert!(
            report.stats.streams_lost >= 150,
            "lost {}",
            report.stats.streams_lost
        );
        assert!(report.stats.streams_created <= 50);
    }

    #[test]
    fn libnids_requires_handshake_but_stream5_does_not() {
        use scap_wire::{PacketBuilder, TcpFlags};
        // Mid-stream data with no SYN.
        let pkts: Vec<Packet> = (0..10u32)
            .map(|i| {
                Packet::new(
                    u64::from(i) * 1_000_000,
                    PacketBuilder::tcp_v4(
                        [1, 1, 1, 1],
                        [2, 2, 2, 2],
                        5000,
                        80,
                        1000 + i * 100,
                        1,
                        TcpFlags::ACK,
                        &[0x41; 100],
                    ),
                )
            })
            .collect();
        let mut nids = UserStack::new(UserStackConfig::libnids(), TouchApp::default());
        let r1 = engine().run(pkts.clone(), &mut nids);
        assert_eq!(r1.stats.streams_created, 0);
        assert_eq!(nids.app().bytes, 0);

        let mut s5 = UserStack::new(UserStackConfig::stream5(), TouchApp::default());
        let r2 = engine().run(pkts, &mut s5);
        assert_eq!(r2.stats.streams_created, 1);
        assert_eq!(s5.app().bytes, 1000);
    }

    #[test]
    fn user_level_cutoff_limits_delivery_not_work() {
        let cfg = UserStackConfig {
            cutoff: Some(1000),
            ..UserStackConfig::stream5()
        };
        let mut with_cutoff = UserStack::new(cfg, TouchApp::default());
        let t = trace();
        let r1 = engine().run(t.clone(), &mut with_cutoff);
        let mut without = UserStack::new(UserStackConfig::stream5(), TouchApp::default());
        let r2 = engine().run(t, &mut without);
        // Less data delivered with the cutoff...
        assert!(with_cutoff.app().bytes < without.app().bytes / 2);
        // ...but the capture-side work (kernel copies) is identical:
        // everything still flowed through the ring.
        assert_eq!(r1.stats.wire_packets, r2.stats.wire_packets);
        assert_eq!(r1.stats.dropped_packets, 0);
    }

    #[test]
    fn overload_fills_ring_and_drops() {
        let t = CampusMix::new(CampusMixConfig::sized(35, 8 << 20)).collect_all();
        let natural = scap_trace::replay::natural_rate_bps(&t);
        let fast: Vec<Packet> =
            scap_trace::replay::RateReplay::new(t.into_iter(), natural, 6e9).collect();
        let cfg = UserStackConfig {
            ring_bytes: 2 << 20, // small ring to trigger overload quickly
            ..UserStackConfig::libnids()
        };
        let mut stack = UserStack::new(cfg, TouchApp::default());
        let report = engine().run(fast, &mut stack);
        assert!(
            report.stats.drop_percent() > 5.0,
            "drop {:.2}%",
            report.stats.drop_percent()
        );
        // The user core saturates — that is *why* the ring fills.
        assert!(
            report.user_busy[0] > 0.9,
            "user busy {}",
            report.user_busy[0]
        );
    }
}
