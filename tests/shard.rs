//! Shard-fleet properties: the RSS-consistent partition function is
//! direction-symmetric and stable for any shard count, and a supervised
//! fleet under a mid-storm shard kill neither loses nor double-counts a
//! single byte — the fleet conservation identity holds exactly and the
//! supervisor's flight journal reconciles against it.

use proptest::prelude::*;
use scap::flight::{decode_journal, DropReason, FlightKind, FlightLayer};
use scap::{FaultPlan, FleetConfig, ScapConfig, ShardFleet, ShardMap, ShardState};
use scap_trace::gen::{CampusMix, CampusMixConfig};
use scap_wire::{FlowKey, Transport};

// ---------------------------------------------------------------------------
// Partition properties
// ---------------------------------------------------------------------------

/// An arbitrary IPv4 flow key (the vendored proptest has no `prop_map`,
/// so this is a hand-rolled strategy).
struct ArbKey;

impl Strategy for ArbKey {
    type Value = FlowKey;
    fn generate(&self, rng: &mut proptest::TestRng) -> FlowKey {
        use rand::Rng;
        let transport = match rng.random_range(0..3u8) {
            0 => Transport::Tcp,
            1 => Transport::Udp,
            _ => Transport::Other(rng.random()),
        };
        let mut addr = || {
            let w: u32 = rng.random();
            w.to_le_bytes()
        };
        let (src, dst) = (addr(), addr());
        FlowKey::new_v4(src, dst, rng.random(), rng.random(), transport)
    }
}

fn arb_key() -> ArbKey {
    ArbKey
}

proptest! {
    /// Both directions of any flow land on the same shard, for any
    /// shard count >= 1 and any partition seed — the property that lets
    /// a fleet reassemble streams without cross-shard traffic.
    #[test]
    fn partition_is_direction_symmetric(
        key in arb_key(),
        nshards in 1usize..64,
        seed in any::<u64>(),
    ) {
        let map = ShardMap::new(nshards, seed);
        let fwd = map.shard_of(&key);
        prop_assert!(fwd < nshards);
        prop_assert_eq!(fwd, map.shard_of(&key.reversed()));
        // Canonicalization does not move the flow either.
        prop_assert_eq!(fwd, map.shard_of(&key.canonical().0));
    }

    /// The partition is a pure function: the same key maps to the same
    /// shard on every call, and a single-shard map sends everything to
    /// shard 0.
    #[test]
    fn partition_is_stable(key in arb_key(), nshards in 1usize..64, seed in any::<u64>()) {
        let map = ShardMap::new(nshards, seed);
        prop_assert_eq!(map.shard_of(&key), map.shard_of(&key));
        prop_assert_eq!(ShardMap::new(1, seed).shard_of(&key), 0);
    }
}

// ---------------------------------------------------------------------------
// Chaos: kills mid-storm never break the fleet ledger
// ---------------------------------------------------------------------------

fn storm_fleet(seed: u64, nshards: usize, trace_bytes: u64) -> ShardFleet {
    let cfg = FleetConfig {
        nshards,
        shard: ScapConfig {
            memory_bytes: 16 << 20,
            cores: 1,
            inactivity_timeout_ns: u64::MAX / 2,
            ..ScapConfig::default()
        },
        faults: Some(FaultPlan::shard_storm(seed, nshards)),
        ..FleetConfig::default()
    };
    let cap_ns = cfg.backoff_cap_ns;
    let mut fleet = ShardFleet::new(cfg);
    let mut last = 0u64;
    for p in CampusMix::new(CampusMixConfig::sized(seed, trace_bytes)) {
        last = p.ts_ns;
        fleet.offer(&p);
    }
    fleet.tick(last + cap_ns + 1);
    fleet.finish(last + cap_ns + 2);
    fleet
}

#[test]
fn mid_storm_kills_never_lose_or_double_count_bytes() {
    for seed in [3u64, 17, 91] {
        let fleet = storm_fleet(seed, 4, 4 << 20);
        let fs = fleet.fleet_stats();
        assert!(fs.kills > 0, "seed {seed}: the storm must kill shards");

        // Conservation: every wire packet and byte took exactly one exit
        // in exactly one shard incarnation — or is attributed to a
        // blackout. No loss, no double count.
        assert!(
            fs.packets_conserved(),
            "seed {seed}: packet ledger broken: wire={} delivered={} dropped={} \
             discarded={} shard_down={}",
            fs.wire_packets,
            fs.delivered_packets,
            fs.dropped_packets,
            fs.discarded_packets,
            fs.shard_down_packets
        );
        assert!(
            fs.bytes_conserved(),
            "seed {seed}: byte ledger broken: wire={} shard_wire={} shard_down={}",
            fs.wire_bytes,
            fs.shard_wire_bytes,
            fs.shard_down_bytes
        );

        // The supervisor journal's aggregated blackout events reconcile
        // byte-exactly against the counters.
        let journal = decode_journal(&fleet.flight().encode()).expect("journal decodes");
        let (mut jp, mut jb) = (0u64, 0u64);
        for e in &journal.events {
            if e.kind == FlightKind::Drop
                && e.layer == FlightLayer::Shard
                && e.reason == DropReason::ShardDown
            {
                jp += e.a;
                jb += e.b;
            }
        }
        assert_eq!(
            (jp, jb),
            (fs.shard_down_packets, fs.shard_down_bytes),
            "seed {seed}: journal blackout events disagree with the fleet counters"
        );

        // Recovery: every kill ended in a respawn or an explicit park.
        for st in fleet.status() {
            assert!(
                st.state == ShardState::Parked || st.kills == st.respawns,
                "seed {seed} shard {}: {} kills, {} respawns, state {:?}",
                st.shard,
                st.kills,
                st.respawns,
                st.state
            );
        }
    }
}

#[test]
fn quiet_fleet_attributes_nothing_to_blackouts() {
    let cfg = FleetConfig {
        nshards: 3,
        shard: ScapConfig {
            memory_bytes: 16 << 20,
            cores: 1,
            inactivity_timeout_ns: u64::MAX / 2,
            ..ScapConfig::default()
        },
        ..FleetConfig::default()
    };
    let mut fleet = ShardFleet::new(cfg);
    let mut last = 0u64;
    for p in CampusMix::new(CampusMixConfig::sized(5, 2 << 20)) {
        last = p.ts_ns;
        fleet.offer(&p);
    }
    fleet.finish(last + 1);
    let fs = fleet.fleet_stats();
    assert_eq!(fs.kills, 0);
    assert_eq!(fs.shard_down_packets, 0);
    assert_eq!(fs.shard_down_bytes, 0);
    assert!(fs.packets_conserved() && fs.bytes_conserved());
}
