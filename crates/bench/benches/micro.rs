//! Criterion micro-benchmarks: one group per substrate, measuring the
//! real (wall-clock) throughput of the reproduction's data-path code.
//! These complement the `experiments` binary, which regenerates the
//! paper's figures under the calibrated performance model.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use scap_filter::Filter;
use scap_memory::{Arena, ChunkAssembler};
use scap_patterns::{generate_web_attack_patterns, AhoCorasick, MatcherState};
use scap_reassembly::{DirReassembler, ReasmConfig, ReassemblyMode};
use scap_trace::gen::{CampusMix, CampusMixConfig};
use scap_wire::{parse_frame, FlowKey, PacketBuilder, TcpFlags, Transport};
use std::hint::black_box;

fn bench_wire_parse(c: &mut Criterion) {
    let frame = PacketBuilder::tcp_v4(
        [10, 0, 0, 1],
        [10, 0, 0, 2],
        40000,
        80,
        1,
        1,
        TcpFlags::ACK,
        &[0x41; 1400],
    );
    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Bytes(frame.len() as u64));
    g.bench_function("parse_frame_1400B", |b| {
        b.iter(|| parse_frame(black_box(&frame)).unwrap())
    });
    g.finish();
}

fn bench_patterns(c: &mut Criterion) {
    let pats = generate_web_attack_patterns(2120, 42);
    let ac = AhoCorasick::new(&pats, false);
    let data = vec![0x61u8; 64 << 10];
    let mut g = c.benchmark_group("patterns");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("aho_corasick_scan_64K_2120pats", |b| {
        b.iter(|| {
            let mut st = MatcherState::new();
            black_box(ac.count(&mut st, black_box(&data)))
        })
    });
    g.finish();
}

fn bench_reassembly(c: &mut Criterion) {
    // 64 segments of 1460 B, slightly reordered.
    let mut segs: Vec<(u32, Vec<u8>)> = (0..64u32)
        .map(|i| (i * 1460, vec![(i % 251) as u8; 1460]))
        .collect();
    for i in (1..segs.len()).step_by(7) {
        segs.swap(i - 1, i);
    }
    let total: u64 = segs.iter().map(|(_, d)| d.len() as u64).sum();
    let mut g = c.benchmark_group("reassembly");
    g.throughput(Throughput::Bytes(total));
    g.bench_function("tcp_dir_64segs_reordered", |b| {
        b.iter_batched(
            || DirReassembler::new(ReasmConfig::for_mode(ReassemblyMode::Fast)),
            |mut r| {
                r.set_base(0);
                let mut n = 0u64;
                for (seq, data) in &segs {
                    r.on_data(*seq, data, &mut |_, d| n += d.len() as u64);
                }
                black_box(n)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_flow_table(c: &mut Criterion) {
    use scap_flow::{FlowTable, FlowTableConfig};
    let keys: Vec<FlowKey> = (0..10_000u32)
        .map(|i| {
            FlowKey::new_v4(
                [10, (i >> 8) as u8, i as u8, 1],
                [93, 184, 216, 34],
                1024 + (i % 60000) as u16,
                443,
                Transport::Tcp,
            )
        })
        .collect();
    let mut g = c.benchmark_group("flow_table");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("insert_lookup_10k", |b| {
        b.iter_batched(
            || FlowTable::new(FlowTableConfig::default(), 7),
            |mut t| {
                for (i, k) in keys.iter().enumerate() {
                    black_box(t.lookup_or_insert(k, i as u64).unwrap());
                }
                for k in &keys {
                    black_box(t.lookup(&k.reversed()));
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();

    // Probe latency at the scale the fast path is built for: a table
    // holding a million live entries, hit from the reverse direction
    // (canonicalization + full-load probe walk).
    let mut t = FlowTable::new(FlowTableConfig::default(), 7);
    let mkey = |i: u32| {
        FlowKey::new_v4(
            [10, (i >> 16) as u8, (i >> 8) as u8, i as u8],
            [93, 184, 216, 34],
            1024 + (i % 60000) as u16,
            443,
            Transport::Tcp,
        )
    };
    const MFLOWS: u32 = 1 << 20;
    for i in 0..MFLOWS {
        t.lookup_or_insert(&mkey(i), u64::from(i))
            .expect("unbounded table");
    }
    let probe_keys: Vec<FlowKey> = (0..1024u32)
        .map(|j| mkey(j * (MFLOWS / 1024)).reversed())
        .collect();
    let mut g = c.benchmark_group("flow_table");
    g.throughput(Throughput::Elements(probe_keys.len() as u64));
    g.bench_function("hit_probe_1m_entries", |b| {
        b.iter(|| {
            let mut found = 0u32;
            for k in &probe_keys {
                found += u32::from(t.lookup(black_box(k)).is_some());
            }
            assert_eq!(found as usize, probe_keys.len());
            black_box(found)
        })
    });
    g.finish();
}

fn bench_filter(c: &mut Criterion) {
    let f = Filter::new("tcp and (dst port 80 or dst port 443) and src net 10.0.0.0/8")
        .expect("valid filter");
    let hit = PacketBuilder::tcp_v4(
        [10, 1, 2, 3],
        [5, 6, 7, 8],
        9999,
        443,
        1,
        1,
        TcpFlags::ACK,
        b"x",
    );
    let miss = PacketBuilder::udp_v4([11, 1, 2, 3], [5, 6, 7, 8], 53, 53, b"x");
    let mut g = c.benchmark_group("filter");
    g.throughput(Throughput::Elements(2));
    g.bench_function("bpf_vm_two_frames", |b| {
        b.iter(|| {
            black_box(f.matches_frame(black_box(&hit)));
            black_box(f.matches_frame(black_box(&miss)));
        })
    });
    g.finish();
}

fn bench_rss(c: &mut Criterion) {
    use scap_nic::RssHasher;
    let h = RssHasher::symmetric(8);
    let k = FlowKey::new_v4(
        [10, 1, 2, 3],
        [93, 184, 216, 34],
        40000,
        443,
        Transport::Tcp,
    );
    let mut g = c.benchmark_group("nic");
    g.throughput(Throughput::Elements(1));
    g.bench_function("toeplitz_rss_v4", |b| {
        b.iter(|| black_box(h.queue_for(black_box(&k))))
    });
    g.finish();
}

fn bench_chunk_assembly(c: &mut Criterion) {
    let data = vec![0x42u8; 1 << 20];
    let mut g = c.benchmark_group("memory");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("chunk_assembler_1MB_16K_chunks", |b| {
        b.iter_batched(
            || (Arena::new(4 << 20), ChunkAssembler::new(16 << 10, 0)),
            |(mut arena, mut asm)| {
                let mut out = Vec::new();
                for piece in data.chunks(1460) {
                    asm.append(&mut arena, piece, &mut out).unwrap();
                    for cb in out.drain(..) {
                        arena.release(cb);
                    }
                }
                black_box(asm.bytes_copied)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_gen");
    g.sample_size(10);
    g.bench_function("campus_mix_2MB", |b| {
        b.iter(|| {
            let pkts = CampusMix::new(CampusMixConfig::sized(9, 2 << 20)).collect_all();
            black_box(pkts.len())
        })
    });
    g.finish();
}

fn bench_telemetry(c: &mut Criterion) {
    use scap_telemetry::{AtomicRegistry, Metric, PlainRegistry, Stage};
    let plain = PlainRegistry::new(8);
    let atomic = AtomicRegistry::new(8);
    let mut g = c.benchmark_group("telemetry");
    g.throughput(Throughput::Elements(1));
    // The hot-path contract: a counter record is a single indexed add.
    g.bench_function("counter_add_plain", |b| {
        b.iter(|| plain.add(black_box(3), Metric::WirePackets, black_box(1)))
    });
    g.bench_function("counter_add_atomic", |b| {
        b.iter(|| atomic.add(black_box(3), Metric::WirePackets, black_box(1)))
    });
    g.bench_function("stage_hist_record_plain", |b| {
        b.iter(|| plain.record_stage(black_box(3), Stage::Kernel, black_box(1234)))
    });
    g.finish();
}

fn bench_fastpath_stages(c: &mut Criterion) {
    use scap_fastpath::{hash_burst, pull_burst, DEFAULT_BURST};
    use scap_nic::RxQueue;

    let keys: Vec<Option<FlowKey>> = (0..DEFAULT_BURST as u32)
        .map(|i| {
            Some(FlowKey::new_v4(
                [10, 0, (i >> 8) as u8, i as u8],
                [93, 184, 216, 34],
                1024 + (i % 60000) as u16,
                443,
                Transport::Udp,
            ))
        })
        .collect();
    let mut g = c.benchmark_group("fastpath");
    g.throughput(Throughput::Elements(DEFAULT_BURST as u64));
    g.bench_function("hash_burst_64", |b| {
        let mut out = Vec::with_capacity(DEFAULT_BURST);
        b.iter(|| {
            hash_burst(0x5CA9, black_box(keys.iter().copied()), &mut out);
            black_box(out.len())
        })
    });
    g.bench_function("pull_burst_64", |b| {
        b.iter_batched(
            || {
                let mut ring = RxQueue::new(128);
                for i in 0..DEFAULT_BURST as u32 {
                    assert!(ring.push(i));
                }
                ring
            },
            |mut ring| {
                let mut out = Vec::with_capacity(DEFAULT_BURST);
                black_box(pull_burst(&mut ring, DEFAULT_BURST, &mut out))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Real wall-clock dispatch throughput (pkts/s) on a table preloaded
/// with 128 K live flows: classic per-packet polling vs. the batched
/// fast path at several burst sizes. The kernel is built and loaded
/// once per row; each iteration replays a 4096-packet hit batch.
fn bench_fastpath_dispatch(c: &mut Criterion) {
    use scap::{DispatchMode, ScapConfig, ScapKernel};

    const FLOWS: u32 = 1 << 17;
    const HITS: usize = 4096;

    let udp = |i: u32, reversed: bool| {
        let src = [10, (i >> 16) as u8, (i >> 8) as u8, i as u8];
        let dst = [172, 16 + (i >> 16) as u8, (i >> 8) as u8, i as u8];
        let sport = 1024 + (i % 60_000) as u16;
        if reversed {
            PacketBuilder::udp_v4(dst, src, 53, sport, &[])
        } else {
            PacketBuilder::udp_v4(src, dst, sport, 53, &[])
        }
    };
    let drain = |kernel: &mut ScapKernel, fastpath: bool, now: u64| {
        for core in 0..kernel.ncores() {
            loop {
                let w = if fastpath {
                    kernel.poll_burst(core, now)
                } else {
                    kernel.kernel_poll(core, now)
                };
                if w.is_none() {
                    break;
                }
            }
            while kernel.next_event(core).is_some() {}
        }
    };

    let hit_pkts: Vec<scap_trace::Packet> = (0..HITS as u32)
        .map(|j| {
            scap_trace::Packet::new(u64::from(FLOWS + j), udp(j * (FLOWS / HITS as u32), true))
        })
        .collect();

    let mut g = c.benchmark_group("fastpath_dispatch");
    g.throughput(Throughput::Elements(HITS as u64));
    for (id, mode, burst) in [
        ("classic_128k_flows", DispatchMode::Classic, 64),
        ("bypass_burst8_128k_flows", DispatchMode::Fastpath, 8),
        ("bypass_burst64_128k_flows", DispatchMode::Fastpath, 64),
        ("bypass_burst128_128k_flows", DispatchMode::Fastpath, 128),
    ] {
        let cfg = ScapConfig {
            dispatch: mode,
            fastpath_burst: burst,
            inactivity_timeout_ns: u64::MAX / 2,
            ..Default::default()
        };
        let mut kernel = ScapKernel::new(cfg);
        let fastpath = mode == DispatchMode::Fastpath;
        // Preload: one empty-payload UDP packet per flow keeps every
        // record alive in the open-addressed table without touching
        // the arena.
        for i in 0..FLOWS {
            kernel.nic_receive(&scap_trace::Packet::new(u64::from(i) + 1, udp(i, false)));
            if i % 1024 == 1023 {
                drain(&mut kernel, fastpath, u64::from(i) + 1);
            }
        }
        drain(&mut kernel, fastpath, u64::from(FLOWS));
        g.bench_function(id, |b| {
            b.iter(|| {
                for p in &hit_pkts {
                    kernel.nic_receive(black_box(p));
                }
                drain(&mut kernel, fastpath, u64::from(FLOWS) + HITS as u64);
            })
        });
    }
    g.finish();
}

fn bench_scap_end_to_end(c: &mut Criterion) {
    use scap::apps::PatternMatchApp;
    use scap::{ScapConfig, ScapKernel, ScapSimStack};
    use scap_sim::CaptureStack;
    use scap_sim::CoreBudgets;

    let pats = generate_web_attack_patterns(512, 3);
    let trace = CampusMix::new(CampusMixConfig::sized(5, 4 << 20)).collect_all();
    let bytes: u64 = trace.iter().map(|p| p.len() as u64).sum();
    let ac = AhoCorasick::new(&pats, false);
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("scap_kernel_plus_matching_4MB", |b| {
        b.iter_batched(
            || {
                (
                    ScapSimStack::new(
                        ScapKernel::new(ScapConfig::default()),
                        PatternMatchApp::new(ac.clone()),
                    ),
                    CoreBudgets::new(
                        scap_sim::CostModel {
                            core_hz: 1e15,
                            ..Default::default()
                        },
                        8,
                        1_000_000,
                    ),
                )
            },
            |(mut stack, mut budgets)| {
                stack.tick(0, &trace, &mut budgets);
                stack.finish(1);
                black_box(stack.stats().matches)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_wire_parse,
    bench_patterns,
    bench_reassembly,
    bench_flow_table,
    bench_filter,
    bench_rss,
    bench_chunk_assembly,
    bench_generator,
    bench_telemetry,
    bench_fastpath_stages,
    bench_fastpath_dispatch,
    bench_scap_end_to_end,
);
criterion_main!(benches);
