//! Receive Side Scaling: the Toeplitz hash and indirection table.
//!
//! The hash is the Microsoft RSS Toeplitz construction: for every set bit
//! of the input (concatenated source address, destination address, source
//! port, destination port, in network order), XOR in the 32-bit window of
//! the secret key starting at that bit position.
//!
//! Plain RSS keys hash the two directions of a connection to different
//! queues. Woo & Park observed that a key built from a repeating 16-bit
//! block makes the hash *symmetric* under (src,dst) swap — the paper uses
//! this so each bidirectional TCP connection is handled by one core. The
//! [`SYMMETRIC_RSS_KEY`] here is the `0x6D5A` repetition from their
//! report.

use scap_wire::{FlowKey, IpAddrBytes};

/// The symmetric RSS key (repeating 0x6D5A), 40 bytes — enough windows for
/// IPv6 inputs (36 input bytes need 36+4 key bytes; we keep 52 for slack).
pub const SYMMETRIC_RSS_KEY: [u8; 52] = {
    let mut k = [0u8; 52];
    let mut i = 0;
    while i < 52 {
        k[i] = if i % 2 == 0 { 0x6D } else { 0x5A };
        i += 1;
    }
    k
};

/// Toeplitz hasher with an indirection table, as on the 82599.
#[derive(Debug, Clone)]
pub struct RssHasher {
    key: [u8; 52],
    /// 128-entry indirection table mapping hash LSBs to queues.
    indirection: [u8; 128],
}

impl RssHasher {
    /// Symmetric-key hasher dispatching over `nqueues` queues with the
    /// default round-robin indirection table.
    pub fn symmetric(nqueues: usize) -> Self {
        assert!(nqueues > 0 && nqueues <= 128);
        let mut indirection = [0u8; 128];
        for (i, e) in indirection.iter_mut().enumerate() {
            *e = (i % nqueues) as u8;
        }
        RssHasher {
            key: SYMMETRIC_RSS_KEY,
            indirection,
        }
    }

    /// Replace the indirection table (dynamic rebalancing).
    pub fn set_indirection(&mut self, table: [u8; 128]) {
        self.indirection = table;
    }

    /// Toeplitz hash of an arbitrary input against the key.
    pub fn toeplitz(&self, input: &[u8]) -> u32 {
        debug_assert!(input.len() + 4 <= self.key.len());
        let mut result: u32 = 0;
        // The running 32-bit key window, advanced one bit per input bit.
        let mut window: u32 =
            u32::from_be_bytes([self.key[0], self.key[1], self.key[2], self.key[3]]);
        for (i, &byte) in input.iter().enumerate() {
            let next_key_byte = 4 + i;
            for bit in (0..8).rev() {
                if byte >> bit & 1 == 1 {
                    result ^= window;
                }
                // Shift the window left one bit, pulling in the next key bit.
                let next_bit = if next_key_byte < self.key.len() {
                    (self.key[next_key_byte] >> bit) & 1
                } else {
                    0
                };
                window = (window << 1) | u32::from(next_bit);
            }
        }
        result
    }

    /// RSS hash of a flow key (5-tuple input in the standard field order).
    pub fn hash_key(&self, key: &FlowKey) -> u32 {
        let mut input = [0u8; 36];
        let len = match (key.src(), key.dst()) {
            (IpAddrBytes::V4(s), IpAddrBytes::V4(d)) => {
                input[0..4].copy_from_slice(&s);
                input[4..8].copy_from_slice(&d);
                input[8..10].copy_from_slice(&key.src_port().to_be_bytes());
                input[10..12].copy_from_slice(&key.dst_port().to_be_bytes());
                12
            }
            (IpAddrBytes::V6(s), IpAddrBytes::V6(d)) => {
                input[0..16].copy_from_slice(&s);
                input[16..32].copy_from_slice(&d);
                input[32..34].copy_from_slice(&key.src_port().to_be_bytes());
                input[34..36].copy_from_slice(&key.dst_port().to_be_bytes());
                36
            }
            // Mixed families never occur in one key.
            _ => unreachable!("flow keys are family-homogeneous"),
        };
        self.toeplitz(&input[..len])
    }

    /// The RX queue for a flow, via the indirection table.
    pub fn queue_for(&self, key: &FlowKey) -> usize {
        let h = self.hash_key(key);
        usize::from(self.indirection[(h & 0x7F) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use scap_wire::Transport;

    /// Microsoft's RSS verification suite key.
    const MS_KEY: [u8; 40] = [
        0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f,
        0xb0, 0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
        0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
    ];

    fn ms_hasher() -> RssHasher {
        let mut key = [0u8; 52];
        key[..40].copy_from_slice(&MS_KEY);
        RssHasher {
            key,
            indirection: [0u8; 128],
        }
    }

    /// Known-answer tests from the Microsoft RSS verification suite
    /// (IPv4 with TCP ports).
    #[test]
    fn toeplitz_known_answers() {
        let h = ms_hasher();
        // 66.9.149.187:2794 -> 161.142.100.80:1766  => 0x51ccc178
        let mut input = Vec::new();
        input.extend_from_slice(&[66, 9, 149, 187]);
        input.extend_from_slice(&[161, 142, 100, 80]);
        input.extend_from_slice(&2794u16.to_be_bytes());
        input.extend_from_slice(&1766u16.to_be_bytes());
        assert_eq!(h.toeplitz(&input), 0x51cc_c178);

        // 199.92.111.2:14230 -> 65.69.140.83:4739 => 0xc626b0ea
        let mut input = Vec::new();
        input.extend_from_slice(&[199, 92, 111, 2]);
        input.extend_from_slice(&[65, 69, 140, 83]);
        input.extend_from_slice(&14230u16.to_be_bytes());
        input.extend_from_slice(&4739u16.to_be_bytes());
        assert_eq!(h.toeplitz(&input), 0xc626_b0ea);
    }

    /// IP-only known answers (no ports).
    #[test]
    fn toeplitz_known_answers_ip_only() {
        let h = ms_hasher();
        let input = [66, 9, 149, 187, 161, 142, 100, 80];
        assert_eq!(h.toeplitz(&input), 0x323e_8fc2);
        let input = [199, 92, 111, 2, 65, 69, 140, 83];
        assert_eq!(h.toeplitz(&input), 0xd718_262a);
    }

    #[test]
    fn symmetric_key_makes_directions_collide() {
        let h = RssHasher::symmetric(8);
        let k = FlowKey::new_v4(
            [10, 1, 2, 3],
            [93, 184, 216, 34],
            43210,
            443,
            Transport::Tcp,
        );
        assert_eq!(h.hash_key(&k), h.hash_key(&k.reversed()));
        assert_eq!(h.queue_for(&k), h.queue_for(&k.reversed()));
    }

    #[test]
    fn queues_are_reasonably_balanced() {
        let h = RssHasher::symmetric(8);
        let mut counts = [0usize; 8];
        for i in 0..4000u32 {
            let k = FlowKey::new_v4(
                [10, (i >> 8) as u8, i as u8, 7],
                [93, 184, (i % 13) as u8, 34],
                1024 + (i % 50000) as u16,
                443,
                Transport::Tcp,
            );
            counts[h.queue_for(&k)] += 1;
        }
        // No queue wildly over- or under-loaded (within 3x of fair share).
        for (q, &c) in counts.iter().enumerate() {
            assert!(c > 500 / 3 && c < 1500, "queue {q} got {c}");
        }
    }

    #[test]
    fn indirection_table_override() {
        let mut h = RssHasher::symmetric(4);
        h.set_indirection([2u8; 128]);
        let k = FlowKey::new_v4([1, 2, 3, 4], [5, 6, 7, 8], 1, 2, Transport::Udp);
        assert_eq!(h.queue_for(&k), 2);
    }

    proptest! {
        /// Symmetry holds for arbitrary v4 flow keys.
        #[test]
        fn symmetric_for_all_keys(s: [u8;4], d: [u8;4], sp: u16, dp: u16) {
            let h = RssHasher::symmetric(16);
            let k = FlowKey::new_v4(s, d, sp, dp, Transport::Tcp);
            prop_assert_eq!(h.hash_key(&k), h.hash_key(&k.reversed()));
        }

        /// Symmetry holds for v6 keys too.
        #[test]
        fn symmetric_for_v6_keys(s: [u8;16], d: [u8;16], sp: u16, dp: u16) {
            let h = RssHasher::symmetric(16);
            let k = FlowKey::new_v6(s, d, sp, dp, Transport::Udp);
            prop_assert_eq!(h.hash_key(&k), h.hash_key(&k.reversed()));
        }
    }
}
