//! Evasion-resistance integration tests: TCP segmentation tricks against
//! the full Scap pipeline (NIC → kernel → reassembly → chunks).
//!
//! These exercise the attacks the reassembly literature catalogues —
//! overlapping segments with conflicting content, out-of-order floods,
//! data before the handshake — end-to-end rather than against the
//! reassembler in isolation.

use scap::{OverlapPolicy, Scap, StreamCtx, StreamErrors};
use scap_trace::Packet;
use scap_wire::{PacketBuilder, TcpFlags};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const C: [u8; 4] = [10, 0, 0, 1];
const S: [u8; 4] = [172, 16, 0, 1];
const CP: u16 = 40000;
const SP: u16 = 80;

/// A hand-built session: handshake, then the given client segments
/// (seq offset relative to ISN+1, payload), then FIN exchange.
fn session(segments: &[(u32, &[u8])]) -> Vec<Packet> {
    let isn_c = 1000u32;
    let isn_s = 2000u32;
    let mut t = 0u64;
    let mut nt = || {
        t += 1_000_000;
        t
    };
    let mut pkts = vec![
        Packet::new(
            nt(),
            PacketBuilder::tcp_v4(C, S, CP, SP, isn_c, 0, TcpFlags::SYN, b""),
        ),
        Packet::new(
            nt(),
            PacketBuilder::tcp_v4(
                S,
                C,
                SP,
                CP,
                isn_s,
                isn_c + 1,
                TcpFlags::SYN | TcpFlags::ACK,
                b"",
            ),
        ),
        Packet::new(
            nt(),
            PacketBuilder::tcp_v4(C, S, CP, SP, isn_c + 1, isn_s + 1, TcpFlags::ACK, b""),
        ),
    ];
    let mut max_end = 0u32;
    for (off, data) in segments {
        pkts.push(Packet::new(
            nt(),
            PacketBuilder::tcp_v4(
                C,
                S,
                CP,
                SP,
                isn_c + 1 + off,
                isn_s + 1,
                TcpFlags::ACK | TcpFlags::PSH,
                data,
            ),
        ));
        max_end = max_end.max(off + data.len() as u32);
    }
    let end_seq = isn_c + 1 + max_end;
    pkts.push(Packet::new(
        nt(),
        PacketBuilder::tcp_v4(
            C,
            S,
            CP,
            SP,
            end_seq,
            isn_s + 1,
            TcpFlags::FIN | TcpFlags::ACK,
            b"",
        ),
    ));
    pkts.push(Packet::new(
        nt(),
        PacketBuilder::tcp_v4(
            S,
            C,
            SP,
            CP,
            isn_s + 1,
            end_seq + 1,
            TcpFlags::FIN | TcpFlags::ACK,
            b"",
        ),
    ));
    pkts
}

/// Capture a session with a policy; return (reassembled bytes, errors).
fn capture(policy: OverlapPolicy, pkts: Vec<Packet>) -> (Vec<u8>, StreamErrors) {
    let data = Arc::new(std::sync::Mutex::new(Vec::new()));
    let errs = Arc::new(AtomicU64::new(0));
    let mut scap = Scap::builder()
        .overlap_policy(policy)
        .inactivity_timeout_ns(500_000_000)
        .try_build()
        .unwrap();
    {
        let data = data.clone();
        scap.dispatch_data(move |ctx: &StreamCtx<'_>| {
            if let Some(d) = ctx.data {
                data.lock().unwrap().extend_from_slice(d);
            }
        });
        let errs = errs.clone();
        scap.dispatch_termination(move |ctx: &StreamCtx<'_>| {
            errs.store(u64::from(ctx.stream.errors.0), Ordering::Relaxed);
        });
    }
    scap.start_capture(pkts);
    let bytes = data.lock().unwrap().clone();
    (bytes, StreamErrors(errs.load(Ordering::Relaxed) as u8))
}

/// The classic overlap attack: an "innocent" segment is later overlapped
/// by a "malicious" rewrite. Bytes that were already delivered in order
/// are committed — no policy rewrites history (the application may have
/// already acted on them), so the rewrite is absorbed as a
/// retransmission under every policy.
#[test]
fn committed_bytes_cannot_be_rewritten() {
    let make = || {
        session(&[
            (0, b"GET /index.html0"), // 16 bytes
            (16, b"benign-suffix-xx"),
            // Overlapping rewrite of bytes 16..32 arriving later:
            (16, b"EVIL-PAYLOAD-YYY"),
        ])
    };
    for policy in [
        OverlapPolicy::First,
        OverlapPolicy::Solaris,
        OverlapPolicy::Linux,
    ] {
        let (got, _errs) = capture(policy, make());
        assert_eq!(&got[16..32], b"benign-suffix-xx", "policy {policy:?}");
    }
}

/// When the conflicting segments are buffered (a hole keeps them out of
/// order), the policy decides which content survives.
#[test]
fn buffered_overlap_content_depends_on_policy() {
    let make = || {
        session(&[
            // Bytes 16.. arrive first (out of order: hole at 0..16).
            (16, b"ORIGINAL-CONTENT"),
            (16, b"REWRITTEN-BYTES!"),
            // The hole fills last; everything then drains in order.
            (0, b"0123456789abcdef"),
        ])
    };
    let (first, errs) = capture(OverlapPolicy::First, make());
    assert_eq!(&first[16..32], b"ORIGINAL-CONTENT");
    // Conflicting overlap content is flagged: the evasion signal.
    assert!(errs.contains(StreamErrors::INCONSISTENT_OVERLAP));
    let (last, _) = capture(OverlapPolicy::Last, make());
    assert_eq!(&last[16..32], b"REWRITTEN-BYTES!");
    // Windows behaves like First, Solaris like Last (policy matrix).
    let (win, _) = capture(OverlapPolicy::Windows, make());
    assert_eq!(&win[16..32], b"ORIGINAL-CONTENT");
}

/// Segments sprayed far out of order still reassemble exactly.
#[test]
fn heavy_reordering_reassembles_exactly() {
    let payload: Vec<u8> = (0..26u8).cycle().take(26 * 40).map(|c| b'a' + c).collect();
    let mut segs: Vec<(u32, &[u8])> = payload
        .chunks(40)
        .enumerate()
        .map(|(i, c)| ((i * 40) as u32, c))
        .collect();
    // Reverse order: worst-case buffering.
    segs.reverse();
    let (got, errs) = capture(OverlapPolicy::First, session(&segs));
    assert_eq!(got, payload);
    assert!(!errs.contains(StreamErrors::SEQUENCE_GAP));
}

/// Data without any handshake (midstream pickup) is still captured in
/// fast mode, flagged as an incomplete handshake.
#[test]
fn midstream_data_flagged_but_captured() {
    let mut pkts = Vec::new();
    let mut t = 0u64;
    for i in 0..5u32 {
        t += 1_000_000;
        pkts.push(Packet::new(
            t,
            PacketBuilder::tcp_v4(
                C,
                S,
                CP,
                SP,
                5_000 + i * 100,
                1,
                TcpFlags::ACK,
                &[b'm'; 100],
            ),
        ));
    }
    let data = Arc::new(AtomicU64::new(0));
    let flagged = Arc::new(AtomicU64::new(0));
    let mut scap = Scap::builder()
        .inactivity_timeout_ns(1_000_000)
        .try_build()
        .unwrap();
    {
        let data = data.clone();
        scap.dispatch_data(move |ctx: &StreamCtx<'_>| {
            data.fetch_add(ctx.data.map_or(0, |d| d.len() as u64), Ordering::Relaxed);
        });
        let flagged = flagged.clone();
        scap.dispatch_termination(move |ctx: &StreamCtx<'_>| {
            if ctx
                .stream
                .errors
                .contains(StreamErrors::INCOMPLETE_HANDSHAKE)
            {
                flagged.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
    scap.start_capture(pkts);
    assert_eq!(data.load(Ordering::Relaxed), 500);
    assert_eq!(flagged.load(Ordering::Relaxed), 1);
}

/// A wildly out-of-window sequence number must not poison the stream.
#[test]
fn out_of_window_segment_rejected() {
    let (got, errs) = capture(
        OverlapPolicy::First,
        session(&[
            (0, b"legitimate data"),
            (0x5000_0000, b"far-future garbage"),
            (15, b" continues fine"),
        ]),
    );
    assert_eq!(got, b"legitimate data continues fine");
    assert!(errs.contains(StreamErrors::INVALID_SEQUENCE));
}

/// Duplicate (retransmitted) segments are delivered exactly once.
#[test]
fn retransmissions_do_not_duplicate_data() {
    let (got, _) = capture(
        OverlapPolicy::First,
        session(&[
            (0, b"0123456789"),
            (0, b"0123456789"),
            (10, b"abcdefghij"),
            (0, b"0123456789"),
        ]),
    );
    assert_eq!(got, b"0123456789abcdefghij");
}
