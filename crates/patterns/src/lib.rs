#![warn(missing_docs)]

//! # scap-patterns
//!
//! Multi-pattern string matching for the pattern-matching workloads of the
//! paper (§6.5), built from scratch:
//!
//! * [`AhoCorasick`] — the classic Aho–Corasick automaton (trie + BFS
//!   failure links), converted to a dense DFA so the scan loop is one
//!   table lookup per input byte, exactly the structure Snort builds for
//!   its `content:` patterns;
//! * streaming state ([`MatcherState`]) that carries across chunk
//!   boundaries, so patterns spanning consecutive stream chunks are still
//!   found (this is what the paper's `overlap` parameter compensates for
//!   in packet-based delivery);
//! * [`ruleset`] — a Snort-rule `content:` extractor and a seeded
//!   generator that produces a 2,120-pattern "web attack" corpus shaped
//!   like the VRT rule set the paper uses.

pub mod automaton;
pub mod ruleset;

pub use automaton::{AhoCorasick, Match, MatcherState};
pub use ruleset::{builtin_web_patterns, extract_contents, generate_web_attack_patterns};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_quickstart() {
        let ac = AhoCorasick::new(&[b"he".to_vec(), b"she".to_vec(), b"hers".to_vec()], false);
        let matches: Vec<Match> = ac.find_all(b"ushers");
        // "she" ends at 4, "he" ends at 4, "hers" ends at 6.
        assert_eq!(matches.len(), 3);
    }
}
