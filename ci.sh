#!/usr/bin/env bash
# CI gate: build, test, lint, format. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --check

echo "== benches compile =="
cargo bench --no-run

echo "== telemetry + store smoke run =="
smoke_out=$(mktemp -d)
cargo run --release -p scap-bench --bin experiments -- \
    --exp telemetry store --scale smoke --out "$smoke_out" >/dev/null
for f in telemetry_counters.csv telemetry_series.csv telemetry_table.txt \
         telemetry_stages.csv store_archive.csv store_priorities.csv \
         BENCH_summary.json; do
    test -s "$smoke_out/$f" || { echo "missing $f"; exit 1; }
done
grep -q '"store"' "$smoke_out/BENCH_summary.json" \
    || { echo "BENCH_summary.json lacks a store section"; exit 1; }
rm -rf "$smoke_out"

echo "== warm-restart chaos seed matrix =="
for seed in 11 23 47; do
    SCAP_CHAOS_SEED=$seed cargo test -q -p scap-bench --test chaos \
        kill_and_resume_storm_preserves_streams >/dev/null \
        || { echo "kill/resume storm failed with seed $seed"; exit 1; }
done

echo "== warm-restart recovery table =="
restart_out=$(mktemp -d)
cargo run --release -p scap-bench --bin experiments -- \
    --exp restart --scale smoke --out "$restart_out" >/dev/null
grep -q '"restart"' "$restart_out/BENCH_summary.json" \
    || { echo "BENCH_summary.json lacks a restart section"; exit 1; }
test -s "$restart_out/restart_recovery.csv" \
    || { echo "missing restart_recovery.csv"; exit 1; }
rm -rf "$restart_out"

echo "== scapcat --supervise smoke =="
sup_out=$(mktemp -d)
cargo run --release -p scap-bench --bin scapcat -- --gen 4 "$sup_out/trace.pcap" >/dev/null
sup_log=$(cargo run --release -p scap-bench --bin scapcat -- \
    "$sup_out/trace.pcap" --supervise --kill-at 2500 \
    --checkpoint-every 500 --ckpt "$sup_out/scap.ckpt" 2>&1)
echo "$sup_log" | grep -q "resuming" \
    || { echo "supervisor never resumed: $sup_log"; exit 1; }
echo "$sup_log" | grep -q "supervised capture complete after 1 restart" \
    || { echo "supervisor did not complete after one restart: $sup_log"; exit 1; }
cargo run --release -p scap-bench --bin scapstore -- \
    verify "$sup_out/scap.ckpt" --repair >/dev/null \
    || { echo "checkpoint left by the supervisor failed verify"; exit 1; }

echo "== flight black box after the kill =="
test -s "$sup_out/scap.ckpt.flight" \
    || { echo "crash left no flight black box next to the checkpoint"; exit 1; }
bb_log=$(cargo run --release -p scap-bench --bin scapstore -- \
    verify "$sup_out/scap.ckpt.flight") \
    || { echo "flight black box failed to decode"; exit 1; }
echo "$bb_log" | grep -q "flight black box is clean" \
    || { echo "black box decode did not report clean: $bb_log"; exit 1; }
rm -rf "$sup_out"

echo "== flight reconciliation =="
flight_out=$(mktemp -d)
# The experiment asserts flight-vs-telemetry sums, the conservation
# identity, determinism, and the restart cross-check; any mismatch
# panics, so a zero exit *is* the reconciliation proof.
cargo run --release -p scap-bench --bin experiments -- \
    --exp flight --scale smoke --out "$flight_out" >/dev/null \
    || { echo "flight reconciliation failed"; exit 1; }
grep -q '"flight"' "$flight_out/BENCH_summary.json" \
    || { echo "BENCH_summary.json lacks a flight section"; exit 1; }
cargo run --release -p scap-bench --bin scapstore -- \
    verify "$flight_out/flight_journal.bin" >/dev/null \
    || { echo "flight journal failed to decode"; exit 1; }
rm -rf "$flight_out"

echo "== scaptop smoke =="
top_log=$(cargo run --release -p scap-bench --bin scaptop -- \
    --gen 2 --interval 2000 --topk 5 --cutoff 16384) \
    || { echo "scaptop smoke run failed"; exit 1; }
echo "$top_log" | grep -q "capture complete" \
    || { echo "scaptop never completed: $top_log"; exit 1; }
echo "$top_log" | grep -q "top drop reasons" \
    || { echo "scaptop printed no drop attribution"; exit 1; }
lat_top_log=$(cargo run --release -p scap-bench --bin scaptop -- \
    --gen 2 --interval 2000 --topk 5 --latency) \
    || { echo "scaptop --latency smoke run failed"; exit 1; }
echo "$lat_top_log" | grep -q "latency (pulse plane" \
    || { echo "scaptop --latency rendered no pulse panel"; exit 1; }
echo "$lat_top_log" | grep -q "nic_verdict" \
    || { echo "scaptop --latency panel has no nic_verdict row"; exit 1; }
fp_top_log=$(cargo run --release -p scap-bench --bin scaptop -- \
    --gen 2 --interval 2000 --topk 5 --fastpath) \
    || { echo "scaptop --fastpath smoke run failed"; exit 1; }
echo "$fp_top_log" | grep -q "fast path      burst fill" \
    || { echo "scaptop --fastpath rendered no fast-path panel"; exit 1; }
echo "$fp_top_log" | grep -q "flow table     load" \
    || { echo "scaptop rendered no flow-table panel"; exit 1; }

echo "== fastpath micro-bench smoke =="
# `cargo bench --no-run` above proved the bench target compiles; this
# runs the fastpath groups for real so a wall-clock regression or a
# panic in the batched pipeline fails the gate.
bench_log=$(cargo bench -p scap-bench --bench micro 2>&1) \
    || { echo "micro-bench run failed: $bench_log"; exit 1; }
echo "$bench_log" | grep -q "fastpath/hash_burst_64" \
    || { echo "fastpath stage benches missing from micro-bench output"; exit 1; }
echo "$bench_log" | grep -q "fastpath_dispatch/bypass_burst64_128k_flows" \
    || { echo "fastpath dispatch benches missing from micro-bench output"; exit 1; }
echo "$bench_log" | grep -q "flow_table/hit_probe_1m_entries" \
    || { echo "million-entry flow-table probe bench missing"; exit 1; }

echo "== fastpath throughput gate =="
fp_out=$(mktemp -d)
# The experiment asserts conservation, exact flight reconciliation
# (with induced ring-overflow drops), identical delivery on both
# dispatch paths, and bypass > classic pkts/s at 1M+ concurrent
# flows; any violation panics, so a zero exit is the proof.
cargo run --release -p scap-bench --bin experiments -- \
    --exp fastpath --scale smoke --out "$fp_out" >/dev/null \
    || { echo "fastpath throughput experiment failed"; exit 1; }
grep -q '"fastpath"' "$fp_out/BENCH_summary.json" \
    || { echo "BENCH_summary.json lacks a fastpath section"; exit 1; }
grep -q '"pkts_per_sec"' "$fp_out/BENCH_summary.json" \
    || { echo "fastpath section lacks a pkts_per_sec field"; exit 1; }
grep -q '"burst_ablation"' "$fp_out/BENCH_summary.json" \
    || { echo "fastpath section lacks the burst ablation"; exit 1; }
test -s "$fp_out/fastpath_throughput.csv" \
    || { echo "missing fastpath_throughput.csv"; exit 1; }
# The pulse plane must report a real (nonzero) delivery tail and feed
# the trajectory record.
python3 - "$fp_out/BENCH_summary.json" <<'EOF' \
    || { echo "latency section missing or delivery p99 is zero"; exit 1; }
import json, sys
rows = {r["stage"]: r for r in json.load(open(sys.argv[1]))["latency"]["fastpath"]}
assert rows["delivery"]["p99_ns"] > 0, "delivery p99 is zero"
assert rows["kernel_dispatch"]["p99_ns"] > 0, "dispatch p99 is zero"
EOF
grep -q '"p99_delivery_ns"' "$fp_out/trajectory.jsonl" \
    || { echo "trajectory record lacks p99_delivery_ns"; exit 1; }
rm -rf "$fp_out"

echo "== offload engine gate =="
off_out=$(mktemp -d)
# The experiment asserts conservation on every run, that the offload
# stage absorbs every cutoff rule (fdir_ops == 0), >=10x amplified
# memory-bounded replay, and byte-exact flight reconciliation of
# NIC-resolved drops; any violation panics, so a zero exit is the
# proof.
cargo run --release -p scap-bench --bin experiments -- \
    --exp offload --scale smoke --out "$off_out" >/dev/null \
    || { echo "offload experiment failed"; exit 1; }
grep -q '"offload"' "$off_out/BENCH_summary.json" \
    || { echo "BENCH_summary.json lacks an offload section"; exit 1; }
grep -q '"hit_rate_pct"' "$off_out/BENCH_summary.json" \
    || { echo "offload section lacks a hit_rate_pct field"; exit 1; }
for f in offload_fig8_softirq.csv offload_scale.csv offload_action_mix.csv; do
    test -s "$off_out/$f" || { echo "missing $f"; exit 1; }
done
test -s "$off_out/trajectory.jsonl" \
    || { echo "experiments run appended no trajectory.jsonl record"; exit 1; }
grep -q '"git_sha"' "$off_out/trajectory.jsonl" \
    || { echo "trajectory record lacks a git_sha stamp"; exit 1; }
rm -rf "$off_out"

echo "== scaptop --offload panel smoke =="
off_top_log=$(cargo run --release -p scap-bench --bin scaptop -- \
    --gen 2 --interval 2000 --topk 5 --offload --cutoff 16384) \
    || { echo "scaptop --offload smoke run failed"; exit 1; }
echo "$off_top_log" | grep -q "offload        rules" \
    || { echo "scaptop --offload rendered no offload panel"; exit 1; }
echo "$off_top_log" | grep -q "offload mix    drop" \
    || { echo "scaptop --offload rendered no action-mix line"; exit 1; }

echo "== shard soak gate =="
soak_out=$(mktemp -d)
# The soak drives the amplified replay through a supervised shard fleet
# under the seeded shard-kill storm. The experiment asserts byte-exact
# fleet conservation, journal reconciliation of every blackout, that
# every killed shard respawned or parked within the blackout bound, and
# federated partial-result honesty; any violation panics, so a zero
# exit is the proof.
cargo run --release -p scap-bench --bin experiments -- \
    --exp soak --scale smoke --out "$soak_out" >/dev/null \
    || { echo "shard soak experiment failed"; exit 1; }
grep -q '"soak"' "$soak_out/BENCH_summary.json" \
    || { echo "BENCH_summary.json lacks a soak section"; exit 1; }
grep -q '"max_blackout_ms"' "$soak_out/BENCH_summary.json" \
    || { echo "soak section lacks a max_blackout_ms field"; exit 1; }
for f in soak_fleet.csv soak_shards.csv soak_federated.csv; do
    test -s "$soak_out/$f" || { echo "missing $f"; exit 1; }
done
grep -q '"soak_pkts_per_sec"' "$soak_out/trajectory.jsonl" \
    || { echo "trajectory record lacks the soak throughput"; exit 1; }
grep -q '"latency"' "$soak_out/BENCH_summary.json" \
    || { echo "soak run produced no latency section"; exit 1; }
fq=$(cargo run --release -p scap-bench --bin scapstore -- \
    fquery "$soak_out/soak_store" "tcp and port 80" --timeout-ms 10000 | tail -5) \
    || { echo "federated query over the soak archives failed"; exit 1; }
echo "$fq" | grep -q "shard(s)" \
    || { echo "fquery printed no per-shard status: $fq"; exit 1; }
rm -rf "$soak_out"

echo "== scaptop --shards panel smoke =="
shards_log=$(cargo run --release -p scap-bench --bin scaptop -- \
    --gen 2 --shards 4 --storm --interval 2000) \
    || { echo "scaptop --shards smoke run failed"; exit 1; }
echo "$shards_log" | grep -q "shard  state" \
    || { echo "scaptop --shards rendered no per-shard panel"; exit 1; }
echo "$shards_log" | grep -q "conservation ok" \
    || { echo "scaptop --shards fleet did not conserve: $shards_log"; exit 1; }

echo "== scapstore smoke =="
store_out=$(mktemp -d)
cargo run --release -p scap-bench --bin scapcat -- --gen 2 "$store_out/trace.pcap" >/dev/null
cargo run --release -p scap-bench --bin scapstore -- \
    write "$store_out/archive" "$store_out/trace.pcap" --cutoff 16384 >/dev/null
q=$(cargo run --release -p scap-bench --bin scapstore -- \
    query "$store_out/archive" "tcp and port 80" | tail -1)
case "$q" in
    "0 stream(s) matched"|"") echo "scapstore query returned nothing: $q"; exit 1 ;;
esac
cargo run --release -p scap-bench --bin scapstore -- verify "$store_out/archive" >/dev/null \
    || { echo "scapstore verify failed on a fresh archive"; exit 1; }
rm -rf "$store_out"

echo "== tenants isolation gate =="
tenants_out=$(mktemp -d)
# The experiment asserts the slow-consumer ladder, the per-tenant
# conservation identity, exact flight-journal reconciliation, the
# >=95% isolation bound, and per-seed determinism; a zero exit is the
# proof.
cargo run --release -p scap-bench --bin experiments -- \
    --exp tenants --scale smoke --out "$tenants_out" >/dev/null \
    || { echo "tenants isolation experiment failed"; exit 1; }
grep -q '"tenants"' "$tenants_out/BENCH_summary.json" \
    || { echo "BENCH_summary.json lacks a tenants section"; exit 1; }
rm -rf "$tenants_out"

echo "== scapd smoke (two clients, one stalled) =="
scapd_dir=$(mktemp -d)
# Budget/window sized so the stalled client exhausts its ack window
# and queue cap well before the trace ends, whatever the scheduler
# does: acked(<=4096) + window(32768) + queue cap(39321) is a fraction
# of the tcp bytes the trace offers the bulk tenant.
target/release/scapd --dir "$scapd_dir" --await-tenants 2 --gen 2 --seed 42 \
    --budget 131072 --window 32768 2>"$scapd_dir/scapd.log" &
scapd_pid=$!
target/release/scapctl attach --dir "$scapd_dir" --name web \
    --filter "tcp and port 80" --cutoff 8192 --priority 2 --mem 300 --disk 300 \
    >/dev/null || { echo "web attach failed"; exit 1; }
target/release/scapctl attach --dir "$scapd_dir" --name bulk \
    --filter tcp --priority 0 --mem 300 --disk 300 \
    >/dev/null || { echo "bulk attach failed"; exit 1; }
web_out="$scapd_dir/web.consumer"
target/release/scapctl consume --dir "$scapd_dir" --name web >"$web_out" &
web_pid=$!
target/release/scapctl consume --dir "$scapd_dir" --name bulk \
    --stall-after 4096 >/dev/null 2>&1 &
bulk_pid=$!
sleep 2
kill "$bulk_pid" 2>/dev/null || true   # the stalled client dies; scapd must not care
wait "$scapd_pid" || { echo "scapd exited nonzero"; cat "$scapd_dir/scapd.log"; exit 1; }
wait "$web_pid" || { echo "healthy consumer exited nonzero"; exit 1; }
wait "$bulk_pid" 2>/dev/null || true
grep -q "^ok" "$scapd_dir/scapd-done" \
    || { echo "scapd did not finish clean: $(cat "$scapd_dir/scapd-done")"; exit 1; }
web_bytes=$(sed -n 's/.*records, \([0-9]*\) payload bytes.*/\1/p' "$web_out")
[ -n "$web_bytes" ] && [ "$web_bytes" -gt 0 ] \
    || { echo "healthy tenant delivered no bytes: $(cat "$web_out")"; exit 1; }
grep -q '"name": "bulk", "id": 2, "state": "disconnected"' "$scapd_dir/scapd-status.json" \
    || { echo "stalled tenant was not disconnected"; exit 1; }
grep -q '"name": "web", "id": 1, "state": "active"' "$scapd_dir/scapd-status.json" \
    || { echo "healthy tenant did not stay active"; exit 1; }
panel=$(target/release/scaptop --scapd "$scapd_dir") \
    || { echo "scaptop --scapd failed"; exit 1; }
echo "$panel" | grep -q "scapd panel complete" \
    || { echo "scaptop --scapd rendered no panel: $panel"; exit 1; }
# The daemon's OpenMetrics exposition must parse (scapctl validates
# before relaying) and terminate with the mandatory EOF marker.
metrics_out=$(target/release/scapctl metrics --dir "$scapd_dir") \
    || { echo "scapctl metrics failed OpenMetrics validation"; exit 1; }
echo "$metrics_out" | grep -q '^# EOF$' \
    || { echo "metrics exposition lacks the # EOF terminator"; exit 1; }
echo "$metrics_out" | grep -q 'scap_pulse_latency_ns_bucket' \
    || { echo "metrics exposition has no pulse histogram buckets"; exit 1; }
target/release/scapctl status --dir "$scapd_dir" --json \
    | python3 -m json.tool >/dev/null \
    || { echo "scapctl status --json is not valid JSON"; exit 1; }
rm -rf "$scapd_dir"

echo "CI green."
