//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface `benches/micro.rs` uses — groups, throughput
//! annotations, `iter`/`iter_batched`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple calibrated wall-clock
//! loop instead of criterion's statistical machinery. Good enough to
//! spot order-of-magnitude regressions without any external deps.

use std::hint::black_box as bb;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE_TIME: Duration = Duration::from_millis(300);

/// How batched inputs are grouped between setup calls. Only a hint in
/// upstream criterion; ignored here (every iteration gets fresh input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Input of unknown size.
    PerIteration,
}

/// Units for reporting throughput alongside time-per-iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Measures one benchmark routine.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, repeating it until the measurement window fills.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + rate estimate.
        let start = Instant::now();
        let mut warm = 0u64;
        while start.elapsed() < Duration::from_millis(30) {
            bb(routine());
            warm += 1;
        }
        let per = start.elapsed() / warm.max(1) as u32;
        let target = (MEASURE_TIME.as_nanos() / per.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            bb(routine());
        }
        self.total = start.elapsed();
        self.iters = target;
    }

    /// Time `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        // Warm-up pass to estimate the per-iteration cost.
        let input = setup();
        let t = Instant::now();
        bb(routine(input));
        let per = t.elapsed();
        let target = (MEASURE_TIME.as_nanos() / per.as_nanos().max(1)).clamp(1, 100_000) as u64;
        for _ in 0..target {
            let input = setup();
            let t = Instant::now();
            bb(routine(input));
            measured += t.elapsed();
            iters += 1;
        }
        self.total = measured;
        self.iters = iters;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Accepted for API compatibility; the stub sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Run one benchmark and print its timing line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_ns = b.total.as_nanos() as f64 / b.iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:>10.1} MiB/s",
                    n as f64 / per_ns * 1e9 / (1024.0 * 1024.0)
                )
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.2} Melem/s", n as f64 / per_ns * 1e9 / 1e6)
            }
            None => String::new(),
        };
        println!(
            "{}/{:<40} {:>12.1} ns/iter ({} iters){}",
            self.name, id, per_ns, b.iters, rate
        );
    }

    /// End the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Benchmark driver handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _c: self,
        }
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
