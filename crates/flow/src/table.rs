//! The kernel-side flow table: randomized hashing, growable record pools,
//! and the access-list LRU used for inactivity expiration and
//! memory-pressure eviction.
//!
//! # Layout
//!
//! The index is open-addressed and cache-line-packed, sized for millions
//! of concurrent flows. Three parallel arrays make up the index:
//!
//! ```text
//! ctrl:    [u8]  one tag byte per position   0x00 EMPTY
//!                                            0x01 TOMBSTONE
//!                                            0x80|top7(hash) FULL
//! entries: [u32] slot index into the record pool
//! hashes:  [u64] cached full 64-bit hash (no record touch on mismatch)
//! ```
//!
//! Positions are probed in aligned groups of [`GROUP`] tags; a probe
//! scans a whole group at once and stops at the first group containing
//! an EMPTY tag, so a negative lookup usually costs a single cache-line
//! touch of the ctrl array. `probes` counts *groups* examined — i.e.
//! index cache-line touches — which is what the cost model charges.
//!
//! Growth is an **incremental rehash**: when the index passes a 7/8
//! load factor a new (usually doubled) index is allocated, the old one
//! is retained, and every mutating call migrates a few groups of old
//! entries until the old index drains. Lookups consult the new index
//! first, then the pending old one, so no operation ever pays a full
//! O(n) rehash latency spike.
//!
//! The record pool (slot + generation) and the intrusive access-list
//! LRU are unchanged from the chained design: [`StreamId`]s stay stable
//! across rehashes, checkpoints, and both dispatch paths.

use crate::record::{StreamId, StreamRecord};
use scap_wire::{Direction, FlowKey};

/// Tags scanned per probe step (one ctrl group; 16 tags = a quarter of
/// a 64-byte line, so neighbouring groups share lines).
pub const GROUP: usize = 16;

const CTRL_EMPTY: u8 = 0x00;
const CTRL_TOMB: u8 = 0x01;

/// Old-index groups migrated per mutating call during incremental
/// rehash. At 4 groups × 16 tags per insert, a doubled index drains
/// well before the new one can refill to its own growth threshold.
const MIGRATE_GROUPS: usize = 4;

#[inline]
fn tag(h: u64) -> u8 {
    0x80 | ((h >> 57) as u8)
}

/// Flow-table configuration.
#[derive(Debug, Clone)]
pub struct FlowTableConfig {
    /// Records pre-allocated at start (the paper pre-allocates pools and
    /// grows dynamically).
    pub initial_capacity: usize,
    /// Hard record limit. `None` = grow without bound (Scap behaviour);
    /// `Some(n)` = static limit (Libnids/Snort behaviour in Fig. 5).
    pub max_flows: Option<usize>,
}

impl Default for FlowTableConfig {
    fn default() -> Self {
        FlowTableConfig {
            initial_capacity: 4096,
            max_flows: None,
        }
    }
}

/// Result of [`FlowTable::lookup_or_insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// Handle of the record.
    pub id: StreamId,
    /// True when this call created the record.
    pub created: bool,
    /// Direction of the queried key relative to the canonical key.
    pub direction: Direction,
}

/// Why an insert failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableFull {
    /// The configured `max_flows` limit was reached (static-table
    /// baselines); the stream is lost.
    MaxFlows,
}

struct Slot {
    generation: u32,
    record: Option<StreamRecord>,
}

/// One open-addressed index: parallel ctrl/entry/hash arrays.
struct Index {
    ctrl: Vec<u8>,
    entries: Vec<u32>,
    hashes: Vec<u64>,
    mask: usize,
    /// FULL positions.
    used: usize,
    /// TOMBSTONE positions (reclaimed by the next rehash).
    tombs: usize,
}

impl Index {
    fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(2 * GROUP).next_power_of_two();
        Index {
            ctrl: vec![CTRL_EMPTY; cap],
            entries: vec![0; cap],
            hashes: vec![0; cap],
            mask: cap - 1,
            used: 0,
            tombs: 0,
        }
    }

    fn capacity(&self) -> usize {
        self.mask + 1
    }

    fn ngroups(&self) -> usize {
        self.capacity() / GROUP
    }

    #[inline]
    fn home_group(&self, h: u64) -> usize {
        (h as usize & self.mask) / GROUP
    }

    /// Probe for `h`/`canon`, counting ctrl groups examined into
    /// `probes`. Returns the position of the matching FULL entry.
    fn find(&self, h: u64, canon: &FlowKey, slots: &[Slot], probes: &mut u64) -> Option<usize> {
        let t = tag(h);
        let ngroups = self.ngroups();
        let mut g = self.home_group(h);
        for _ in 0..ngroups {
            *probes += 1;
            let base = g * GROUP;
            let mut saw_empty = false;
            for pos in base..base + GROUP {
                let c = self.ctrl[pos];
                if c == CTRL_EMPTY {
                    saw_empty = true;
                } else if c == t && self.hashes[pos] == h {
                    if let Some(rec) = slots[self.entries[pos] as usize].record.as_ref() {
                        if rec.key == *canon {
                            return Some(pos);
                        }
                    }
                }
            }
            if saw_empty {
                return None;
            }
            g = (g + 1) & (ngroups - 1);
        }
        None
    }

    /// First insertable position in `h`'s probe sequence: the earliest
    /// TOMBSTONE, or the first EMPTY if no tombstone precedes it.
    fn insert_pos(&self, h: u64) -> usize {
        let ngroups = self.ngroups();
        let mut g = self.home_group(h);
        let mut first_tomb: Option<usize> = None;
        for _ in 0..ngroups {
            let base = g * GROUP;
            for pos in base..base + GROUP {
                match self.ctrl[pos] {
                    CTRL_EMPTY => return first_tomb.unwrap_or(pos),
                    CTRL_TOMB => first_tomb = first_tomb.or(Some(pos)),
                    _ => {}
                }
            }
            g = (g + 1) & (ngroups - 1);
        }
        first_tomb.expect("index kept below load threshold")
    }

    fn insert(&mut self, h: u64, slot: u32) {
        let pos = self.insert_pos(h);
        if self.ctrl[pos] == CTRL_TOMB {
            self.tombs -= 1;
        }
        self.ctrl[pos] = tag(h);
        self.entries[pos] = slot;
        self.hashes[pos] = h;
        self.used += 1;
    }

    fn erase(&mut self, pos: usize) {
        self.ctrl[pos] = CTRL_TOMB;
        self.used -= 1;
        self.tombs += 1;
    }

    /// Past the 7/8 load factor (tombstones count: they lengthen
    /// probe chains exactly like live entries).
    fn over_threshold(&self) -> bool {
        (self.used + self.tombs) * 8 >= self.capacity() * 7
    }
}

/// The flow table.
pub struct FlowTable {
    /// Active open-addressed index.
    index: Index,
    /// Pending old index during incremental rehash, with the next
    /// group to migrate.
    old: Option<(Index, usize)>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    len: usize,
    seed: u64,
    cfg: FlowTableConfig,
    /// Head (most recent) of the access list.
    lru_head: Option<u32>,
    /// Tail (least recent) of the access list.
    lru_tail: Option<u32>,
    /// Cumulative index probes — ctrl *groups* (cache lines) examined —
    /// the cost-model input.
    pub probes: u64,
}

impl FlowTable {
    /// Create a table; `seed` randomizes the hash function (§5.2).
    pub fn new(cfg: FlowTableConfig, seed: u64) -> Self {
        // Size the index so `initial_capacity` records fit under the
        // 7/8 growth threshold without rehashing.
        let want = cfg.initial_capacity.max(16) * 8 / 7 + GROUP;
        FlowTable {
            index: Index::with_capacity(want),
            old: None,
            slots: Vec::with_capacity(cfg.initial_capacity),
            free: Vec::new(),
            len: 0,
            seed,
            cfg,
            lru_head: None,
            lru_tail: None,
            probes: 0,
        }
    }

    /// Number of live streams.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no streams are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The randomized hash seed; [`FlowKey::sym_hash`] with this seed
    /// is the table's hash function (exposed so batched dispatch can
    /// pre-hash keys before [`FlowTable::lookup_or_insert_prehashed`]).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Index positions in the active open-addressed array.
    pub fn index_capacity(&self) -> usize {
        self.index.capacity()
    }

    /// Occupancy of the active index in permille (load-factor gauge).
    pub fn load_permille(&self) -> u64 {
        (self.index.used as u64 * 1000) / self.index.capacity() as u64
    }

    /// True while an incremental rehash is still draining its old index.
    pub fn rehash_pending(&self) -> bool {
        self.old.is_some()
    }

    /// The ctrl group `h` probes first: `group * GROUP` is a stable
    /// byte offset into the ctrl array, used by the cache model to
    /// touch the index line a lookup reads.
    pub fn probe_group(&self, h: u64) -> usize {
        self.index.home_group(h)
    }

    fn hash(&self, key: &FlowKey) -> u64 {
        key.sym_hash(self.seed)
    }

    /// Find the index position of `canon` in the active index or the
    /// pending old one.
    fn find_pos(&mut self, h: u64, canon: &FlowKey) -> Option<(bool, usize)> {
        if let Some(pos) = self.index.find(h, canon, &self.slots, &mut self.probes) {
            return Some((false, pos));
        }
        if let Some((old, _)) = self.old.as_ref() {
            if let Some(pos) = old.find(h, canon, &self.slots, &mut self.probes) {
                return Some((true, pos));
            }
        }
        None
    }

    /// Migrate a few old-index groups into the active index; drops the
    /// old index once drained. Called from every mutating operation.
    fn migrate_step(&mut self, groups: usize) {
        let Some((mut old, mut cursor)) = self.old.take() else {
            return;
        };
        let ngroups = old.ngroups();
        let end = (cursor + groups).min(ngroups);
        while cursor < end {
            let base = cursor * GROUP;
            for pos in base..base + GROUP {
                if old.ctrl[pos] & 0x80 != 0 {
                    self.index.insert(old.hashes[pos], old.entries[pos]);
                    // Tombstone, not EMPTY: later probes of the old
                    // index must keep walking past migrated positions.
                    old.ctrl[pos] = CTRL_TOMB;
                }
            }
            cursor += 1;
        }
        if cursor < ngroups {
            self.old = Some((old, cursor));
        }
    }

    /// Start (or restart) an incremental rehash when the active index
    /// crosses its load threshold.
    fn maybe_grow(&mut self) {
        if !self.index.over_threshold() {
            return;
        }
        // A second rehash cannot start while one is pending: drain the
        // remainder of the old index first (bounded by its size).
        if self.old.is_some() {
            self.migrate_step(usize::MAX);
        }
        if !self.index.over_threshold() {
            return;
        }
        // Doubling when genuinely full; same-size when the threshold
        // was mostly tombstones (the rehash reclaims them).
        let new_cap = (self.len.max(1) * 2)
            .next_power_of_two()
            .max(self.index.capacity());
        let fresh = Index::with_capacity(new_cap);
        let old = std::mem::replace(&mut self.index, fresh);
        self.old = Some((old, 0));
        self.migrate_step(MIGRATE_GROUPS);
    }

    /// Find an existing stream.
    pub fn lookup(&mut self, key: &FlowKey) -> Option<(StreamId, Direction)> {
        let (canon, dir) = key.canonical();
        let h = self.hash(&canon);
        self.lookup_prehashed(&canon, dir, h)
    }

    /// [`FlowTable::lookup`] with the canonical key and hash already
    /// computed (batched dispatch hashes whole bursts up front).
    pub fn lookup_prehashed(
        &mut self,
        canon: &FlowKey,
        dir: Direction,
        h: u64,
    ) -> Option<(StreamId, Direction)> {
        let (in_old, pos) = self.find_pos(h, canon)?;
        let idx = if in_old {
            &self.old.as_ref().expect("pending old index").0
        } else {
            &self.index
        };
        let rec = self.slots[idx.entries[pos] as usize]
            .record
            .as_ref()
            .expect("found position holds live record");
        Some((rec.id, dir))
    }

    /// Find or create the stream for `key`. `now` stamps creation time.
    pub fn lookup_or_insert(&mut self, key: &FlowKey, now: u64) -> Result<Lookup, TableFull> {
        let (canon, dir) = key.canonical();
        let h = self.hash(&canon);
        self.lookup_or_insert_prehashed(&canon, dir, h, now)
    }

    /// [`FlowTable::lookup_or_insert`] with the canonical key, its
    /// direction, and hash already computed.
    pub fn lookup_or_insert_prehashed(
        &mut self,
        canon: &FlowKey,
        dir: Direction,
        h: u64,
        now: u64,
    ) -> Result<Lookup, TableFull> {
        self.migrate_step(MIGRATE_GROUPS);
        if let Some((id, direction)) = self.lookup_prehashed(canon, dir, h) {
            return Ok(Lookup {
                id,
                created: false,
                direction,
            });
        }
        if let Some(max) = self.cfg.max_flows {
            if self.len >= max {
                return Err(TableFull::MaxFlows);
            }
        }

        // Allocate a slot from the free list or grow the pool.
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    record: None,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let generation = self.slots[slot as usize].generation + 1;
        self.slots[slot as usize].generation = generation;
        let id = StreamId { slot, generation };
        self.slots[slot as usize].record = Some(StreamRecord::new(id, *canon, dir, now));
        self.index.insert(h, slot);
        self.len += 1;
        self.lru_push_front(slot);
        self.maybe_grow();
        Ok(Lookup {
            id,
            created: true,
            direction: dir,
        })
    }

    /// Get a record by handle (None if the handle is stale).
    pub fn get(&self, id: StreamId) -> Option<&StreamRecord> {
        let s = self.slots.get(id.slot as usize)?;
        if s.generation != id.generation {
            return None;
        }
        s.record.as_ref()
    }

    /// Mutable access by handle.
    pub fn get_mut(&mut self, id: StreamId) -> Option<&mut StreamRecord> {
        let s = self.slots.get_mut(id.slot as usize)?;
        if s.generation != id.generation {
            return None;
        }
        s.record.as_mut()
    }

    /// Record activity: stamp `last_ts_ns` and move to the front of the
    /// access list (constant time).
    pub fn touch(&mut self, id: StreamId, now: u64) {
        if self.get(id).is_none() {
            return;
        }
        let slot = id.slot;
        self.lru_unlink(slot);
        self.lru_push_front(slot);
        if let Some(rec) = self.get_mut(id) {
            rec.last_ts_ns = rec.last_ts_ns.max(now);
        }
    }

    /// Remove a stream from the table (after its termination event).
    pub fn remove(&mut self, id: StreamId) -> Option<StreamRecord> {
        let rec = self.get(id)?;
        let key = rec.key;
        let h = self.hash(&key);
        let slot = id.slot;
        self.migrate_step(MIGRATE_GROUPS);
        if let Some((in_old, pos)) = self.find_pos(h, &key) {
            if in_old {
                self.old.as_mut().expect("pending old index").0.erase(pos);
            } else {
                self.index.erase(pos);
            }
        }
        self.lru_unlink(slot);
        self.len -= 1;
        self.free.push(slot);
        self.slots[slot as usize].record.take()
    }

    /// Expire streams whose `last_ts_ns` is older than `now - timeout_ns`,
    /// walking from the stale end of the access list. Expired records are
    /// removed and returned (for termination events). At most
    /// `max_per_call` are expired per call, bounding softirq work.
    pub fn expire_inactive(
        &mut self,
        now: u64,
        timeout_ns: u64,
        max_per_call: usize,
    ) -> Vec<StreamRecord> {
        let deadline = now.saturating_sub(timeout_ns);
        let mut out = Vec::new();
        while out.len() < max_per_call {
            let Some(tail) = self.lru_tail else { break };
            let rec = self.slots[tail as usize]
                .record
                .as_ref()
                .expect("lru tail points at live record");
            if rec.last_ts_ns >= deadline {
                break;
            }
            let id = rec.id;
            let mut rec = self.remove(id).expect("tail record removable");
            rec.status = crate::record::StreamStatus::ClosedTimeout;
            out.push(rec);
        }
        out
    }

    /// Evict the least-recently-active stream (memory-pressure policy:
    /// "always store newer streams by removing the older ones", §6.4).
    pub fn evict_oldest(&mut self) -> Option<StreamRecord> {
        let tail = self.lru_tail?;
        let id = self.slots[tail as usize].record.as_ref()?.id;
        self.remove(id)
    }

    /// Tiered eviction: scan up to `max_scan` records from the stale end
    /// of the access list and evict the lowest-priority one among them
    /// (the stalest wins a priority tie). Falls back to plain LRU when
    /// every scanned stream shares one priority — so under pressure,
    /// old low-priority flows go before old high-priority ones.
    pub fn evict_tiered(&mut self, max_scan: usize) -> Option<StreamRecord> {
        let mut cur = self.lru_tail?;
        let mut best: Option<(u8, StreamId)> = None;
        for _ in 0..max_scan.max(1) {
            let rec = self.slots[cur as usize]
                .record
                .as_ref()
                .expect("access list points at live records");
            let better = match best {
                None => true,
                Some((p, _)) => rec.priority < p,
            };
            if better {
                best = Some((rec.priority, rec.id));
                if rec.priority == 0 {
                    break; // nothing outranks the bottom tier
                }
            }
            match rec.lru_prev {
                Some(prev) => cur = prev,
                None => break,
            }
        }
        self.remove(best?.1)
    }

    /// Iterate over all live records (diagnostics, final flush).
    pub fn iter(&self) -> impl Iterator<Item = &StreamRecord> {
        self.slots.iter().filter_map(|s| s.record.as_ref())
    }

    /// Drain every live record (end-of-capture flush), most recent first.
    pub fn drain_all(&mut self) -> Vec<StreamRecord> {
        let ids: Vec<StreamId> = self.iter().map(|r| r.id).collect();
        ids.into_iter().filter_map(|id| self.remove(id)).collect()
    }

    // ---- intrusive access list ----

    fn lru_push_front(&mut self, slot: u32) {
        let old_head = self.lru_head;
        {
            let rec = self.slots[slot as usize].record.as_mut().unwrap();
            rec.lru_prev = None;
            rec.lru_next = old_head;
        }
        if let Some(h) = old_head {
            self.slots[h as usize].record.as_mut().unwrap().lru_prev = Some(slot);
        }
        self.lru_head = Some(slot);
        if self.lru_tail.is_none() {
            self.lru_tail = Some(slot);
        }
    }

    fn lru_unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let rec = self.slots[slot as usize].record.as_ref().unwrap();
            (rec.lru_prev, rec.lru_next)
        };
        match prev {
            Some(p) => self.slots[p as usize].record.as_mut().unwrap().lru_next = next,
            None => self.lru_head = next,
        }
        match next {
            Some(n) => self.slots[n as usize].record.as_mut().unwrap().lru_prev = prev,
            None => self.lru_tail = prev,
        }
        let rec = self.slots[slot as usize].record.as_mut().unwrap();
        rec.lru_prev = None;
        rec.lru_next = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use scap_wire::Transport;

    fn key(i: u32) -> FlowKey {
        FlowKey::new_v4(
            [10, (i >> 16) as u8, (i >> 8) as u8, i as u8],
            [192, 168, 0, 1],
            1024 + (i % 60000) as u16,
            80,
            Transport::Tcp,
        )
    }

    fn table() -> FlowTable {
        FlowTable::new(FlowTableConfig::default(), 0xD00D)
    }

    #[test]
    fn insert_lookup_both_directions() {
        let mut t = table();
        let k = key(1);
        let l = t.lookup_or_insert(&k, 10).unwrap();
        assert!(l.created);
        let (id, dir) = t.lookup(&k.reversed()).unwrap();
        assert_eq!(id, l.id);
        assert_ne!(dir, l.direction);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn growth_beyond_initial_capacity() {
        let mut t = FlowTable::new(
            FlowTableConfig {
                initial_capacity: 16,
                max_flows: None,
            },
            7,
        );
        for i in 0..10_000 {
            t.lookup_or_insert(&key(i), u64::from(i)).unwrap();
        }
        assert_eq!(t.len(), 10_000);
        // Every flow still findable.
        for i in (0..10_000).step_by(997) {
            assert!(t.lookup(&key(i)).is_some());
        }
    }

    #[test]
    fn static_limit_rejects_like_libnids() {
        let mut t = FlowTable::new(
            FlowTableConfig {
                initial_capacity: 4,
                max_flows: Some(3),
            },
            7,
        );
        for i in 0..3 {
            t.lookup_or_insert(&key(i), 0).unwrap();
        }
        assert_eq!(t.lookup_or_insert(&key(99), 0), Err(TableFull::MaxFlows));
        // Existing flows still resolvable.
        assert!(!t.lookup_or_insert(&key(1), 0).unwrap().created);
    }

    #[test]
    fn stale_handles_do_not_resolve() {
        let mut t = table();
        let l = t.lookup_or_insert(&key(1), 0).unwrap();
        t.remove(l.id).unwrap();
        assert!(t.get(l.id).is_none());
        // Slot reuse bumps the generation.
        let l2 = t.lookup_or_insert(&key(2), 0).unwrap();
        assert_eq!(l2.id.slot, l.id.slot);
        assert_ne!(l2.id.generation, l.id.generation);
        assert!(t.get(l.id).is_none());
        assert!(t.get(l2.id).is_some());
    }

    #[test]
    fn expiration_removes_only_stale_tail() {
        let mut t = table();
        let a = t.lookup_or_insert(&key(1), 1_000).unwrap().id;
        let b = t.lookup_or_insert(&key(2), 2_000).unwrap().id;
        let c = t.lookup_or_insert(&key(3), 3_000).unwrap().id;
        // Touch a at t=5000 so it is fresh again.
        t.touch(a, 5_000);
        let expired = t.expire_inactive(6_000, 2_500, 64);
        let ids: Vec<StreamId> = expired.iter().map(|r| r.id).collect();
        assert!(ids.contains(&b));
        assert!(ids.contains(&c));
        assert!(!ids.contains(&a));
        assert!(expired
            .iter()
            .all(|r| r.status == crate::record::StreamStatus::ClosedTimeout));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn expiration_respects_batch_limit() {
        let mut t = table();
        for i in 0..100 {
            t.lookup_or_insert(&key(i), 0).unwrap();
        }
        let first = t.expire_inactive(1_000_000, 10, 30);
        assert_eq!(first.len(), 30);
        assert_eq!(t.len(), 70);
    }

    #[test]
    fn evict_oldest_follows_access_order() {
        let mut t = table();
        let a = t.lookup_or_insert(&key(1), 100).unwrap().id;
        let b = t.lookup_or_insert(&key(2), 200).unwrap().id;
        // b is newer, but touching a makes a the most recent.
        t.touch(a, 300);
        let evicted = t.evict_oldest().unwrap();
        assert_eq!(evicted.id, b);
        let evicted2 = t.evict_oldest().unwrap();
        assert_eq!(evicted2.id, a);
        assert!(t.evict_oldest().is_none());
    }

    #[test]
    fn tiered_eviction_prefers_low_priority_in_scan_window() {
        let mut t = table();
        let a = t.lookup_or_insert(&key(1), 100).unwrap().id; // stalest
        let b = t.lookup_or_insert(&key(2), 200).unwrap().id;
        let c = t.lookup_or_insert(&key(3), 300).unwrap().id;
        t.get_mut(a).unwrap().priority = 2;
        t.get_mut(b).unwrap().priority = 0;
        t.get_mut(c).unwrap().priority = 1;
        // Low-priority b goes first even though a is staler.
        assert_eq!(t.evict_tiered(8).unwrap().id, b);
        // Among the rest, the lowest remaining priority wins.
        assert_eq!(t.evict_tiered(8).unwrap().id, c);
        assert_eq!(t.evict_tiered(8).unwrap().id, a);
        assert!(t.evict_tiered(8).is_none());
        // A scan window of 1 degenerates to plain LRU.
        let d = t.lookup_or_insert(&key(4), 400).unwrap().id;
        let e = t.lookup_or_insert(&key(5), 500).unwrap().id;
        t.get_mut(d).unwrap().priority = 7;
        assert_eq!(t.evict_tiered(1).unwrap().id, d);
        assert_eq!(t.evict_tiered(1).unwrap().id, e);
    }

    #[test]
    fn drain_all_empties_table() {
        let mut t = table();
        for i in 0..50 {
            t.lookup_or_insert(&key(i), 0).unwrap();
        }
        let drained = t.drain_all();
        assert_eq!(drained.len(), 50);
        assert!(t.is_empty());
        assert!(t.lookup(&key(10)).is_none());
    }

    #[test]
    fn prehashed_ops_match_keyed_ops() {
        let mut t = table();
        let k = key(42);
        let (canon, dir) = k.canonical();
        let h = canon.sym_hash(t.seed());
        let l = t.lookup_or_insert_prehashed(&canon, dir, h, 10).unwrap();
        assert!(l.created);
        assert_eq!(t.lookup(&k).unwrap().0, l.id);
        let (rcanon, rdir) = k.reversed().canonical();
        assert_eq!(rcanon, canon);
        let l2 = t.lookup_or_insert_prehashed(&rcanon, rdir, h, 20).unwrap();
        assert!(!l2.created);
        assert_eq!(l2.id, l.id);
        assert_ne!(l2.direction, dir);
        assert_eq!(t.lookup_prehashed(&canon, dir, h).unwrap().0, l.id);
    }

    #[test]
    fn incremental_rehash_stays_consistent_under_churn() {
        // Small initial capacity forces many rehashes; interleaved
        // removals leave tombstones for same-size rehashes to reclaim.
        let mut t = FlowTable::new(
            FlowTableConfig {
                initial_capacity: 16,
                max_flows: None,
            },
            0xBEEF,
        );
        let mut live = Vec::new();
        for i in 0..5_000u32 {
            let id = t.lookup_or_insert(&key(i), u64::from(i)).unwrap().id;
            live.push((i, id));
            if i % 3 == 0 {
                let (j, id) = live.remove((i as usize * 7) % live.len());
                assert!(t.remove(id).is_some(), "remove {j}");
            }
        }
        assert_eq!(t.len(), live.len());
        for (i, id) in &live {
            let (found, _) = t.lookup(&key(*i)).expect("live key resolves");
            assert_eq!(found, *id);
        }
        // Load factor stays under the 7/8 threshold.
        assert!(t.load_permille() <= 875);
        // Drain any pending rehash via mutations; the table stays exact.
        while t.rehash_pending() {
            let (i, id) = live.pop().unwrap();
            assert_eq!(
                t.remove(id).unwrap().id,
                t.get(id).map(|r| r.id).unwrap_or(id)
            );
            assert!(t.lookup(&key(i)).is_none());
        }
        assert_eq!(t.len(), live.len());
    }

    #[test]
    fn collision_heavy_keys_stay_findable() {
        // Keys engineered to share home groups: identical low hash bits
        // are unlikely via sym_hash, so instead hammer one tiny index
        // (capacity 32 ⇒ 2 groups) where every key collides by pigeonhole.
        let mut t = FlowTable::new(
            FlowTableConfig {
                initial_capacity: 4,
                max_flows: None,
            },
            3,
        );
        for i in 0..200 {
            t.lookup_or_insert(&key(i), 0).unwrap();
        }
        for i in 0..200 {
            assert!(t.lookup(&key(i)).is_some(), "key {i}");
            assert!(!t.lookup_or_insert(&key(i), 0).unwrap().created);
        }
        assert_eq!(t.len(), 200);
    }

    proptest! {
        /// Random interleavings of insert/remove/touch keep the table
        /// internally consistent (LRU list matches live set).
        #[test]
        fn random_ops_keep_invariants(ops in proptest::collection::vec((0u8..3, 0u32..50), 1..200)) {
            let mut t = table();
            let mut live: std::collections::HashMap<u32, StreamId> = Default::default();
            let mut now = 0u64;
            for (op, i) in ops {
                now += 1;
                match op {
                    0 => {
                        let l = t.lookup_or_insert(&key(i), now).unwrap();
                        live.insert(i, l.id);
                    }
                    1 => {
                        if let Some(id) = live.remove(&i) {
                            prop_assert!(t.remove(id).is_some());
                        }
                    }
                    _ => {
                        if let Some(id) = live.get(&i) {
                            t.touch(*id, now);
                        }
                    }
                }
                prop_assert_eq!(t.len(), live.len());
            }
            // Walk the LRU from head: must visit exactly `len` records.
            let visited = t.drain_all();
            prop_assert_eq!(visited.len(), live.len());
        }

        /// The open-addressed table agrees with a BTreeMap reference
        /// model across insert/lookup/remove/expire under collision-heavy
        /// key sets (tiny key space on a tiny initial index).
        #[test]
        fn matches_btreemap_reference_model(
            ops in proptest::collection::vec((0u8..4, 0u32..24), 1..300)
        ) {
            let mut t = FlowTable::new(
                FlowTableConfig { initial_capacity: 4, max_flows: None },
                0xA5A5,
            );
            // Reference: key index -> (id, last_ts).
            let mut model: std::collections::BTreeMap<u32, (StreamId, u64)> = Default::default();
            let mut now = 0u64;
            for (op, i) in ops {
                now += 10;
                match op {
                    0 => {
                        let l = t.lookup_or_insert(&key(i), now).unwrap();
                        let entry = model.entry(i).or_insert((l.id, now));
                        prop_assert_eq!(l.created, entry.1 == now && entry.0 == l.id);
                        prop_assert_eq!(l.id, entry.0);
                        entry.1 = now;
                        t.touch(l.id, now);
                    }
                    1 => {
                        match (t.lookup(&key(i)), model.get(&i)) {
                            (Some((id, _)), Some((mid, _))) => prop_assert_eq!(id, *mid),
                            (None, None) => {}
                            (got, want) => prop_assert!(
                                false, "lookup mismatch: got {:?}, want {:?}", got, want
                            ),
                        }
                    }
                    2 => {
                        let removed = model.remove(&i);
                        match removed {
                            Some((id, _)) => prop_assert!(t.remove(id).is_some()),
                            None => prop_assert!(t.lookup(&key(i)).is_none()),
                        }
                    }
                    _ => {
                        // Expire everything idle > 25 ticks; mirror in model.
                        let expired = t.expire_inactive(now, 25, usize::MAX);
                        for rec in &expired {
                            prop_assert_eq!(
                                rec.status,
                                crate::record::StreamStatus::ClosedTimeout
                            );
                        }
                        let deadline = now.saturating_sub(25);
                        let before = model.len();
                        model.retain(|_, (_, ts)| *ts >= deadline);
                        prop_assert_eq!(expired.len(), before - model.len());
                    }
                }
                prop_assert_eq!(t.len(), model.len());
            }
            for (i, (id, _)) in &model {
                let (found, _) = t.lookup(&key(*i)).expect("model key resolves");
                prop_assert_eq!(found, *id);
            }
        }

        /// Eviction-order invariant: evict_oldest always returns the
        /// least-recently-touched live stream; evict_tiered never
        /// returns a stream when a lower-priority one is in its window.
        #[test]
        fn eviction_order_invariants(
            ops in proptest::collection::vec((0u8..3, 0u32..16, 0u8..3), 1..200)
        ) {
            let mut t = table();
            // Reference recency list: front = most recent.
            let mut order: Vec<(u32, StreamId, u8)> = Vec::new();
            let mut now = 0u64;
            for (op, i, prio) in ops {
                now += 1;
                match op {
                    0 => {
                        if let Some(posn) = order.iter().position(|(k, ..)| *k == i) {
                            let ent = order.remove(posn);
                            t.touch(ent.1, now);
                            order.insert(0, ent);
                        } else {
                            let l = t.lookup_or_insert(&key(i), now).unwrap();
                            t.get_mut(l.id).unwrap().priority = prio;
                            order.insert(0, (i, l.id, prio));
                        }
                    }
                    1 => {
                        let evicted = t.evict_oldest();
                        match (evicted, order.pop()) {
                            (Some(rec), Some((_, id, _))) => prop_assert_eq!(rec.id, id),
                            (None, None) => {}
                            _ => prop_assert!(false, "evict_oldest disagrees with model"),
                        }
                    }
                    _ => {
                        const WINDOW: usize = 4;
                        let evicted = t.evict_tiered(WINDOW);
                        if order.is_empty() {
                            prop_assert!(evicted.is_none());
                        } else {
                            let rec = evicted.expect("non-empty table evicts");
                            let window: Vec<&(u32, StreamId, u8)> =
                                order.iter().rev().take(WINDOW).collect();
                            let min_prio =
                                window.iter().map(|(.., p)| *p).min().unwrap();
                            prop_assert_eq!(rec.priority, min_prio);
                            // The stalest min-priority entry in the window.
                            let want = window.iter().find(|(.., p)| *p == min_prio).unwrap().1;
                            prop_assert_eq!(rec.id, want);
                            let posn = order.iter().position(|(_, id, _)| *id == rec.id).unwrap();
                            order.remove(posn);
                        }
                    }
                }
                prop_assert_eq!(t.len(), order.len());
            }
        }
    }
}
