//! Per-core cycle budgets for one simulation tick.
//!
//! Kernel (softirq) work preempts user work on the same core: the kernel
//! stage draws from the core's full budget, and the user stage gets what
//! is left. Both draws are tracked separately so the engine can report
//! the paper's two CPU metrics (application CPU utilization and software
//! interrupt load).

use crate::cost::{CostModel, Work};

/// Cycle budgets for all cores during one tick.
#[derive(Debug)]
pub struct CoreBudgets {
    model: CostModel,
    /// Remaining cycles per core.
    remaining: Vec<f64>,
    /// Cycles consumed by kernel work per core (this tick).
    kernel_used: Vec<f64>,
    /// Cycles consumed by user work per core (this tick).
    user_used: Vec<f64>,
    tick_cycles: f64,
}

impl CoreBudgets {
    /// Budgets for `ncores` cores over a tick of `tick_ns` simulated time.
    pub fn new(model: CostModel, ncores: usize, tick_ns: u64) -> Self {
        let tick_cycles = model.core_hz * tick_ns as f64 / 1e9;
        CoreBudgets {
            model,
            remaining: vec![tick_cycles; ncores],
            kernel_used: vec![0.0; ncores],
            user_used: vec![0.0; ncores],
            tick_cycles,
        }
    }

    /// Number of cores.
    pub fn ncores(&self) -> usize {
        self.remaining.len()
    }

    /// The cost model in force.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Cycles a full tick grants each core.
    pub fn tick_cycles(&self) -> f64 {
        self.tick_cycles
    }

    /// Reset for the next tick, returning per-core (kernel, user) usage
    /// of the finished tick.
    pub fn next_tick(&mut self) -> Vec<(f64, f64)> {
        let usage: Vec<(f64, f64)> = self
            .kernel_used
            .iter()
            .zip(&self.user_used)
            .map(|(k, u)| (*k, *u))
            .collect();
        for c in &mut self.remaining {
            *c = self.tick_cycles;
        }
        for c in &mut self.kernel_used {
            *c = 0.0;
        }
        for c in &mut self.user_used {
            *c = 0.0;
        }
        usage
    }

    /// True when `core` still has cycles to start another item.
    pub fn can_run(&self, core: usize) -> bool {
        self.remaining[core] > 0.0
    }

    /// Remaining cycles on `core`.
    pub fn remaining(&self, core: usize) -> f64 {
        self.remaining[core]
    }

    /// Charge kernel work to a core. Returns `false` when the core was
    /// already exhausted (the item should not have started; the engine
    /// convention is to check [`Self::can_run`] first, so the final item
    /// of a tick may overdraw slightly — fluid-model behaviour).
    pub fn charge_kernel(&mut self, core: usize, w: &Work) -> bool {
        let cycles = self.model.kernel_cycles(w);
        let ok = self.remaining[core] > 0.0;
        self.remaining[core] -= cycles;
        self.kernel_used[core] += cycles;
        ok
    }

    /// Charge user work to a core.
    pub fn charge_user(&mut self, core: usize, w: &Work) -> bool {
        let cycles = self.model.user_cycles(w);
        let ok = self.remaining[core] > 0.0;
        self.remaining[core] -= cycles;
        self.user_used[core] += cycles;
        ok
    }

    /// Charge raw cycles as user time (fixed per-tick overheads).
    pub fn charge_user_cycles(&mut self, core: usize, cycles: f64) {
        self.remaining[core] -= cycles;
        self.user_used[core] += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_deplete_and_reset() {
        let m = CostModel::default();
        let mut b = CoreBudgets::new(m, 2, 1_000_000); // 1 ms -> 2e6 cycles
        assert!((b.tick_cycles() - 2e6).abs() < 1.0);
        assert!(b.can_run(0));
        let w = Work {
            k_packets: 10_000, // 6e6 cycles at default 600/packet
            ..Default::default()
        };
        b.charge_kernel(0, &w);
        assert!(!b.can_run(0));
        assert!(b.can_run(1));
        let usage = b.next_tick();
        assert!(usage[0].0 > 0.0);
        assert_eq!(usage[1], (0.0, 0.0));
        assert!(b.can_run(0));
    }

    #[test]
    fn kernel_and_user_tracked_separately() {
        let m = CostModel::default();
        let mut b = CoreBudgets::new(m, 1, 1_000_000);
        b.charge_kernel(
            0,
            &Work {
                k_packets: 100,
                ..Default::default()
            },
        );
        b.charge_user(
            0,
            &Work {
                u_bytes_scanned: 1000,
                ..Default::default()
            },
        );
        let usage = b.next_tick();
        assert!((usage[0].0 - 60_000.0).abs() < 1.0);
        assert!((usage[0].1 - 15_000.0).abs() < 1.0);
    }
}
