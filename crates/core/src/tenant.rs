//! Multi-tenant capture: per-tenant isolation, quotas, and fair-share
//! backpressure on top of one shared reassembly pass.
//!
//! The paper's sharing model (§5.6) runs one kernel-owned capture and
//! serves every subscriber a filtered, cutoff-limited view. This module
//! hardens that model for *mutually untrusting* subscribers — tenants —
//! so one misbehaving tenant cannot degrade the others:
//!
//! * **Admission control** ([`TenantEngine::attach`]): memory and disk
//!   quotas are expressed in permille shares; an attach that would
//!   overcommit either pool, reuse a live name, or bring a filter that
//!   does not compile is rejected before it can touch the capture.
//! * **Memory isolation**: each tenant owns a bounded delivery queue
//!   whose byte capacity is its share of the delivery budget. A slow
//!   consumer fills only its own queue; other tenants' queues (and the
//!   kernel, which never blocks on delivery) are unaffected — there is
//!   no head-of-line blocking across tenants.
//! * **Slow-consumer ladder**: on queue overflow a tenant is first
//!   *degraded* (its effective cutoff is halved so it asks for less),
//!   then its excess is *dropped with provenance* (a `scap-flight`
//!   `Drop/tenant/slow_consumer` event per rejected chunk), and after
//!   [`TenantEngine::strike_limit`] strikes it is *disconnected* — its
//!   queue is cleared (the cleared bytes move from delivered to dropped
//!   so its conservation identity still balances) and it stops
//!   receiving events entirely.
//! * **Per-tenant conservation**: for every tenant, at all times,
//!   `matched == delivered + dropped + discarded` (bytes). `matched` is
//!   what the shared capture offered the tenant's filter, `delivered`
//!   what entered its queue, `dropped` what the slow-consumer ladder
//!   shed (all attributed in the flight journal), `discarded` what the
//!   tenant's own cutoff (or its degraded cutoff) trimmed.
//! * **Crash consistency**: the tenant table serializes to
//!   [`TenantImage`] records inside the kernel checkpoint (record
//!   `0x15`), so a warm restart restores tenants, quotas, ladder
//!   states, and conservation counters together with stream state.
//!
//! The engine is deliberately kernel-adjacent but not kernel-owned: the
//! driver (scapd, the bench harness, or a test) pumps kernel events
//! through [`TenantEngine::on_event`] and drains per-tenant queues at
//! whatever pace each consumer manages.

use std::collections::HashMap;
use std::collections::VecDeque;

use scap_filter::Filter;
use scap_flight::{DropReason, FlightEvent, FlightKind, FlightLayer, FlightRecorder};
use scap_telemetry::{Metric, PlainRegistry, Pulse, PulseSnapshot, PulseStage};
use scap_wire::Direction;

use crate::checkpoint::TenantImage;
use crate::config::{ConfigDelta, ScapConfig};
use crate::event::{Event, EventKind, StreamUid};
use crate::sharing::{union_requirements, Requirement};

/// What a tenant asks of the shared capture when it attaches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantSpec {
    /// Human-readable tenant name; unique among attached tenants.
    pub name: String,
    /// BPF source of the tenant's stream filter (`None` = all streams).
    pub filter: Option<String>,
    /// Per-stream delivery cutoff in bytes (`None` = unlimited).
    pub cutoff: Option<u64>,
    /// PPL priority for the tenant's streams (0 = shed first). Mapped
    /// into the merged [`crate::config::PriorityPolicy`], so a tenant's
    /// memory-pressure survival is part of its quota.
    pub priority: u8,
    /// Share of the delivery-queue memory budget, in permille.
    pub mem_share: u32,
    /// Share of the archive disk budget, in permille (consumed by the
    /// scap-store writer the daemon runs for the tenant).
    pub disk_share: u32,
}

/// Why an attach was refused. Admission control runs before the tenant
/// can influence the capture, so a rejected attach is side-effect free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// A tenant with this name is already attached.
    DuplicateName(String),
    /// `mem_share`/`disk_share` must be in `1..=1000` permille.
    ShareOutOfRange {
        /// The rejected memory share.
        mem: u32,
        /// The rejected disk share.
        disk: u32,
    },
    /// Granting the memory share would overcommit the delivery budget.
    MemoryOvercommit {
        /// The requested memory share (permille).
        requested: u32,
        /// What remains uncommitted (permille).
        available: u32,
    },
    /// Granting the disk share would overcommit the archive budget.
    DiskOvercommit {
        /// The requested disk share (permille).
        requested: u32,
        /// What remains uncommitted (permille).
        available: u32,
    },
    /// The tenant's filter did not compile.
    Filter(String),
}

impl core::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AdmissionError::DuplicateName(n) => write!(f, "tenant name {n:?} already attached"),
            AdmissionError::ShareOutOfRange { mem, disk } => {
                write!(
                    f,
                    "shares must be 1..=1000 permille (mem={mem}, disk={disk})"
                )
            }
            AdmissionError::MemoryOvercommit {
                requested,
                available,
            } => write!(
                f,
                "memory share {requested}\u{2030} exceeds available {available}\u{2030}"
            ),
            AdmissionError::DiskOvercommit {
                requested,
                available,
            } => write!(
                f,
                "disk share {requested}\u{2030} exceeds available {available}\u{2030}"
            ),
            AdmissionError::Filter(e) => write!(f, "tenant filter rejected: {e}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Where a tenant sits on the slow-consumer ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantState {
    /// Delivering normally.
    Active,
    /// Queue overflowed: effective cutoff halved, overflow dropped with
    /// provenance, strikes accumulating. Recovers to `Active` when the
    /// consumer drains the queue below a quarter of its capacity.
    Degraded,
    /// Struck out: queue cleared, no further delivery. Terminal until
    /// the tenant detaches and re-attaches.
    Disconnected,
}

impl TenantState {
    fn to_u8(self) -> u8 {
        match self {
            TenantState::Active => 0,
            TenantState::Degraded => 1,
            TenantState::Disconnected => 2,
        }
    }

    fn from_u8(v: u8) -> TenantState {
        match v {
            1 => TenantState::Degraded,
            2 => TenantState::Disconnected,
            _ => TenantState::Active,
        }
    }
}

/// One queued delivery. Control events carry zero bytes; data events
/// carry the chunk length that was admitted past the tenant's cutoff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Stream the event belongs to.
    pub uid: StreamUid,
    /// Direction for data deliveries.
    pub dir: Option<Direction>,
    /// Payload bytes (0 for created/terminated).
    pub bytes: u64,
    /// Event class: 0 created, 1 data, 2 terminated.
    pub kind: u8,
    /// Trace-clock time the delivery entered the tenant queue (the
    /// producing event's kernel-enqueue timestamp). The pulse plane
    /// measures tenant-queue residency against this at drain time.
    pub enqueued_ns: u64,
}

/// Per-tenant conservation and behavior counters (bytes unless noted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Bytes the shared capture offered this tenant's filter.
    pub matched_bytes: u64,
    /// Bytes admitted into the tenant's delivery queue.
    pub delivered_bytes: u64,
    /// Bytes shed by the slow-consumer ladder (flight-attributed).
    pub dropped_bytes: u64,
    /// Bytes trimmed by the tenant's own (or degraded) cutoff.
    pub discarded_bytes: u64,
    /// Bytes the consumer actually drained from the queue.
    pub drained_bytes: u64,
    /// Events (created/data/terminated) matched.
    pub events: u64,
    /// Queue-overflow strikes taken (lifetime).
    pub strikes: u64,
    /// Degraded→Active recoveries.
    pub recoveries: u64,
    /// 1 once the ladder disconnected the tenant.
    pub disconnects: u64,
}

impl TenantStats {
    /// The per-tenant conservation identity: everything offered to the
    /// tenant is accounted as delivered, dropped, or discarded.
    pub fn conserved(&self) -> bool {
        self.matched_bytes == self.delivered_bytes + self.dropped_bytes + self.discarded_bytes
    }
}

/// One attached tenant.
#[derive(Debug)]
pub struct Tenant {
    /// Stable id (attach order; never recycled within an engine).
    pub id: u64,
    /// The spec the tenant attached with.
    pub spec: TenantSpec,
    /// Ladder position.
    pub state: TenantState,
    /// Counters.
    pub stats: TenantStats,
    filter: Option<Filter>,
    queue: VecDeque<Delivery>,
    queue_bytes: u64,
    queue_cap: u64,
    strikes: u32,
    /// Cutoff allowance consumed per stream (tenant-local view).
    seen: HashMap<StreamUid, u64>,
}

impl Tenant {
    fn wants(&self, ev: &Event) -> bool {
        match &self.filter {
            None => true,
            Some(f) => f.matches_key(&ev.stream.key) || f.matches_key(&ev.stream.key.reversed()),
        }
    }

    /// The cutoff currently in force: the spec's cutoff, halved while
    /// degraded (the first rung of the ladder asks for less data
    /// instead of dropping it).
    fn effective_cutoff(&self) -> Option<u64> {
        match (self.state, self.spec.cutoff) {
            (TenantState::Degraded, Some(c)) => Some(c / 2),
            (_, c) => c,
        }
    }

    /// Queue bytes still available before the ladder engages.
    pub fn quota_headroom(&self) -> u64 {
        self.queue_cap.saturating_sub(self.queue_bytes)
    }

    /// Current queue depth in bytes / entries.
    pub fn queue_depth(&self) -> (u64, usize) {
        (self.queue_bytes, self.queue.len())
    }

    /// Byte capacity of the delivery queue (mem share of the budget).
    pub fn queue_cap(&self) -> u64 {
        self.queue_cap
    }
}

/// The tenant table and demux engine.
#[derive(Debug)]
pub struct TenantEngine {
    tenants: Vec<Tenant>,
    next_id: u64,
    delivery_budget: u64,
    strike_limit: u32,
    /// Engine-tracked trace clock: the latest event timestamp seen by
    /// `on_event`, so `drain` can measure queue residency without every
    /// caller threading a clock through.
    clock_ns: u64,
    /// Tenant-queue latency recorder (the `TenantQueue` pulse stage).
    pulse: Pulse,
}

impl TenantEngine {
    /// Create an engine distributing `delivery_budget` queue bytes;
    /// a tenant is disconnected after `strike_limit` overflow strikes.
    pub fn new(delivery_budget: u64, strike_limit: u32) -> Self {
        TenantEngine {
            tenants: Vec::new(),
            next_id: 1,
            delivery_budget,
            strike_limit: strike_limit.max(1),
            clock_ns: 0,
            pulse: Pulse::default(),
        }
    }

    /// Reconfigure the tenant-queue pulse recorder (sampling quantile in
    /// permille, exemplars kept per stage). Call before traffic flows —
    /// existing histograms are replaced.
    pub fn configure_pulse(&mut self, quantile_permille: u32, exemplar_cap: usize) {
        self.pulse = Pulse::new(quantile_permille, exemplar_cap);
    }

    /// Export the engine's pulse plane (tenant-queue residency spans).
    pub fn pulse_snapshot(&self) -> PulseSnapshot {
        self.pulse.snapshot()
    }

    /// Permille of the memory budget already committed.
    pub fn mem_committed(&self) -> u32 {
        self.tenants.iter().map(|t| t.spec.mem_share).sum()
    }

    /// Permille of the disk budget already committed.
    pub fn disk_committed(&self) -> u32 {
        self.tenants.iter().map(|t| t.spec.disk_share).sum()
    }

    /// The strike limit the ladder disconnects at.
    pub fn strike_limit(&self) -> u32 {
        self.strike_limit
    }

    /// Attached tenants, in id order.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Look up a tenant by id.
    pub fn tenant(&self, id: u64) -> Option<&Tenant> {
        self.tenants.iter().find(|t| t.id == id)
    }

    /// Look up a tenant by name.
    pub fn tenant_by_name(&self, name: &str) -> Option<&Tenant> {
        self.tenants.iter().find(|t| t.spec.name == name)
    }

    /// Admission control + attach. On success the tenant id is
    /// returned and a `tenant_attached` flight event is emitted.
    pub fn attach(
        &mut self,
        spec: TenantSpec,
        now_ns: u64,
        flight: Option<&mut FlightRecorder>,
    ) -> Result<u64, AdmissionError> {
        if spec.mem_share == 0
            || spec.mem_share > 1000
            || spec.disk_share == 0
            || spec.disk_share > 1000
        {
            return Err(AdmissionError::ShareOutOfRange {
                mem: spec.mem_share,
                disk: spec.disk_share,
            });
        }
        if self.tenants.iter().any(|t| t.spec.name == spec.name) {
            return Err(AdmissionError::DuplicateName(spec.name));
        }
        let mem_avail = 1000 - self.mem_committed();
        if spec.mem_share > mem_avail {
            return Err(AdmissionError::MemoryOvercommit {
                requested: spec.mem_share,
                available: mem_avail,
            });
        }
        let disk_avail = 1000 - self.disk_committed();
        if spec.disk_share > disk_avail {
            return Err(AdmissionError::DiskOvercommit {
                requested: spec.disk_share,
                available: disk_avail,
            });
        }
        let filter = match &spec.filter {
            None => None,
            Some(src) => match Filter::new(src) {
                Ok(f) => Some(f),
                Err(e) => return Err(AdmissionError::Filter(e.to_string())),
            },
        };
        let id = self.next_id;
        self.next_id += 1;
        let queue_cap = self.delivery_budget * u64::from(spec.mem_share) / 1000;
        if let Some(fl) = flight {
            fl.emit(
                0,
                FlightEvent::new(FlightKind::TenantAttached, FlightLayer::Tenant, now_ns)
                    .with_uid(id)
                    .with_vals(u64::from(spec.mem_share), u64::from(spec.disk_share)),
            );
        }
        self.tenants.push(Tenant {
            id,
            spec,
            state: TenantState::Active,
            stats: TenantStats::default(),
            filter,
            queue: VecDeque::new(),
            queue_bytes: 0,
            queue_cap,
            strikes: 0,
            seen: HashMap::new(),
        });
        Ok(id)
    }

    /// Detach a tenant, returning its final stats (for end-of-life
    /// conservation reporting). Frees its quota shares immediately.
    pub fn detach(
        &mut self,
        id: u64,
        now_ns: u64,
        flight: Option<&mut FlightRecorder>,
    ) -> Option<TenantStats> {
        let idx = self.tenants.iter().position(|t| t.id == id)?;
        let t = self.tenants.remove(idx);
        if let Some(fl) = flight {
            fl.emit(
                0,
                FlightEvent::new(FlightKind::TenantDetached, FlightLayer::Tenant, now_ns)
                    .with_uid(t.id)
                    .with_vals(t.stats.delivered_bytes, 0),
            );
        }
        Some(t.stats)
    }

    /// The capture requirements of the current tenant set.
    pub fn requirements(&self) -> Vec<Requirement> {
        self.tenants
            .iter()
            .map(|t| Requirement {
                filter: t.filter.clone(),
                cutoff: t.spec.cutoff,
                priority: t.spec.priority,
            })
            .collect()
    }

    /// The generalized kernel configuration for the tenant set: union
    /// of filters, max cutoff, priority classes mapping each tenant's
    /// PPL survival to its quota.
    pub fn merged_config(&self, base: ScapConfig) -> Result<ScapConfig, scap_filter::FilterError> {
        union_requirements(base, &self.requirements(), false)
    }

    /// The hot-reconfiguration delta that moves an installed config to
    /// this tenant set's merged view (for `apply_config` after an
    /// attach or detach on a live capture). The delta replaces the
    /// cutoff class list wholesale, so narrowing after a detach passes
    /// [`ConfigDelta::validate`].
    pub fn config_delta(&self, base: ScapConfig) -> Result<ConfigDelta, scap_filter::FilterError> {
        let merged = self.merged_config(base)?;
        Ok(ConfigDelta {
            cutoff_default: Some(merged.cutoff.default),
            cutoff_classes: Some(merged.cutoff.classes.clone()),
            priorities: Some(merged.priorities.clone()),
            filter: Some(merged.filter.clone()),
        })
    }

    /// Demux one kernel event across the tenant table. Never blocks:
    /// each tenant either absorbs its share into its own queue or takes
    /// the slow-consumer ladder; other tenants are untouched.
    pub fn on_event(&mut self, ev: &Event, flight: &mut FlightRecorder) {
        let ts = ev.stream.last_ts_ns;
        let core = ev.core;
        let strike_limit = self.strike_limit;
        // Queue-entry timestamp for the pulse plane: the event's kernel
        // enqueue time when the driver stamped one, else the stream's
        // last-activity clock.
        let entry_ns = ev.enqueued_ns.max(ts);
        self.clock_ns = self.clock_ns.max(entry_ns);
        for t in &mut self.tenants {
            if t.state == TenantState::Disconnected || !t.wants(ev) {
                continue;
            }
            t.stats.events += 1;
            let (kind, dir, len) = match &ev.kind {
                EventKind::Created => (0u8, None, 0u64),
                EventKind::Data { dir, chunk, .. } => (1, Some(*dir), chunk.len as u64),
                EventKind::Terminated => (2, None, 0),
            };
            if kind != 1 {
                // Control events are tiny: always enqueue, zero bytes.
                t.queue.push_back(Delivery {
                    uid: ev.stream.uid,
                    dir: None,
                    bytes: 0,
                    kind,
                    enqueued_ns: entry_ns,
                });
                if kind == 2 {
                    t.seen.remove(&ev.stream.uid);
                }
                continue;
            }
            t.stats.matched_bytes += len;
            // The tenant's own cutoff view: the shared capture may run a
            // wider (unioned) cutoff; trim this tenant back to what it
            // asked for — or to the degraded cutoff while on the ladder.
            let cutoff = t.effective_cutoff();
            let seen = t.seen.entry(ev.stream.uid).or_insert(0);
            let allowed = match cutoff {
                None => len,
                Some(c) => c.saturating_sub(*seen).min(len),
            };
            let trimmed = len - allowed;
            if trimmed > 0 {
                t.stats.discarded_bytes += trimmed;
                if t.state == TenantState::Degraded {
                    // Degraded trims beyond the spec cutoff are a quota
                    // action, not tenant intent: attribute them.
                    flight.emit(
                        core,
                        FlightEvent::new(FlightKind::Drop, FlightLayer::Tenant, ts)
                            .with_reason(DropReason::TenantQuota)
                            .with_uid(t.id)
                            .with_vals(1, trimmed),
                    );
                }
            }
            if allowed == 0 {
                continue;
            }
            *seen += allowed;
            if t.queue_bytes + allowed <= t.queue_cap {
                t.queue.push_back(Delivery {
                    uid: ev.stream.uid,
                    dir,
                    bytes: allowed,
                    kind,
                    enqueued_ns: entry_ns,
                });
                t.queue_bytes += allowed;
                t.stats.delivered_bytes += allowed;
                continue;
            }
            // Queue overflow: the slow-consumer ladder.
            t.stats.dropped_bytes += allowed;
            t.stats.strikes += 1;
            t.strikes += 1;
            flight.emit(
                core,
                FlightEvent::new(FlightKind::Drop, FlightLayer::Tenant, ts)
                    .with_reason(DropReason::SlowConsumer)
                    .with_uid(t.id)
                    .with_vals(1, allowed),
            );
            if t.state == TenantState::Active {
                t.state = TenantState::Degraded;
                flight.emit(
                    core,
                    FlightEvent::new(FlightKind::TenantDegraded, FlightLayer::Tenant, ts)
                        .with_uid(t.id)
                        .with_vals(t.effective_cutoff().unwrap_or(0), t.queue_cap),
                );
            } else if t.strikes >= strike_limit {
                // Struck out: clear the queue. Bytes sitting in it were
                // counted delivered at enqueue; they will never reach
                // the consumer, so move them to dropped — conservation
                // stays exact.
                let cleared = t.queue_bytes;
                t.queue.clear();
                t.queue_bytes = 0;
                t.stats.delivered_bytes -= cleared;
                t.stats.dropped_bytes += cleared;
                t.state = TenantState::Disconnected;
                t.stats.disconnects = 1;
                if cleared > 0 {
                    flight.emit(
                        core,
                        FlightEvent::new(FlightKind::Drop, FlightLayer::Tenant, ts)
                            .with_reason(DropReason::SlowConsumer)
                            .with_uid(t.id)
                            .with_vals(t.queue.len() as u64, cleared),
                    );
                }
                flight.emit(
                    core,
                    FlightEvent::new(FlightKind::TenantDisconnected, FlightLayer::Tenant, ts)
                        .with_uid(t.id)
                        .with_vals(cleared, u64::from(t.strikes)),
                );
            }
        }
    }

    /// Consumer side: drain up to `max_bytes` of queued deliveries for
    /// tenant `id` (control events are free). Draining below a quarter
    /// of the queue capacity recovers a degraded tenant to active.
    pub fn drain(&mut self, id: u64, max_bytes: u64) -> Vec<Delivery> {
        let clock = self.clock_ns;
        let Some(t) = self.tenants.iter_mut().find(|t| t.id == id) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut budget = max_bytes;
        while let Some(front) = t.queue.front() {
            if front.bytes > budget && front.bytes > 0 {
                break;
            }
            let d = t.queue.pop_front().expect("front checked");
            budget -= d.bytes;
            t.queue_bytes -= d.bytes;
            t.stats.drained_bytes += d.bytes;
            // Pulse: tenant-queue residency on the engine's trace clock.
            self.pulse.record_uid(
                PulseStage::TenantQueue,
                clock.saturating_sub(d.enqueued_ns),
                d.uid,
                0,
            );
            out.push(d);
        }
        if t.state == TenantState::Degraded && t.queue_bytes <= t.queue_cap / 4 {
            t.state = TenantState::Active;
            t.strikes = 0;
            t.stats.recoveries += 1;
        }
        out
    }

    /// Every tenant's conservation identity holds.
    pub fn all_conserved(&self) -> bool {
        self.tenants.iter().all(|t| t.stats.conserved())
    }

    /// Export per-tenant totals into a telemetry registry (shard 0).
    /// Call once at end of capture: the Tenant* metrics are monotonic
    /// counters, so incremental exports would double-count.
    pub fn export_telemetry(&self, tele: &PlainRegistry) {
        for t in &self.tenants {
            tele.add(0, Metric::TenantDeliveredBytes, t.stats.delivered_bytes);
            tele.add(0, Metric::TenantDroppedBytes, t.stats.dropped_bytes);
            tele.add(0, Metric::TenantDiscardedBytes, t.stats.discarded_bytes);
            tele.add(0, Metric::TenantDisconnects, t.stats.disconnects);
        }
    }

    /// Serialize the tenant table for the kernel checkpoint.
    pub fn images(&self) -> Vec<TenantImage> {
        self.tenants
            .iter()
            .map(|t| TenantImage {
                id: t.id,
                name: t.spec.name.clone(),
                filter_src: t.spec.filter.clone(),
                cutoff: t.spec.cutoff,
                priority: t.spec.priority,
                mem_share: t.spec.mem_share,
                disk_share: t.spec.disk_share,
                state: t.state.to_u8(),
                delivered_bytes: t.stats.delivered_bytes,
                dropped_bytes: t.stats.dropped_bytes,
                discarded_bytes: t.stats.discarded_bytes,
            })
            .collect()
    }

    /// Rebuild an engine from checkpointed tenant images. Queues come
    /// back empty (queued-but-undrained deliveries died with the
    /// process; their bytes are already accounted in the counters),
    /// ladder states and conservation counters are restored, and
    /// `matched` is re-derived so the identity holds on the restored
    /// table.
    pub fn from_images(images: &[TenantImage], delivery_budget: u64, strike_limit: u32) -> Self {
        let mut eng = TenantEngine::new(delivery_budget, strike_limit);
        for img in images {
            let filter = img.filter_src.as_deref().and_then(|s| Filter::new(s).ok());
            let queue_cap = delivery_budget * u64::from(img.mem_share) / 1000;
            eng.tenants.push(Tenant {
                id: img.id,
                spec: TenantSpec {
                    name: img.name.clone(),
                    filter: img.filter_src.clone(),
                    cutoff: img.cutoff,
                    priority: img.priority,
                    mem_share: img.mem_share,
                    disk_share: img.disk_share,
                },
                state: TenantState::from_u8(img.state),
                stats: TenantStats {
                    matched_bytes: img.delivered_bytes + img.dropped_bytes + img.discarded_bytes,
                    delivered_bytes: img.delivered_bytes,
                    dropped_bytes: img.dropped_bytes,
                    discarded_bytes: img.discarded_bytes,
                    ..TenantStats::default()
                },
                filter,
                queue: VecDeque::new(),
                queue_bytes: 0,
                queue_cap,
                strikes: 0,
                seen: HashMap::new(),
            });
            eng.next_id = eng.next_id.max(img.id + 1);
        }
        eng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ScapKernel;
    use scap_faults::{FaultPlan, TenantFault, TenantFaultKind};
    use scap_flight::decode_journal;
    use scap_trace::gen::{CampusMix, CampusMixConfig};
    use scap_trace::Packet;

    fn trace(seed: u64) -> Vec<Packet> {
        CampusMix::new(CampusMixConfig::sized(seed, 2 << 20)).collect_all()
    }

    fn specs() -> Vec<TenantSpec> {
        vec![
            TenantSpec {
                name: "web".into(),
                filter: Some("tcp and port 80".into()),
                cutoff: Some(8 << 10),
                priority: 2,
                mem_share: 300,
                disk_share: 300,
            },
            TenantSpec {
                name: "dns".into(),
                filter: Some("udp".into()),
                cutoff: Some(2 << 10),
                priority: 1,
                mem_share: 200,
                disk_share: 200,
            },
            TenantSpec {
                name: "bulk".into(),
                filter: Some("tcp".into()),
                cutoff: None,
                priority: 0,
                mem_share: 300,
                disk_share: 300,
            },
        ]
    }

    /// Drive a capture with per-tenant consumer behavior: tenants in
    /// `stalled` stop draining after their given event count.
    fn drive(
        engine: &mut TenantEngine,
        kernel: &mut ScapKernel,
        packets: &[Packet],
        stalled: &[(u64, u64)],
    ) {
        let mut events_seen: HashMap<u64, u64> = HashMap::new();
        let mut now = 0;
        let ids: Vec<u64> = engine.tenants().iter().map(|t| t.id).collect();
        for pkt in packets {
            now = pkt.ts_ns;
            kernel.nic_receive(pkt);
            for core in 0..kernel.ncores() {
                while kernel.kernel_poll(core, now).is_some() {}
                kernel.kernel_timers(core, now);
                while let Some(ev) = kernel.next_event(core) {
                    engine.on_event(&ev, kernel.flight_mut());
                    if let EventKind::Data { dir, chunk, .. } = ev.kind {
                        kernel.release_data(ev.stream.uid, dir, chunk);
                    }
                }
            }
            for &id in &ids {
                let seen = events_seen.entry(id).or_insert(0);
                let stall = stalled
                    .iter()
                    .find(|(sid, _)| *sid == id)
                    .map(|(_, after)| *after);
                if stall.is_some_and(|after| *seen >= after) {
                    continue; // stalled consumer: stops draining forever
                }
                *seen += engine.drain(id, u64::MAX).len() as u64;
            }
        }
        kernel.finish(now.saturating_add(1));
        for core in 0..kernel.ncores() {
            while let Some(ev) = kernel.next_event(core) {
                engine.on_event(&ev, kernel.flight_mut());
                if let EventKind::Data { dir, chunk, .. } = ev.kind {
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }
        // Healthy consumers drain whatever the finish flush enqueued.
        for &id in &ids {
            let seen = events_seen.entry(id).or_insert(0);
            let stall = stalled
                .iter()
                .find(|(sid, _)| *sid == id)
                .map(|(_, after)| *after);
            if stall.is_some_and(|after| *seen >= after) {
                continue;
            }
            *seen += engine.drain(id, u64::MAX).len() as u64;
        }
    }

    fn run(
        specs: Vec<TenantSpec>,
        seed: u64,
        budget: u64,
        stalled_names: &[(&str, u64)],
    ) -> (TenantEngine, ScapKernel) {
        let mut engine = TenantEngine::new(budget, 8);
        let mut ids = Vec::new();
        for s in specs {
            ids.push((s.name.clone(), engine.attach(s, 0, None).unwrap()));
        }
        let cfg = engine.merged_config(ScapConfig::default()).unwrap();
        let mut kernel = ScapKernel::new(cfg);
        kernel.set_tenant_table(engine.images());
        let stalled: Vec<(u64, u64)> = stalled_names
            .iter()
            .map(|(n, after)| (ids.iter().find(|(name, _)| name == n).unwrap().1, *after))
            .collect();
        drive(&mut engine, &mut kernel, &trace(seed), &stalled);
        (engine, kernel)
    }

    #[test]
    fn admission_control_enforces_quotas() {
        let mut eng = TenantEngine::new(1 << 20, 8);
        let a = eng
            .attach(
                TenantSpec {
                    name: "a".into(),
                    mem_share: 700,
                    disk_share: 500,
                    ..Default::default()
                },
                0,
                None,
            )
            .unwrap();
        // Duplicate name.
        assert_eq!(
            eng.attach(
                TenantSpec {
                    name: "a".into(),
                    mem_share: 100,
                    disk_share: 100,
                    ..Default::default()
                },
                0,
                None,
            ),
            Err(AdmissionError::DuplicateName("a".into()))
        );
        // Memory overcommit: only 300‰ left.
        assert_eq!(
            eng.attach(
                TenantSpec {
                    name: "b".into(),
                    mem_share: 400,
                    disk_share: 100,
                    ..Default::default()
                },
                0,
                None,
            ),
            Err(AdmissionError::MemoryOvercommit {
                requested: 400,
                available: 300,
            })
        );
        // Disk overcommit: only 500‰ left.
        assert_eq!(
            eng.attach(
                TenantSpec {
                    name: "b".into(),
                    mem_share: 100,
                    disk_share: 600,
                    ..Default::default()
                },
                0,
                None,
            ),
            Err(AdmissionError::DiskOvercommit {
                requested: 600,
                available: 500,
            })
        );
        // Bad shares and bad filters never get in.
        assert!(matches!(
            eng.attach(
                TenantSpec {
                    name: "b".into(),
                    mem_share: 0,
                    disk_share: 1,
                    ..Default::default()
                },
                0,
                None,
            ),
            Err(AdmissionError::ShareOutOfRange { .. })
        ));
        assert!(matches!(
            eng.attach(
                TenantSpec {
                    name: "b".into(),
                    filter: Some("((".into()),
                    mem_share: 100,
                    disk_share: 100,
                    ..Default::default()
                },
                0,
                None,
            ),
            Err(AdmissionError::Filter(_))
        ));
        // A fitting attach succeeds, and detach frees the shares.
        eng.detach(a, 0, None).unwrap();
        assert!(eng
            .attach(
                TenantSpec {
                    name: "b".into(),
                    mem_share: 1000,
                    disk_share: 1000,
                    ..Default::default()
                },
                0,
                None,
            )
            .is_ok());
    }

    #[test]
    fn merged_config_maps_priorities_to_ppl() {
        let mut eng = TenantEngine::new(1 << 20, 8);
        for s in specs() {
            eng.attach(s, 0, None).unwrap();
        }
        let cfg = eng.merged_config(ScapConfig::default()).unwrap();
        // "bulk" is unlimited ⇒ merged cutoff unlimited; its tcp filter
        // plus web/dns still unions to a restricted capture filter.
        assert_eq!(cfg.cutoff.default, None);
        assert!(cfg.filter.is_some());
        // Two tenants stated priorities ⇒ PPL runs 3 watermark levels
        // (priorities 0..=2), mapping quota to shed order.
        assert_eq!(cfg.ppl.num_priorities, 3);
        assert_eq!(cfg.priorities.classes.len(), 2);
    }

    #[test]
    fn per_tenant_conservation_holds_with_all_consumers_healthy() {
        let (engine, kernel) = run(specs(), 11, 1 << 20, &[]);
        assert!(engine.all_conserved());
        for t in engine.tenants() {
            assert_eq!(t.state, TenantState::Active, "tenant {}", t.spec.name);
            assert_eq!(t.stats.dropped_bytes, 0);
            assert!(
                t.stats.matched_bytes > 0,
                "tenant {} saw no traffic",
                t.spec.name
            );
        }
        // Healthy consumers drained everything that was delivered.
        for t in engine.tenants() {
            assert_eq!(t.stats.drained_bytes, t.stats.delivered_bytes);
        }
        // No tenant-layer drops in the journal either.
        let journal = decode_journal(&kernel.flight().encode()).unwrap();
        assert!(!journal
            .events
            .iter()
            .any(|e| e.kind == FlightKind::Drop && e.layer == FlightLayer::Tenant));
    }

    /// The chaos isolation test: a hostile tenant (stalled consumer,
    /// from the seeded tenant fault plan) is degraded, dropped-with-
    /// provenance, and finally disconnected — while every well-behaved
    /// tenant's delivered bytes stay within 5% of what it gets running
    /// alone (documented isolation bound; in this deterministic setting
    /// the match is exact), conservation holds per tenant, and the
    /// journal's tenant drop sums reconcile exactly.
    #[test]
    fn hostile_tenant_cannot_starve_the_others() {
        let seed = 42;
        let plan = FaultPlan::tenant_storm(seed, 3);
        // The plan nominates a hostile tenant with a consumer stall;
        // map it onto the "bulk" tenant (highest-volume view).
        let stall_after = plan
            .tenants
            .iter()
            .find_map(|TenantFault { kind, .. }| match kind {
                TenantFaultKind::StallConsumer { after_events } => Some(*after_events),
                _ => None,
            })
            .expect("tenant storm always stalls someone");
        let budget = 64 << 10; // small budget so the stall bites
        let (shared, kernel) = run(specs(), seed, budget, &[("bulk", stall_after)]);

        // The hostile tenant walked the full ladder.
        let bulk = shared.tenant_by_name("bulk").unwrap();
        assert_eq!(bulk.state, TenantState::Disconnected);
        assert_eq!(bulk.stats.disconnects, 1);
        assert!(bulk.stats.dropped_bytes > 0);

        // Conservation holds for every tenant, hostile included.
        for t in shared.tenants() {
            assert!(
                t.stats.conserved(),
                "tenant {}: matched={} delivered={} dropped={} discarded={}",
                t.spec.name,
                t.stats.matched_bytes,
                t.stats.delivered_bytes,
                t.stats.dropped_bytes,
                t.stats.discarded_bytes
            );
        }

        // Journal reconciliation: per-tenant Drop sums equal the
        // engine's dropped counters exactly.
        let journal = decode_journal(&kernel.flight().encode()).unwrap();
        for t in shared.tenants() {
            let journal_dropped: u64 = journal
                .events
                .iter()
                .filter(|e| {
                    e.kind == FlightKind::Drop
                        && e.layer == FlightLayer::Tenant
                        && e.uid == t.id
                        && e.reason == DropReason::SlowConsumer
                })
                .map(|e| e.b)
                .sum();
            assert_eq!(
                journal_dropped, t.stats.dropped_bytes,
                "tenant {} journal mismatch",
                t.spec.name
            );
        }

        // Isolation bound: each well-behaved tenant delivered at least
        // 95% of its solo-run bytes despite the hostile tenant.
        for name in ["web", "dns"] {
            let solo_spec: Vec<TenantSpec> =
                specs().into_iter().filter(|s| s.name == name).collect();
            let (solo, _) = run(solo_spec, seed, budget, &[]);
            let solo_t = solo.tenant_by_name(name).unwrap();
            let shared_t = shared.tenant_by_name(name).unwrap();
            assert!(shared_t.stats.dropped_bytes == 0, "{name} took drops");
            assert!(
                shared_t.stats.delivered_bytes * 100 >= solo_t.stats.delivered_bytes * 95,
                "{name}: shared={} < 95% of solo={}",
                shared_t.stats.delivered_bytes,
                solo_t.stats.delivered_bytes
            );
        }
    }

    #[test]
    fn degraded_tenant_recovers_when_consumer_catches_up() {
        let mut eng = TenantEngine::new(1 << 20, 8);
        for s in specs() {
            eng.attach(s, 0, None).unwrap();
        }
        let cfg = eng.merged_config(ScapConfig::default()).unwrap();
        let mut kernel = ScapKernel::new(cfg);
        let packets = trace(7);
        let half = packets.len() / 2;
        let bulk = eng.tenant_by_name("bulk").unwrap().id;
        // First half: bulk's consumer never drains.
        drive(&mut eng, &mut kernel, &packets[..half], &[(bulk, 0)]);
        let mid = eng.tenant_by_name("bulk").unwrap();
        assert_ne!(
            mid.state,
            TenantState::Active,
            "stall must engage the ladder"
        );
        // Catch up: a full drain recovers a degraded tenant.
        let drained = eng.drain(bulk, u64::MAX);
        let t = eng.tenant_by_name("bulk").unwrap();
        if t.state != TenantState::Disconnected {
            assert_eq!(t.state, TenantState::Active);
            assert!(t.stats.recoveries > 0);
            assert!(!drained.is_empty());
        }
        assert!(eng.all_conserved());
    }

    #[test]
    fn attach_detach_storm_keeps_table_and_quotas_consistent() {
        let plan = FaultPlan::tenant_storm(3, 2);
        let cycles = plan
            .tenants
            .iter()
            .find_map(|TenantFault { kind, .. }| match kind {
                TenantFaultKind::AttachStorm { cycles } => Some(*cycles),
                _ => None,
            })
            .expect("tenant storm always storms someone");
        let mut eng = TenantEngine::new(1 << 20, 8);
        let keeper = eng
            .attach(
                TenantSpec {
                    name: "keeper".into(),
                    mem_share: 500,
                    disk_share: 500,
                    ..Default::default()
                },
                0,
                None,
            )
            .unwrap();
        for i in 0..cycles {
            let id = eng
                .attach(
                    TenantSpec {
                        name: "churn".into(),
                        mem_share: 500,
                        disk_share: 500,
                        ..Default::default()
                    },
                    u64::from(i),
                    None,
                )
                .unwrap();
            assert_eq!(eng.mem_committed(), 1000);
            eng.detach(id, u64::from(i), None).unwrap();
            assert_eq!(eng.mem_committed(), 500);
        }
        // Ids are never recycled; the keeper is untouched.
        assert_eq!(eng.tenants().len(), 1);
        assert_eq!(eng.tenant(keeper).unwrap().spec.name, "keeper");
        assert_eq!(eng.next_id, u64::from(cycles) + 2);
    }

    #[test]
    fn tenant_table_round_trips_through_kernel_checkpoint() {
        let (engine, mut kernel) = run(specs(), 9, 64 << 10, &[("bulk", 4)]);
        kernel.set_tenant_table(engine.images());
        let bytes = kernel.checkpoint_bytes(1_000_000, 1);
        let img = crate::checkpoint::CheckpointImage::decode(&bytes).unwrap();
        assert_eq!(img.tenants, engine.images());

        // Restore: ladder states, quotas, and counters survive; the
        // conservation identity holds on the restored table.
        let restored = TenantEngine::from_images(&img.tenants, 64 << 10, 8);
        assert!(restored.all_conserved());
        for (a, b) in engine.tenants().iter().zip(restored.tenants()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.state, b.state);
            assert_eq!(a.stats.delivered_bytes, b.stats.delivered_bytes);
            assert_eq!(a.stats.dropped_bytes, b.stats.dropped_bytes);
        }
        // Quota accounting carries over: a new over-committing attach
        // is still rejected after restore.
        let mut restored = restored;
        assert!(matches!(
            restored.attach(
                TenantSpec {
                    name: "late".into(),
                    mem_share: 900,
                    disk_share: 10,
                    ..Default::default()
                },
                0,
                None,
            ),
            Err(AdmissionError::MemoryOvercommit { .. })
        ));
    }

    #[test]
    fn telemetry_export_totals_match_engine_counters() {
        let (engine, _) = run(specs(), 5, 64 << 10, &[("bulk", 2)]);
        let tele = PlainRegistry::new(1);
        engine.export_telemetry(&tele);
        let snap = tele.snapshot();
        let total_delivered: u64 = engine
            .tenants()
            .iter()
            .map(|t| t.stats.delivered_bytes)
            .sum();
        let total_dropped: u64 = engine.tenants().iter().map(|t| t.stats.dropped_bytes).sum();
        assert_eq!(snap.total(Metric::TenantDeliveredBytes), total_delivered);
        assert_eq!(snap.total(Metric::TenantDroppedBytes), total_dropped);
    }
}
