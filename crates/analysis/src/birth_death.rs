//! Generic birth–death chain stationary distributions.

/// Stationary distribution of a birth–death chain with `births.len() + 1`
/// states, where `births[i]` is the rate from state `i` to `i+1` and
/// `deaths[i]` the rate from `i+1` to `i`.
///
/// `p_{i+1} = p_i · births[i] / deaths[i]`, normalized.
pub fn stationary_distribution(births: &[f64], deaths: &[f64]) -> Vec<f64> {
    assert_eq!(births.len(), deaths.len());
    assert!(
        deaths.iter().all(|&d| d > 0.0),
        "death rates must be positive"
    );
    let n = births.len();
    let mut p = Vec::with_capacity(n + 1);
    p.push(1.0f64);
    for i in 0..n {
        let next = p[i] * births[i] / deaths[i];
        p.push(next);
    }
    let total: f64 = p.iter().sum();
    for v in &mut p {
        *v /= total;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_state_chain() {
        // 0 <-> 1 with birth 2, death 1: p1 = 2 p0 -> p = [1/3, 2/3].
        let p = stationary_distribution(&[2.0], &[1.0]);
        assert!((p[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((p[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_chain_is_uniform() {
        let p = stationary_distribution(&[1.0; 9], &[1.0; 9]);
        for v in &p {
            assert!((v - 0.1).abs() < 1e-12);
        }
    }

    proptest! {
        /// Distributions are normalized and satisfy detailed balance.
        #[test]
        fn detailed_balance(
            rates in proptest::collection::vec((0.01f64..5.0, 0.01f64..5.0), 1..30)
        ) {
            let births: Vec<f64> = rates.iter().map(|(b, _)| *b).collect();
            let deaths: Vec<f64> = rates.iter().map(|(_, d)| *d).collect();
            let p = stationary_distribution(&births, &deaths);
            let sum: f64 = p.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            for i in 0..births.len() {
                let flow = p[i] * births[i] - p[i + 1] * deaths[i];
                prop_assert!(flow.abs() < 1e-9 * (1.0 + p[i]), "imbalance at {i}");
            }
        }
    }
}
