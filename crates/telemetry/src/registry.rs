//! The sharded metrics registry and its plain-data snapshots.

use crate::hist::{Hist64, HistSnapshot};
use crate::{Gauge, Metric, MetricCell, Stage};
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::AtomicU64;

/// One shard of cells — one per core/worker, so the hot path never
/// contends (atomics) or aliases (plain cells).
struct Shard<C> {
    counters: [C; Metric::COUNT],
    gauges: [C; Gauge::COUNT],
    stages: [Hist64<C>; Stage::COUNT],
}

impl<C: MetricCell> Default for Shard<C> {
    fn default() -> Self {
        Shard {
            counters: std::array::from_fn(|_| C::default()),
            gauges: std::array::from_fn(|_| C::default()),
            stages: std::array::from_fn(|_| Hist64::default()),
        }
    }
}

/// A sharded registry of counters, gauges and stage histograms.
///
/// All recording methods take `&self`: cells are interior-mutable, so a
/// component can hold the registry by value and still record from deep
/// inside its call tree.
pub struct Registry<C> {
    shards: Vec<Shard<C>>,
}

/// Plain (non-atomic) registry for single-threaded-driven components:
/// the kernel, the NIC model, the arena, and the whole sim driver.
pub type PlainRegistry = Registry<Cell<u64>>;

/// Atomic registry shared across the live driver's worker threads.
pub type AtomicRegistry = Registry<AtomicU64>;

impl<C: MetricCell> Registry<C> {
    /// A registry with `nshards` shards (at least one).
    pub fn new(nshards: usize) -> Self {
        Registry {
            shards: (0..nshards.max(1)).map(|_| Shard::default()).collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Add `v` to a counter: one bounds check and one add.
    #[inline]
    pub fn add(&self, shard: usize, m: Metric, v: u64) {
        self.shards[shard].counters[m.idx()].add(v);
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&self, shard: usize, m: Metric) {
        self.add(shard, m, 1);
    }

    /// Read a counter back (tests, conservation checks).
    pub fn counter(&self, shard: usize, m: Metric) -> u64 {
        self.shards[shard].counters[m.idx()].get()
    }

    /// Overwrite a gauge.
    #[inline]
    pub fn gauge_set(&self, shard: usize, g: Gauge, v: u64) {
        self.shards[shard].gauges[g.idx()].set(v);
    }

    /// Read a gauge.
    pub fn gauge(&self, shard: usize, g: Gauge) -> u64 {
        self.shards[shard].gauges[g.idx()].get()
    }

    /// All gauge values of one shard, in [`Gauge::ALL`] order (the row
    /// layout the [`crate::Sampler`] stores).
    pub fn gauge_row(&self, shard: usize) -> [u64; Gauge::COUNT] {
        std::array::from_fn(|i| self.shards[shard].gauges[i].get())
    }

    /// Record one observation into a stage histogram.
    #[inline]
    pub fn record_stage(&self, shard: usize, stage: Stage, v: u64) {
        self.shards[shard].stages[stage.idx()].record(v);
    }

    /// Copy the full registry state out as plain data.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            shards: self
                .shards
                .iter()
                .map(|s| ShardSnapshot {
                    counters: std::array::from_fn(|i| s.counters[i].get()),
                    gauges: std::array::from_fn(|i| s.gauges[i].get()),
                    stages: std::array::from_fn(|i| s.stages[i].snapshot()),
                })
                .collect(),
        }
    }
}

impl<C> fmt::Debug for Registry<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Registry({} shards)", self.shards.len())
    }
}

/// Plain-data state of one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Counter values in [`Metric::ALL`] order.
    pub counters: [u64; Metric::COUNT],
    /// Gauge values in [`Gauge::ALL`] order.
    pub gauges: [u64; Gauge::COUNT],
    /// Stage histograms in [`Stage::ALL`] order.
    pub stages: [HistSnapshot; Stage::COUNT],
}

impl Default for ShardSnapshot {
    fn default() -> Self {
        ShardSnapshot {
            counters: [0; Metric::COUNT],
            gauges: [0; Gauge::COUNT],
            stages: std::array::from_fn(|_| HistSnapshot::default()),
        }
    }
}

/// Plain-data state of a whole registry — what exporters serialize,
/// tests compare, and drivers merge (kernel + NIC + arena registries
/// combine into one capture-wide snapshot).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Per-shard state.
    pub shards: Vec<ShardSnapshot>,
}

impl Snapshot {
    /// An all-zero snapshot with `nshards` shards.
    pub fn empty(nshards: usize) -> Self {
        Snapshot {
            shards: (0..nshards.max(1))
                .map(|_| ShardSnapshot::default())
                .collect(),
        }
    }

    /// A counter summed across all shards.
    pub fn total(&self, m: Metric) -> u64 {
        self.shards.iter().map(|s| s.counters[m.idx()]).sum()
    }

    /// One shard's counter.
    pub fn counter(&self, shard: usize, m: Metric) -> u64 {
        self.shards[shard].counters[m.idx()]
    }

    /// One shard's gauge.
    pub fn gauge(&self, shard: usize, g: Gauge) -> u64 {
        self.shards[shard].gauges[g.idx()]
    }

    /// Maximum of a gauge across shards.
    pub fn gauge_max(&self, g: Gauge) -> u64 {
        self.shards
            .iter()
            .map(|s| s.gauges[g.idx()])
            .max()
            .unwrap_or(0)
    }

    /// A stage histogram merged across all shards.
    pub fn stage(&self, stage: Stage) -> HistSnapshot {
        let mut out = HistSnapshot::default();
        for s in &self.shards {
            out.merge(&s.stages[stage.idx()]);
        }
        out
    }

    /// Accumulate another snapshot element-wise. Shard counts may differ
    /// (a single-shard arena registry merges into a per-core kernel one);
    /// the result has `max` of the two shard counts, and counters,
    /// gauges and histograms all add. Merged registries record disjoint
    /// metric sets, so adding gauges is exact too.
    pub fn merge(&mut self, other: &Snapshot) {
        if other.shards.len() > self.shards.len() {
            self.shards
                .resize_with(other.shards.len(), ShardSnapshot::default);
        }
        for (dst, src) in self.shards.iter_mut().zip(other.shards.iter()) {
            for (a, b) in dst.counters.iter_mut().zip(src.counters.iter()) {
                *a += b;
            }
            for (a, b) in dst.gauges.iter_mut().zip(src.gauges.iter()) {
                *a += b;
            }
            for (a, b) in dst.stages.iter_mut().zip(src.stages.iter()) {
                a.merge(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_snapshot_total() {
        let r = PlainRegistry::new(4);
        r.inc(0, Metric::WirePackets);
        r.add(3, Metric::WirePackets, 9);
        r.gauge_set(1, Gauge::GovernorLevel, 2);
        r.record_stage(2, Stage::Kernel, 300);
        let s = r.snapshot();
        assert_eq!(s.total(Metric::WirePackets), 10);
        assert_eq!(s.counter(0, Metric::WirePackets), 1);
        assert_eq!(s.gauge(1, Gauge::GovernorLevel), 2);
        assert_eq!(s.gauge_max(Gauge::GovernorLevel), 2);
        assert_eq!(s.stage(Stage::Kernel).count(), 1);
        assert_eq!(s.stage(Stage::Nic).count(), 0);
    }

    #[test]
    fn atomic_registry_is_shared_across_threads() {
        let r = std::sync::Arc::new(AtomicRegistry::new(2));
        std::thread::scope(|sc| {
            for w in 0..2 {
                let r = r.clone();
                sc.spawn(move || {
                    for _ in 0..1000 {
                        r.inc(w, Metric::WorkerEventsHandled);
                        r.record_stage(w, Stage::Worker, 17);
                    }
                });
            }
        });
        let s = r.snapshot();
        assert_eq!(s.total(Metric::WorkerEventsHandled), 2000);
        assert_eq!(s.stage(Stage::Worker).count(), 2000);
    }

    #[test]
    fn merge_pads_shards_and_adds() {
        let a = PlainRegistry::new(1);
        a.add(0, Metric::ArenaAllocs, 5);
        let b = PlainRegistry::new(3);
        b.add(2, Metric::KernelHashProbes, 7);
        b.record_stage(1, Stage::Memory, 64);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.shards.len(), 3);
        assert_eq!(s.total(Metric::ArenaAllocs), 5);
        assert_eq!(s.counter(2, Metric::KernelHashProbes), 7);
        assert_eq!(s.stage(Stage::Memory).count(), 1);
    }
}
