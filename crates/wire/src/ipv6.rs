//! IPv6 packet view and header emission (fixed header only; extension
//! headers are treated as opaque upper-layer protocols, which is how the
//! monitoring stacks in this workspace handle them).

use crate::{Result, WireError};

/// A read-only view over an IPv6 packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv6Packet<'a> {
    buf: &'a [u8],
}

impl<'a> Ipv6Packet<'a> {
    /// Fixed IPv6 header length.
    pub const HEADER_LEN: usize = 40;

    /// Wrap `buf`, validating version and length fields.
    pub fn new_checked(buf: &'a [u8]) -> Result<Self> {
        if buf.len() < Self::HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let p = Ipv6Packet { buf };
        if p.version() != 6 {
            return Err(WireError::BadVersion);
        }
        if Self::HEADER_LEN + p.payload_len() as usize > buf.len() {
            return Err(WireError::BadLength);
        }
        Ok(p)
    }

    /// IP version (always 6 after `new_checked`).
    pub fn version(&self) -> u8 {
        self.buf[0] >> 4
    }

    /// Traffic class.
    pub fn traffic_class(&self) -> u8 {
        (self.buf[0] << 4) | (self.buf[1] >> 4)
    }

    /// Flow label.
    pub fn flow_label(&self) -> u32 {
        (u32::from(self.buf[1] & 0x0F) << 16)
            | (u32::from(self.buf[2]) << 8)
            | u32::from(self.buf[3])
    }

    /// Payload length (everything after the fixed header).
    pub fn payload_len(&self) -> u16 {
        u16::from_be_bytes([self.buf[4], self.buf[5]])
    }

    /// Next-header protocol number.
    pub fn next_header(&self) -> u8 {
        self.buf[6]
    }

    /// Hop limit.
    pub fn hop_limit(&self) -> u8 {
        self.buf[7]
    }

    /// Source address.
    pub fn src_addr(&self) -> [u8; 16] {
        let mut a = [0u8; 16];
        a.copy_from_slice(&self.buf[8..24]);
        a
    }

    /// Destination address.
    pub fn dst_addr(&self) -> [u8; 16] {
        let mut a = [0u8; 16];
        a.copy_from_slice(&self.buf[24..40]);
        a
    }

    /// The upper-layer payload.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[Self::HEADER_LEN..Self::HEADER_LEN + self.payload_len() as usize]
    }
}

/// Field bundle for emitting an IPv6 fixed header.
#[derive(Debug, Clone, Copy)]
pub struct Ipv6Header {
    /// Source address.
    pub src: [u8; 16],
    /// Destination address.
    pub dst: [u8; 16],
    /// Next-header protocol number.
    pub next_header: u8,
    /// Payload length in bytes.
    pub payload_len: u16,
    /// Hop limit.
    pub hop_limit: u8,
}

/// Emit a 40-byte IPv6 fixed header.
pub fn emit_header(buf: &mut [u8], h: &Ipv6Header) {
    buf[0] = 0x60;
    buf[1] = 0;
    buf[2] = 0;
    buf[3] = 0;
    buf[4..6].copy_from_slice(&h.payload_len.to_be_bytes());
    buf[6] = h.next_header;
    buf[7] = h.hop_limit;
    buf[8..24].copy_from_slice(&h.src);
    buf[24..40].copy_from_slice(&h.dst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_parse_roundtrip() {
        let mut buf = vec![0u8; 48];
        let src = [1u8; 16];
        let dst = [2u8; 16];
        emit_header(
            &mut buf,
            &Ipv6Header {
                src,
                dst,
                next_header: 17,
                payload_len: 8,
                hop_limit: 64,
            },
        );
        let p = Ipv6Packet::new_checked(&buf).unwrap();
        assert_eq!(p.version(), 6);
        assert_eq!(p.next_header(), 17);
        assert_eq!(p.payload_len(), 8);
        assert_eq!(p.hop_limit(), 64);
        assert_eq!(p.src_addr(), src);
        assert_eq!(p.dst_addr(), dst);
        assert_eq!(p.payload().len(), 8);
    }

    #[test]
    fn wrong_version_rejected() {
        let buf = [0x40u8; 40];
        assert_eq!(Ipv6Packet::new_checked(&buf), Err(WireError::BadVersion));
    }

    #[test]
    fn payload_len_beyond_buffer_rejected() {
        let mut buf = vec![0u8; 40];
        buf[0] = 0x60;
        buf[5] = 100;
        assert_eq!(Ipv6Packet::new_checked(&buf), Err(WireError::BadLength));
    }

    #[test]
    fn traffic_class_and_flow_label() {
        let mut buf = vec![0u8; 40];
        buf[0] = 0x6A;
        buf[1] = 0xB3;
        buf[2] = 0x45;
        buf[3] = 0x67;
        let p = Ipv6Packet::new_checked(&buf).unwrap();
        assert_eq!(p.traffic_class(), 0xAB);
        assert_eq!(p.flow_label(), 0x34567);
    }
}
