#![warn(missing_docs)]

//! # scap-baseline
//!
//! The comparison stacks of the paper's evaluation, faithfully
//! structured:
//!
//! * [`ring`] — a PF_PACKET-style shared ring: the kernel copies every
//!   captured frame (up to the snap length) into one big memory-mapped
//!   buffer; the user application consumes from it. This is the capture
//!   substrate under Libpcap on the paper's Linux 2.6.32 sensor.
//! * [`stack`] — a user-level monitoring stack on top of the ring,
//!   configurable into the three baselines:
//!   [`stack::UserStackConfig::libnids`] (user-level TCP reassembly that
//!   requires an observed handshake, Linux-stack policy, static flow
//!   limit), [`stack::UserStackConfig::stream5`] (Snort's target-based
//!   reassembler, midstream pickup allowed, optional §6.6 cutoff patch),
//!   and [`stack::UserStackConfig::yaf`] (flow export from a 96-byte
//!   snap length, no reassembly).
//! * [`apps`] — the same applications the Scap stack runs (flow export,
//!   stream touch, pattern matching) so every comparison holds the
//!   application constant and varies only the capture architecture.
//!
//! The structural difference the paper measures is visible right in the
//! types: the baselines copy each packet into the shared ring (kernel),
//! then copy payload *again* into per-stream buffers (user), interleaved
//! across all concurrent flows; Scap copies payload once, in the kernel,
//! into stream-local chunks.

pub mod apps;
pub mod ring;
pub mod stack;

pub use apps::{BaselineApp, FlowExportApp, PatternScanApp, TouchApp};
pub use ring::PacketRing;
pub use stack::{UserStack, UserStackConfig};
