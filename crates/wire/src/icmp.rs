//! ICMP message view (enough for the traffic generator's background noise).

use crate::{Result, WireError};

/// A read-only view over an ICMP message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcmpPacket<'a> {
    buf: &'a [u8],
}

impl<'a> IcmpPacket<'a> {
    /// ICMP header length.
    pub const HEADER_LEN: usize = 8;

    /// Echo request type.
    pub const ECHO_REQUEST: u8 = 8;
    /// Echo reply type.
    pub const ECHO_REPLY: u8 = 0;
    /// Destination unreachable type.
    pub const DEST_UNREACHABLE: u8 = 3;

    /// Wrap `buf`, checking the minimum header is present.
    pub fn new_checked(buf: &'a [u8]) -> Result<Self> {
        if buf.len() < Self::HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(IcmpPacket { buf })
    }

    /// Message type.
    pub fn msg_type(&self) -> u8 {
        self.buf[0]
    }

    /// Message code.
    pub fn code(&self) -> u8 {
        self.buf[1]
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// Identifier (echo messages).
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.buf[4], self.buf[5]])
    }

    /// Sequence number (echo messages).
    pub fn seq(&self) -> u16 {
        u16::from_be_bytes([self.buf[6], self.buf[7]])
    }

    /// Message payload.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[Self::HEADER_LEN..]
    }
}

/// Emit an 8-byte ICMP echo header with correct checksum over `payload`.
pub fn emit_echo(buf: &mut [u8], msg_type: u8, ident: u16, seq: u16, payload: &[u8]) {
    buf[0] = msg_type;
    buf[1] = 0;
    buf[2] = 0;
    buf[3] = 0;
    buf[4..6].copy_from_slice(&ident.to_be_bytes());
    buf[6..8].copy_from_slice(&seq.to_be_bytes());
    let mut c = crate::checksum::Checksum::new();
    c.push(&buf[..8]);
    c.push(payload);
    let sum = c.finish();
    buf[2..4].copy_from_slice(&sum.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let payload = b"ping";
        let mut buf = vec![0u8; 8 + payload.len()];
        buf[8..].copy_from_slice(payload);
        let (hdr, body) = buf.split_at_mut(8);
        emit_echo(hdr, IcmpPacket::ECHO_REQUEST, 42, 7, body);
        let p = IcmpPacket::new_checked(&buf).unwrap();
        assert_eq!(p.msg_type(), IcmpPacket::ECHO_REQUEST);
        assert_eq!(p.ident(), 42);
        assert_eq!(p.seq(), 7);
        assert_eq!(p.payload(), payload);
        // Whole message checksums to zero when the checksum is correct.
        assert_eq!(crate::checksum::checksum(&buf), 0);
    }

    #[test]
    fn short_buffer_rejected() {
        assert_eq!(
            IcmpPacket::new_checked(&[0u8; 7]),
            Err(WireError::Truncated)
        );
    }
}
