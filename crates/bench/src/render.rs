//! Shared terminal-rendering helpers for the live dashboards.
//!
//! `scaptop` grew several panels (per-queue rates, the scapd tenant
//! view, the shard-fleet view, and the pulse latency panel) that all
//! need the same primitives: permille formatting, occupancy bars,
//! rate math over a virtual-time window, sparklines over a bounded
//! history, and the frame protocol (ANSI repaint on a TTY, sequential
//! frames with a `----` separator on a pipe, optional wall-clock
//! pacing). Keeping them here means a new panel cannot drift from the
//! others' formatting.

use std::io::{IsTerminal, Write};

/// Render a permille gauge (0..=1000) as a percentage, e.g. `427` →
/// `"42.7%"`.
pub fn permille(v: u64) -> String {
    format!("{}.{}%", v / 10, v % 10)
}

/// A 10-cell occupancy bar for a permille gauge, e.g. `[####......]`
/// interior for 40%.
pub fn bar(permille: u64) -> String {
    let filled = (permille.min(1000) / 100) as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(10 - filled))
}

/// Events per second over a virtual-time window; 0 when the window is
/// empty (first frame).
pub fn rate_per_sec(delta: u64, dt_s: f64) -> f64 {
    if dt_s > 0.0 {
        delta as f64 / dt_s
    } else {
        0.0
    }
}

/// Megabits per second over a virtual-time window.
pub fn mbit_per_sec(delta_bytes: u64, dt_s: f64) -> f64 {
    rate_per_sec(delta_bytes, dt_s) * 8.0 / 1e6
}

/// A one-line sparkline over a value history, scaled to the max seen.
///
/// Uses a pure-ASCII ramp so pipes, CI logs, and narrow terminals all
/// render it identically. An empty history renders as an empty string.
pub fn sparkline(vals: &[u64]) -> String {
    const RAMP: [char; 8] = ['_', '.', ':', '-', '=', '+', '*', '#'];
    let max = vals.iter().copied().max().unwrap_or(0);
    vals.iter()
        .map(|&v| {
            let cell = (v * (RAMP.len() as u64 - 1)).checked_div(max).unwrap_or(0);
            RAMP[cell as usize]
        })
        .collect()
}

/// One dashboard frame: accumulates text, then repaints in place on a
/// TTY or appends a `----`-separated frame on a pipe, with optional
/// wall-clock pacing between frames.
pub struct Frame {
    ansi: bool,
    delay_ms: u64,
    buf: String,
}

impl Frame {
    /// A frame writer for stdout; ANSI repaint iff stdout is a TTY.
    pub fn new(delay_ms: u64) -> Self {
        Frame {
            ansi: std::io::stdout().is_terminal(),
            delay_ms,
            buf: String::new(),
        }
    }

    /// Start a frame: clears the accumulated buffer and, on a TTY,
    /// queues the clear-screen + home escape so the frame repaints in
    /// place. Returns the buffer to format the frame body into.
    pub fn begin(&mut self) -> &mut String {
        self.buf.clear();
        if self.ansi {
            self.buf.push_str("\x1b[2J\x1b[H");
        }
        &mut self.buf
    }

    /// Flush the accumulated frame to stdout (with the pipe-mode
    /// separator when not on a TTY) and apply the inter-frame delay.
    pub fn flush(&mut self) {
        let mut w = std::io::stdout().lock();
        let _ = w.write_all(self.buf.as_bytes());
        if !self.ansi {
            let _ = w.write_all(b"----\n");
        }
        let _ = w.flush();
        if self.delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.delay_ms));
        }
    }
}

/// Per-stage p99 history feeding the latency panel's sparklines.
///
/// Bounded to the last [`LatencyHistory::WINDOW`] frames per stage so a
/// long capture cannot grow the dashboard's memory.
#[derive(Default)]
pub struct LatencyHistory {
    /// `series[stage_idx]` = recent p99 samples, oldest first.
    series: Vec<Vec<u64>>,
}

impl LatencyHistory {
    /// Frames of history a sparkline spans.
    pub const WINDOW: usize = 32;

    /// Record this frame's p99 for a stage.
    pub fn push(&mut self, stage_idx: usize, p99_ns: u64) {
        if self.series.len() <= stage_idx {
            self.series.resize(stage_idx + 1, Vec::new());
        }
        let s = &mut self.series[stage_idx];
        s.push(p99_ns);
        if s.len() > Self::WINDOW {
            s.remove(0);
        }
    }

    /// The sparkline for a stage ("" when the stage never recorded).
    pub fn sparkline(&self, stage_idx: usize) -> String {
        self.series
            .get(stage_idx)
            .map(|s| sparkline(s))
            .unwrap_or_default()
    }
}

/// Append the per-stage pulse latency panel to a frame body: one row
/// per active stage with interpolated p50/p99/p999, the exemplar count,
/// and a sparkline of the p99 trend across recent frames.
pub fn latency_panel(
    out: &mut String,
    snap: &scap::telemetry::PulseSnapshot,
    history: &mut LatencyHistory,
) {
    use scap::telemetry::PulseStage;
    out.push_str(&format!(
        "\nlatency (pulse plane, ns)          count       p50       p99      p999  ex  p99 trend (last {})\n",
        LatencyHistory::WINDOW
    ));
    let mut any = false;
    for st in PulseStage::ALL {
        let (count, p50, p99, p999) = snap.summary(st);
        if count == 0 {
            continue;
        }
        any = true;
        history.push(st.idx(), p99);
        out.push_str(&format!(
            "  {:<22} {:>16} {:>9} {:>9} {:>9} {:>3}  {}\n",
            st.name(),
            count,
            p50,
            p99,
            p999,
            snap.stage_exemplars(st).len(),
            history.sparkline(st.idx()),
        ));
    }
    if !any {
        out.push_str("  no stage latencies recorded yet\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permille_and_bar_format() {
        assert_eq!(permille(427), "42.7%");
        assert_eq!(bar(400), "####......");
        assert_eq!(bar(5000), "##########");
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "__");
        let s = sparkline(&[1, 4, 8]);
        assert_eq!(s.len(), 3);
        assert!(s.ends_with('#'), "max value renders the top ramp cell");
    }

    #[test]
    fn latency_history_is_bounded() {
        let mut h = LatencyHistory::default();
        for i in 0..(LatencyHistory::WINDOW as u64 + 10) {
            h.push(2, i);
        }
        assert_eq!(h.sparkline(2).chars().count(), LatencyHistory::WINDOW);
        assert_eq!(h.sparkline(0), "");
    }

    #[test]
    fn latency_panel_renders_active_stages() {
        use scap::telemetry::{Pulse, PulseStage};
        let mut p = Pulse::new(990, 8);
        for i in 0..100 {
            p.record(PulseStage::Delivery, 1000 + i * 10);
        }
        let snap = p.snapshot();
        let mut hist = LatencyHistory::default();
        let mut out = String::new();
        latency_panel(&mut out, &snap, &mut hist);
        assert!(out.contains("delivery"));
        assert!(!out.contains("no stage latencies"));
    }
}
