#![warn(missing_docs)]

//! # scap-faults
//!
//! Deterministic, seeded fault injection for the Scap pipeline.
//!
//! The paper's headline claim is *graceful degradation under overload*
//! (§2.2, §6.5): Prioritized Packet Loss, per-stream cutoffs, and FDIR
//! early-drop keep the system useful when the CPU or memory budget is
//! exceeded. Exercising that claim requires faults, and production
//! capture boxes see a characteristic set of them:
//!
//! * **wire-level** — corrupted, truncated, and duplicated frames;
//!   timestamps that jump, repeat, or go backwards (broken taps, buggy
//!   aggregation switches);
//! * **hardware-offload** — flow-director filter installs that fail
//!   transiently or take milliseconds (MMIO/firmware contention), RX
//!   descriptor rings that stall while the host is descheduled;
//! * **resource-level** — memory pressure spikes from co-located work;
//! * **software** — an analysis worker that wedges or panics.
//!
//! A [`FaultPlan`] describes a seeded schedule of all of the above.
//! Each pipeline seam pulls a per-layer *injector* from the plan
//! ([`FrameInjector`], [`FdirInjector`], [`RingInjector`],
//! [`ArenaInjector`], plus the [`WorkerFault`] list consumed by the
//! live driver). Every injector derives its stream from the plan seed
//! and a fixed per-layer salt, so the same seed always produces the
//! same fault sequence regardless of which layers are enabled —
//! experiment output is byte-identical across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Wire-level fault rates applied at the trace boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FrameFaultConfig {
    /// Probability a frame gets random bytes flipped.
    pub corrupt_prob: f64,
    /// Probability a frame is truncated at a random byte.
    pub truncate_prob: f64,
    /// Probability a frame is delivered twice.
    pub duplicate_prob: f64,
    /// Probability a timestamp jumps (forward or backward) by up to
    /// [`FrameFaultConfig::ts_skew_ns`].
    pub ts_skew_prob: f64,
    /// Maximum magnitude of a timestamp jump.
    pub ts_skew_ns: u64,
    /// Probability a timestamp exactly repeats its predecessor.
    pub ts_repeat_prob: f64,
    /// Probability a frame is held back one slot and swapped with its
    /// successor (bounded reordering).
    pub reorder_prob: f64,
}

/// Flow-director install faults (transient failures and latency spikes).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FdirFaultConfig {
    /// Probability an install attempt fails with a transient error.
    pub transient_fail_prob: f64,
    /// Upper bound on consecutive transient failures, so a bounded
    /// retry policy is guaranteed to eventually succeed.
    pub max_consecutive_failures: u32,
    /// Probability an install succeeds but takes abnormally long.
    pub latency_spike_prob: f64,
    /// Duration of a latency spike.
    pub latency_spike_ns: u64,
}

/// RX descriptor-ring stall windows (host descheduled, PCIe hiccups).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RingFaultConfig {
    /// Number of stall windows over the run.
    pub stall_count: u32,
    /// Length of each stall window.
    pub stall_ns: u64,
    /// Grid spacing between candidate window starts; each window is
    /// placed pseudo-randomly within its grid cell.
    pub period_ns: u64,
}

/// Arena-exhaustion spikes (co-located memory pressure).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ArenaFaultConfig {
    /// Number of pressure spikes over the run.
    pub spike_count: u32,
    /// Fraction of the arena budget held hostage during a spike.
    pub spike_fraction: f64,
    /// Length of each spike.
    pub spike_ns: u64,
    /// Grid spacing between candidate spike starts.
    pub period_ns: u64,
}

/// Archive (`scap-store`) segment-append faults: torn writes and
/// mid-write kills, exercising the store's torn-tail recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StoreFaultConfig {
    /// Probability a segment append is torn: only a prefix of the frame
    /// reaches disk before the writer dies.
    pub torn_append_prob: f64,
    /// Kill the writer mid-write after this many successful appends
    /// (0 = never): the frame lands in the segment but its index record
    /// is never written.
    pub kill_after_appends: u64,
}

/// Flight-recorder ring faults: force wrap-around so overwrite
/// accounting (`FlightDropped`) is exercised — tracing must never
/// silently lose its own loss.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlightFaultConfig {
    /// Shrink every per-core flight ring to this many slots
    /// (0 = leave the configured capacity alone).
    pub shrink_ring_to: usize,
}

impl FlightFaultConfig {
    /// The ring capacity to use given the configured one.
    pub fn effective_cap(&self, configured: usize) -> usize {
        if self.shrink_ring_to > 0 {
            self.shrink_ring_to
        } else {
            configured
        }
    }
}

/// What a scheduled worker fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFaultKind {
    /// The worker thread panics mid-event.
    Panic,
    /// The worker wedges (sleeps) for this many nanoseconds.
    Stall(u64),
}

/// One scheduled fault in a live-capture worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFault {
    /// Index of the worker thread the fault targets.
    pub worker: usize,
    /// The fault fires when the worker has processed this many events.
    pub after_events: u64,
    /// What happens when it fires.
    pub kind: WorkerFaultKind,
}

/// What a scheduled tenant fault does (multi-tenant `scapd` captures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantFaultKind {
    /// The tenant's consumer stops draining its delivery queue after
    /// this many delivered events (a stalled client).
    StallConsumer {
        /// Deliveries the tenant consumes normally before wedging.
        after_events: u64,
    },
    /// The tenant attaches with a quota-busting configuration: an
    /// unlimited cutoff and the largest representable share request.
    QuotaBuster,
    /// The tenant detaches abruptly mid-stream after this many
    /// delivered events (no drain, no goodbye).
    Disconnect {
        /// Deliveries before the tenant vanishes.
        after_events: u64,
    },
    /// The tenant detaches and immediately re-attaches this many times
    /// in a row (attach/detach storm against admission control).
    AttachStorm {
        /// Detach/re-attach cycles to perform.
        cycles: u32,
    },
}

/// One scheduled fault against a tenant of a shared capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantFault {
    /// Index of the tenant (attach order) the fault targets.
    pub tenant: usize,
    /// What happens.
    pub kind: TenantFaultKind,
}

/// What a scheduled shard fault does (supervised `ShardFleet` captures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFaultKind {
    /// The shard engine dies outright (crash): the supervisor must
    /// detect the death, back off, and respawn from a checkpoint.
    Kill,
    /// The shard wedges for this many nanoseconds: it stops beating its
    /// heartbeat lease while work keeps arriving, forcing a deadline
    /// takedown.
    StallHeartbeat(u64),
    /// The shard's *latest* checkpoint is corrupted in place, so the
    /// next respawn must fall back to the previous image (or cold-start)
    /// and attribute the larger blackout.
    CorruptCheckpoint,
}

/// One scheduled fault against a supervised capture shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFault {
    /// Index of the shard the fault targets.
    pub shard: usize,
    /// The fault fires when the shard has been offered this many
    /// packets (shard-local ordinal, counted across incarnations).
    pub at_packet: u64,
    /// What happens when it fires.
    pub kind: ShardFaultKind,
}

/// A complete seeded fault schedule for one capture run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Master seed; all per-layer streams derive from it.
    pub seed: u64,
    /// Wire-level faults at the trace boundary.
    pub frames: FrameFaultConfig,
    /// Flow-director install faults.
    pub fdir: FdirFaultConfig,
    /// RX ring stall windows.
    pub ring: RingFaultConfig,
    /// Arena pressure spikes.
    pub arena: ArenaFaultConfig,
    /// Archive segment-append faults (`scap-store`).
    pub store: StoreFaultConfig,
    /// Flight-recorder ring faults (forced wrap-around).
    pub flight: FlightFaultConfig,
    /// Scheduled worker stalls/panics (live driver only).
    pub workers: Vec<WorkerFault>,
    /// Scheduled tenant misbehaviour (multi-tenant `scapd` captures).
    pub tenants: Vec<TenantFault>,
    /// Scheduled shard kills/stalls/corruptions (supervised
    /// `ShardFleet` captures).
    pub shards: Vec<ShardFault>,
    /// Kill the whole capture process after this many packets have been
    /// admitted at the NIC (live driver only; `None` = never). The
    /// capture stops dead — no drain, no final events — exactly like a
    /// crash, exercising checkpoint/restore.
    pub kill_at_packet: Option<u64>,
}

/// Per-layer salts keep the fault streams independent: enabling or
/// disabling one layer never perturbs another layer's schedule.
const SALT_FRAMES: u64 = 0x66726d73; // "frms"
const SALT_FDIR: u64 = 0x66646972; // "fdir"
const SALT_RING: u64 = 0x72696e67; // "ring"
const SALT_ARENA: u64 = 0x6172656e; // "aren"
const SALT_STORE: u64 = 0x73746f72; // "stor"
const SALT_TENANT: u64 = 0x746e6e74; // "tnnt"
const SALT_SHARD: u64 = 0x73687264; // "shrd"

impl FaultPlan {
    /// A quiet plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// The canonical "storm" preset used by the chaos test and the
    /// `--exp faults` experiment: every fault class enabled at rates
    /// high enough to force retries, fallbacks, governor escalation,
    /// and (in the live driver) one worker panic plus one stall.
    pub fn storm(seed: u64) -> Self {
        FaultPlan {
            seed,
            frames: FrameFaultConfig {
                corrupt_prob: 0.05,
                truncate_prob: 0.03,
                duplicate_prob: 0.02,
                ts_skew_prob: 0.02,
                ts_skew_ns: 5_000_000,
                ts_repeat_prob: 0.02,
                reorder_prob: 0.03,
            },
            fdir: FdirFaultConfig {
                transient_fail_prob: 0.35,
                max_consecutive_failures: 6,
                latency_spike_prob: 0.10,
                latency_spike_ns: 2_000_000,
            },
            ring: RingFaultConfig {
                stall_count: 3,
                stall_ns: 40_000_000,
                period_ns: 400_000_000,
            },
            arena: ArenaFaultConfig {
                spike_count: 3,
                spike_fraction: 0.70,
                spike_ns: 150_000_000,
                period_ns: 500_000_000,
            },
            // The storm leaves the archive layer quiet: store faults are
            // opted into per test/experiment so the live chaos runs stay
            // byte-stable across plans.
            store: StoreFaultConfig::default(),
            flight: FlightFaultConfig::default(),
            workers: vec![
                WorkerFault {
                    worker: 0,
                    after_events: 40,
                    kind: WorkerFaultKind::Panic,
                },
                WorkerFault {
                    worker: 1,
                    after_events: 60,
                    kind: WorkerFaultKind::Stall(80_000_000),
                },
            ],
            tenants: Vec::new(),
            shards: Vec::new(),
            kill_at_packet: None,
        }
    }

    /// The canonical hostile-tenant preset used by the isolation chaos
    /// test and `--exp tenants`: one tenant (the *hostile* one, chosen
    /// deterministically from the seed) stalls its consumer early,
    /// attaches with a quota-busting configuration, and later
    /// disconnects mid-stream, while a second scheduled fault hammers
    /// admission control with an attach/detach storm. All offsets are
    /// derived from `seed ^ SALT_TENANT`, so the schedule is a pure
    /// function of the seed and independent of every other fault layer.
    pub fn tenant_storm(seed: u64, ntenants: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ SALT_TENANT);
        let n = ntenants.max(1);
        let hostile = rng.random_range(0..n);
        let stall_after = rng.random_range(8..64);
        let disconnect_after = stall_after + rng.random_range(200..500);
        let storm_cycles = rng.random_range(3..8);
        FaultPlan {
            seed,
            tenants: vec![
                TenantFault {
                    tenant: hostile,
                    kind: TenantFaultKind::QuotaBuster,
                },
                TenantFault {
                    tenant: hostile,
                    kind: TenantFaultKind::StallConsumer {
                        after_events: stall_after,
                    },
                },
                TenantFault {
                    tenant: hostile,
                    kind: TenantFaultKind::Disconnect {
                        after_events: disconnect_after,
                    },
                },
                TenantFault {
                    tenant: (hostile + 1) % n,
                    kind: TenantFaultKind::AttachStorm {
                        cycles: storm_cycles,
                    },
                },
            ],
            ..Default::default()
        }
    }

    /// The canonical shard-storm preset used by the sharding chaos test
    /// and `--exp soak`: every shard of an `nshards`-wide fleet is hit
    /// at least once — kills, heartbeat stalls, and one checkpoint
    /// corruption — at seeded packet ordinals, so a run exercises the
    /// full lease/backoff/respawn/fallback state machine. All offsets
    /// derive from `seed ^ SALT_SHARD`; the schedule is a pure function
    /// of `(seed, nshards)` and independent of every other fault layer.
    pub fn shard_storm(seed: u64, nshards: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ SALT_SHARD);
        let n = nshards.max(1);
        let mut shards = Vec::new();
        for shard in 0..n {
            let first = rng.random_range(400..1_200);
            shards.push(ShardFault {
                shard,
                at_packet: first,
                kind: ShardFaultKind::Kill,
            });
            // Every other shard also wedges later in the run, forcing a
            // lease-deadline takedown rather than a clean death.
            if shard % 2 == 1 {
                shards.push(ShardFault {
                    shard,
                    at_packet: first + rng.random_range(800..2_000),
                    kind: ShardFaultKind::StallHeartbeat(rng.random_range(5..20) * 1_000_000),
                });
            }
        }
        // One deterministically chosen shard has its latest checkpoint
        // corrupted before a follow-up kill, exercising the fallback to
        // the previous image.
        let victim = rng.random_range(0..n);
        let corrupt_at = rng.random_range(2_400..3_200);
        shards.push(ShardFault {
            shard: victim,
            at_packet: corrupt_at,
            kind: ShardFaultKind::CorruptCheckpoint,
        });
        shards.push(ShardFault {
            shard: victim,
            at_packet: corrupt_at + rng.random_range(50..200),
            kind: ShardFaultKind::Kill,
        });
        FaultPlan {
            seed,
            shards,
            ..Default::default()
        }
    }

    /// The scheduled faults for one shard index, in firing order.
    pub fn shard_faults(&self, shard: usize) -> Vec<ShardFault> {
        let mut v: Vec<ShardFault> = self
            .shards
            .iter()
            .copied()
            .filter(|f| f.shard == shard)
            .collect();
        v.sort_by_key(|f| f.at_packet);
        v
    }

    /// The scheduled faults for one tenant index, in schedule order.
    pub fn tenant_faults(&self, tenant: usize) -> Vec<TenantFault> {
        self.tenants
            .iter()
            .copied()
            .filter(|f| f.tenant == tenant)
            .collect()
    }

    /// Injector for the trace boundary.
    pub fn frame_injector(&self) -> FrameInjector {
        FrameInjector {
            rng: StdRng::seed_from_u64(self.seed ^ SALT_FRAMES),
            cfg: self.frames,
            last_ts: None,
            stats: FrameFaultStats::default(),
        }
    }

    /// Injector for flow-director installs.
    pub fn fdir_injector(&self) -> FdirInjector {
        FdirInjector {
            rng: StdRng::seed_from_u64(self.seed ^ SALT_FDIR),
            cfg: self.fdir,
            consecutive: 0,
        }
    }

    /// Injector for RX ring stalls.
    pub fn ring_injector(&self) -> RingInjector {
        RingInjector {
            windows: schedule_windows(
                self.seed ^ SALT_RING,
                self.ring.stall_count,
                self.ring.stall_ns,
                self.ring.period_ns,
            ),
            anchor: None,
            active: None,
            windows_seen: 0,
        }
    }

    /// Injector for archive segment appends.
    pub fn store_injector(&self) -> StoreInjector {
        StoreInjector {
            rng: StdRng::seed_from_u64(self.seed ^ SALT_STORE),
            cfg: self.store,
            appends: 0,
        }
    }

    /// Injector for arena pressure spikes.
    pub fn arena_injector(&self, budget: u64) -> ArenaInjector {
        ArenaInjector {
            windows: schedule_windows(
                self.seed ^ SALT_ARENA,
                self.arena.spike_count,
                self.arena.spike_ns,
                self.arena.period_ns,
            ),
            reserve: (budget as f64 * self.arena.spike_fraction) as u64,
            anchor: None,
            active: None,
            spikes_seen: 0,
        }
    }
}

/// Place `count` windows of length `len` on a `period` grid, each
/// offset pseudo-randomly within its cell. Returned as (start, end)
/// pairs relative to an anchor chosen at first observation.
fn schedule_windows(seed: u64, count: u32, len: u64, period: u64) -> Vec<(u64, u64)> {
    if count == 0 || len == 0 || period == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count as u64)
        .map(|i| {
            let slack = period.saturating_sub(len).max(1);
            let start = i * period + rng.random_range(0..slack);
            (start, start + len)
        })
        .collect()
}

/// Counters kept by [`FrameInjector`]; folded into `ResilienceStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameFaultStats {
    /// Frames with flipped bytes.
    pub corrupted: u64,
    /// Frames truncated.
    pub truncated: u64,
    /// Frames the caller was told to deliver twice.
    pub duplicated: u64,
    /// Timestamp anomalies introduced (skew + repeat).
    pub ts_anomalies: u64,
    /// Frames the caller was told to swap with their successor.
    pub reordered: u64,
}

/// What the trace boundary should do with the frame it just offered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameDirective {
    /// Deliver a second copy of this frame immediately after.
    pub duplicate: bool,
    /// Hold this frame one slot and emit it after the next frame.
    pub swap_with_next: bool,
}

/// Mutates frames and timestamps at the trace boundary.
#[derive(Debug, Clone)]
pub struct FrameInjector {
    rng: StdRng,
    cfg: FrameFaultConfig,
    last_ts: Option<u64>,
    stats: FrameFaultStats,
}

impl FrameInjector {
    /// Apply wire-level faults to one frame in place. The caller
    /// implements the returned directive (duplication/reordering),
    /// since only it owns the packet container type.
    pub fn apply(&mut self, ts_ns: &mut u64, frame: &mut Vec<u8>) -> FrameDirective {
        let cfg = self.cfg;
        let mut directive = FrameDirective::default();

        if !frame.is_empty() && self.rng.random_bool(cfg.corrupt_prob) {
            let flips = self.rng.random_range(1..=4usize).min(frame.len());
            for _ in 0..flips {
                let i = self.rng.random_range(0..frame.len());
                frame[i] ^= self.rng.random::<u8>() | 1;
            }
            self.stats.corrupted += 1;
        }
        if frame.len() > 1 && self.rng.random_bool(cfg.truncate_prob) {
            let keep = self.rng.random_range(1..frame.len());
            frame.truncate(keep);
            self.stats.truncated += 1;
        }
        if self.rng.random_bool(cfg.ts_skew_prob) && cfg.ts_skew_ns > 0 {
            let mag = self.rng.random_range(1..=cfg.ts_skew_ns);
            if self.rng.random::<bool>() {
                *ts_ns = ts_ns.saturating_add(mag);
            } else {
                *ts_ns = ts_ns.saturating_sub(mag);
            }
            self.stats.ts_anomalies += 1;
        } else if self.rng.random_bool(cfg.ts_repeat_prob) {
            if let Some(prev) = self.last_ts {
                *ts_ns = prev;
                self.stats.ts_anomalies += 1;
            }
        }
        if self.rng.random_bool(cfg.duplicate_prob) {
            directive.duplicate = true;
            self.stats.duplicated += 1;
        }
        if self.rng.random_bool(cfg.reorder_prob) {
            directive.swap_with_next = true;
            self.stats.reordered += 1;
        }
        self.last_ts = Some(*ts_ns);
        directive
    }

    /// Counters so far.
    pub fn stats(&self) -> FrameFaultStats {
        self.stats
    }
}

/// Outcome of consulting the FDIR injector for one install attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdirInstallFault {
    /// Install proceeds normally.
    None,
    /// Install fails transiently; retrying later may succeed.
    TransientFail,
    /// Install succeeds but takes this long.
    Latency(u64),
}

/// Decides the fate of each flow-director install attempt.
#[derive(Debug, Clone)]
pub struct FdirInjector {
    rng: StdRng,
    cfg: FdirFaultConfig,
    consecutive: u32,
}

impl FdirInjector {
    /// Consult the schedule for the next install attempt.
    pub fn on_install(&mut self) -> FdirInstallFault {
        if self.cfg.transient_fail_prob > 0.0
            && self.consecutive < self.cfg.max_consecutive_failures
            && self.rng.random_bool(self.cfg.transient_fail_prob)
        {
            self.consecutive += 1;
            return FdirInstallFault::TransientFail;
        }
        self.consecutive = 0;
        if self.cfg.latency_spike_prob > 0.0 && self.rng.random_bool(self.cfg.latency_spike_prob) {
            return FdirInstallFault::Latency(self.cfg.latency_spike_ns);
        }
        FdirInstallFault::None
    }
}

/// Tracks RX descriptor-ring stall windows against capture time.
#[derive(Debug, Clone)]
pub struct RingInjector {
    windows: Vec<(u64, u64)>,
    anchor: Option<u64>,
    active: Option<usize>,
    windows_seen: u64,
}

impl RingInjector {
    /// Is the ring stalled at `now_ns`? The first call anchors the
    /// schedule, so windows are relative to capture start.
    pub fn stalled(&mut self, now_ns: u64) -> bool {
        let anchor = *self.anchor.get_or_insert(now_ns);
        let t = now_ns.saturating_sub(anchor);
        let hit = self.windows.iter().position(|&(s, e)| t >= s && t < e);
        if let Some(i) = hit {
            if self.active != Some(i) {
                self.active = Some(i);
                self.windows_seen += 1;
            }
            true
        } else {
            self.active = None;
            false
        }
    }

    /// Number of distinct stall windows entered so far.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }
}

/// Tracks arena pressure-spike windows against capture time.
#[derive(Debug, Clone)]
pub struct ArenaInjector {
    windows: Vec<(u64, u64)>,
    reserve: u64,
    anchor: Option<u64>,
    active: Option<usize>,
    spikes_seen: u64,
}

impl ArenaInjector {
    /// Bytes of the arena budget held hostage at `now_ns` (0 outside
    /// spike windows). The first call anchors the schedule.
    pub fn reserved_at(&mut self, now_ns: u64) -> u64 {
        let anchor = *self.anchor.get_or_insert(now_ns);
        let t = now_ns.saturating_sub(anchor);
        let hit = self.windows.iter().position(|&(s, e)| t >= s && t < e);
        if let Some(i) = hit {
            if self.active != Some(i) {
                self.active = Some(i);
                self.spikes_seen += 1;
            }
            self.reserve
        } else {
            self.active = None;
            0
        }
    }

    /// Number of distinct spikes entered so far.
    pub fn spikes_seen(&self) -> u64 {
        self.spikes_seen
    }
}

/// Outcome of consulting the store injector for one segment append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// Append proceeds normally.
    None,
    /// Only a prefix of the frame reaches disk; the writer dies.
    TornAppend,
    /// The writer is killed after the frame lands but before the index
    /// record is written.
    Kill,
}

/// Decides the fate of each archive segment append.
#[derive(Debug, Clone)]
pub struct StoreInjector {
    rng: StdRng,
    cfg: StoreFaultConfig,
    appends: u64,
}

impl StoreInjector {
    /// Consult the schedule for the next append.
    pub fn on_append(&mut self) -> StoreFault {
        if self.cfg.kill_after_appends > 0 && self.appends >= self.cfg.kill_after_appends {
            return StoreFault::Kill;
        }
        if self.cfg.torn_append_prob > 0.0 && self.rng.random_bool(self.cfg.torn_append_prob) {
            return StoreFault::TornAppend;
        }
        self.appends += 1;
        StoreFault::None
    }

    /// Appends that completed cleanly so far.
    pub fn appends(&self) -> u64 {
        self.appends
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let plan = FaultPlan::storm(42);
        let mut a = plan.frame_injector();
        let mut b = plan.frame_injector();
        for i in 0..500u64 {
            let mut ta = i * 1000;
            let mut tb = i * 1000;
            let mut fa = vec![(i % 251) as u8; 64];
            let mut fb = fa.clone();
            assert_eq!(a.apply(&mut ta, &mut fa), b.apply(&mut tb, &mut fb));
            assert_eq!(ta, tb);
            assert_eq!(fa, fb);
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn tenant_storm_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::tenant_storm(42, 4);
        let b = FaultPlan::tenant_storm(42, 4);
        assert_eq!(a, b, "same seed must produce an identical schedule");
        let c = FaultPlan::tenant_storm(43, 4);
        assert_ne!(a.tenants, c.tenants, "different seeds should differ");
        // The hostile tenant gets the quota-buster, the stall, and the
        // disconnect; some other tenant gets the attach storm.
        let hostile = a.tenants[0].tenant;
        assert_eq!(a.tenant_faults(hostile).len(), 3);
        assert!(a
            .tenants
            .iter()
            .any(|f| matches!(f.kind, TenantFaultKind::AttachStorm { .. }) && f.tenant != hostile));
        // The tenant layer stays quiet in every other injector: the
        // schedule lives in its own salted stream.
        assert_eq!(a.frames, FrameFaultConfig::default());
        assert_eq!(a.kill_at_packet, None);
    }

    #[test]
    fn layers_are_independent() {
        // Disabling the frame layer must not change the FDIR stream.
        let full = FaultPlan::storm(7);
        let mut quiet_frames = FaultPlan::storm(7);
        quiet_frames.frames = FrameFaultConfig::default();
        let mut a = full.fdir_injector();
        let mut b = quiet_frames.fdir_injector();
        for _ in 0..200 {
            assert_eq!(a.on_install(), b.on_install());
        }
    }

    #[test]
    fn fdir_failures_are_bounded() {
        let plan = FaultPlan::storm(3);
        let mut inj = plan.fdir_injector();
        let mut consecutive = 0u32;
        for _ in 0..10_000 {
            match inj.on_install() {
                FdirInstallFault::TransientFail => {
                    consecutive += 1;
                    assert!(consecutive <= plan.fdir.max_consecutive_failures);
                }
                _ => consecutive = 0,
            }
        }
    }

    #[test]
    fn windows_anchor_at_first_observation() {
        let plan = FaultPlan::storm(9);
        let mut r = plan.ring_injector();
        // Probe a long span; all scheduled windows must be entered.
        let base = 5_000_000_000u64;
        for t in 0..3000u64 {
            r.stalled(base + t * 1_000_000);
        }
        assert_eq!(r.windows_seen(), plan.ring.stall_count as u64);
    }

    #[test]
    fn arena_spikes_reserve_budget() {
        let plan = FaultPlan::storm(11);
        let mut a = plan.arena_injector(1 << 20);
        let mut saw_zero = false;
        let mut saw_reserve = false;
        for t in 0..3000u64 {
            let r = a.reserved_at(t * 1_000_000);
            if r == 0 {
                saw_zero = true;
            } else {
                assert_eq!(
                    r,
                    (((1u64 << 20) as f64) * plan.arena.spike_fraction) as u64
                );
                saw_reserve = true;
            }
        }
        assert!(saw_zero && saw_reserve);
        assert_eq!(a.spikes_seen(), plan.arena.spike_count as u64);
    }

    #[test]
    fn store_injector_kills_after_configured_appends() {
        let mut plan = FaultPlan::new(5);
        plan.store = StoreFaultConfig {
            torn_append_prob: 0.0,
            kill_after_appends: 3,
        };
        let mut inj = plan.store_injector();
        assert_eq!(inj.on_append(), StoreFault::None);
        assert_eq!(inj.on_append(), StoreFault::None);
        assert_eq!(inj.on_append(), StoreFault::None);
        assert_eq!(inj.on_append(), StoreFault::Kill);
        assert_eq!(inj.appends(), 3);
    }

    #[test]
    fn store_injector_is_deterministic() {
        let mut plan = FaultPlan::new(6);
        plan.store = StoreFaultConfig {
            torn_append_prob: 0.2,
            kill_after_appends: 0,
        };
        let mut a = plan.store_injector();
        let mut b = plan.store_injector();
        let mut saw_torn = false;
        for _ in 0..200 {
            let fa = a.on_append();
            assert_eq!(fa, b.on_append());
            saw_torn |= fa == StoreFault::TornAppend;
        }
        assert!(saw_torn, "0.2 torn probability never fired in 200 draws");
    }

    #[test]
    fn quiet_plan_is_a_noop() {
        let plan = FaultPlan::new(1);
        let mut inj = plan.frame_injector();
        let mut ts = 123;
        let mut frame = vec![1, 2, 3, 4];
        let d = inj.apply(&mut ts, &mut frame);
        assert_eq!(ts, 123);
        assert_eq!(frame, vec![1, 2, 3, 4]);
        assert_eq!(d, FrameDirective::default());
        assert_eq!(plan.fdir_injector().on_install(), FdirInstallFault::None);
    }
}
