#![warn(missing_docs)]

//! # scap-fastpath
//!
//! Poll-mode kernel-bypass primitives: the batched building blocks of
//! Scap's fast dispatch path. A poll-mode driver pulls packets from the
//! NIC descriptor rings in bursts (DPDK-style, ~64 frames per pull) and
//! runs each burst through a pipeline of batched stages:
//!
//! ```text
//! pull burst ──► parse all ──► hash all (Toeplitz / sym_hash)
//!            ──► flow-table lookup ──► reassembly/cutoff ──► delivery
//! ```
//!
//! Batching amortizes the per-packet entry cost (ring doorbell, branch
//! and cache warm-up) over the whole burst, and hashing a burst up
//! front separates the pure arithmetic stage from the memory-bound
//! table-probe stage, so each stays in its own hot working set.
//!
//! This crate is deliberately a leaf: it knows about rings
//! ([`scap_nic::RxQueue`]), keys ([`scap_wire::FlowKey`]) and the
//! Toeplitz hasher ([`scap_nic::RssHasher`]) — not about the kernel,
//! arena, or event machinery. The `scap` core composes these
//! primitives into its `poll_burst` dispatch loop so both the classic
//! and fast paths share one set of processing and accounting funnels.

use scap_nic::{RssHasher, RxQueue};
use scap_wire::{Direction, FlowKey};

/// Default frames pulled per burst (the DPDK sweet spot: large enough
/// to amortize the pull, small enough to stay L1-resident).
pub const DEFAULT_BURST: usize = 64;

/// Pull up to `max` items from a descriptor ring into `out` (cleared
/// first). Returns the number pulled — `out.len()`.
///
/// A short read means the ring ran dry mid-burst; the fill ratio
/// (`pulled / max`) is the classic poll-mode load signal, tracked by
/// [`BurstStats`].
pub fn pull_burst<T>(ring: &mut RxQueue<T>, max: usize, out: &mut Vec<T>) -> usize {
    out.clear();
    while out.len() < max {
        match ring.pop() {
            Some(item) => out.push(item),
            None => break,
        }
    }
    out.len()
}

/// A canonicalized, pre-hashed flow key: the output of the batched
/// hash stage, ready for a prehashed flow-table probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashedKey {
    /// The canonical (direction-normalized) key.
    pub canon: FlowKey,
    /// Direction of the original key relative to `canon`.
    pub dir: Direction,
    /// `canon.sym_hash(seed)` — the flow table's hash function.
    pub hash: u64,
}

/// Canonicalize and hash one key with the flow table's `seed`.
#[inline]
pub fn hash_key(seed: u64, key: &FlowKey) -> HashedKey {
    let (canon, dir) = key.canonical();
    HashedKey {
        canon,
        dir,
        hash: canon.sym_hash(seed),
    }
}

/// The batched hash stage: canonicalize + hash every key of a burst in
/// one arithmetic-only sweep (no table memory is touched). `None`
/// entries (unparseable or keyless frames) pass through as `None`.
pub fn hash_burst(
    seed: u64,
    keys: impl Iterator<Item = Option<FlowKey>>,
    out: &mut Vec<Option<HashedKey>>,
) {
    out.clear();
    out.extend(keys.map(|k| k.map(|k| hash_key(seed, &k))));
}

/// Batched hardware-Toeplitz stage: hash a whole burst of keys the way
/// the NIC's RSS engine would, one tight sweep over the hasher state
/// (used to verify software steering agrees with the card and to
/// pre-compute queue targets for generated workloads).
pub fn toeplitz_burst(hasher: &RssHasher, keys: &[FlowKey], out: &mut Vec<u32>) {
    out.clear();
    out.extend(keys.iter().map(|k| hasher.hash_key(k)));
}

/// Rolling burst-fill statistics for a poll-mode loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BurstStats {
    /// Burst pulls that returned at least one frame.
    pub bursts: u64,
    /// Frames pulled across all non-empty bursts.
    pub packets: u64,
    /// Total capacity of those bursts (`bursts * burst_size`).
    pub capacity: u64,
    /// Polls that found the ring empty.
    pub empty_polls: u64,
}

impl BurstStats {
    /// Record one pull of `pulled` frames against a `max`-sized burst.
    pub fn record(&mut self, pulled: usize, max: usize) {
        if pulled == 0 {
            self.empty_polls += 1;
            return;
        }
        self.bursts += 1;
        self.packets += pulled as u64;
        self.capacity += max as u64;
    }

    /// Mean burst fill ratio in permille (1000 = every burst full).
    pub fn fill_permille(&self) -> u64 {
        (self.packets * 1000)
            .checked_div(self.capacity)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_wire::Transport;

    fn key(i: u32) -> FlowKey {
        FlowKey::new_v4(
            [10, 0, (i >> 8) as u8, i as u8],
            [192, 168, 0, 1],
            1024 + (i % 60000) as u16,
            80,
            Transport::Tcp,
        )
    }

    #[test]
    fn pull_burst_respects_max_and_drains() {
        let mut ring = RxQueue::new(256);
        for i in 0..100u32 {
            assert!(ring.push(i));
        }
        let mut out = Vec::new();
        assert_eq!(pull_burst(&mut ring, 64, &mut out), 64);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        assert_eq!(pull_burst(&mut ring, 64, &mut out), 36);
        assert_eq!(pull_burst(&mut ring, 64, &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn hash_burst_matches_scalar_path() {
        let seed = 0xFEED;
        let keys: Vec<Option<FlowKey>> = (0..32).map(|i| (i % 5 != 0).then(|| key(i))).collect();
        let mut out = Vec::new();
        hash_burst(seed, keys.iter().copied(), &mut out);
        assert_eq!(out.len(), keys.len());
        for (k, h) in keys.iter().zip(&out) {
            match (k, h) {
                (Some(k), Some(h)) => {
                    let (canon, dir) = k.canonical();
                    assert_eq!(h.canon, canon);
                    assert_eq!(h.dir, dir);
                    assert_eq!(h.hash, canon.sym_hash(seed));
                }
                (None, None) => {}
                _ => panic!("None entries must pass through"),
            }
        }
    }

    #[test]
    fn hashed_key_is_direction_symmetric() {
        let k = key(7);
        let a = hash_key(9, &k);
        let b = hash_key(9, &k.reversed());
        assert_eq!(a.canon, b.canon);
        assert_eq!(a.hash, b.hash);
        assert_ne!(a.dir, b.dir);
    }

    #[test]
    fn toeplitz_burst_matches_scalar_rss() {
        let hasher = RssHasher::symmetric(8);
        let keys: Vec<FlowKey> = (0..16).map(key).collect();
        let mut out = Vec::new();
        toeplitz_burst(&hasher, &keys, &mut out);
        for (k, h) in keys.iter().zip(&out) {
            assert_eq!(*h, hasher.hash_key(k));
            // Symmetric seed: both directions hash identically.
            assert_eq!(*h, hasher.hash_key(&k.reversed()));
        }
    }

    #[test]
    fn burst_stats_fill_ratio() {
        let mut s = BurstStats::default();
        s.record(64, 64);
        s.record(32, 64);
        s.record(0, 64);
        assert_eq!(s.bursts, 2);
        assert_eq!(s.packets, 96);
        assert_eq!(s.empty_polls, 1);
        assert_eq!(s.fill_permille(), 750);
    }
}
