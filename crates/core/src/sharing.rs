//! Multiple applications sharing one capture (§5.6 of the paper).
//!
//! When several monitoring applications run on the same sensor, Scap
//! performs flow tracking and stream reassembly **once**, in the kernel,
//! and gives every application a shared (read-only) view of each stream.
//! Because applications have different requirements, the kernel runs a
//! *generalized* configuration — the union of all BPF filters, the
//! largest of all cutoffs, packet records if anyone needs them — and the
//! user-level stub applies each application's own restrictions when
//! dispatching events: which streams it sees, and up to which stream
//! offset.
//!
//! [`SharedApps`] is that stub: it implements [`SimApp`], so a shared
//! application group drops into [`crate::ScapSimStack`] unchanged, and
//! [`union_config`] computes the generalized kernel configuration.

use crate::config::{PriorityPolicy, ScapConfig};
use crate::event::{Event, EventKind, StreamSnapshot};
use crate::stack::SimApp;
use scap_filter::{Filter, FilterError};
use scap_sim::Work;
use scap_wire::Direction;

/// One application's view of a shared capture.
pub trait SharedApp {
    /// A stream matching this application's filter was created.
    fn on_created(&mut self, _s: &StreamSnapshot) -> Work {
        Work::default()
    }

    /// Stream data within this application's cutoff. `offset` is the
    /// stream offset of `data[0]`.
    fn on_data(&mut self, s: &StreamSnapshot, dir: Direction, data: &[u8], offset: u64) -> Work;

    /// A stream matching this application's filter terminated.
    fn on_terminated(&mut self, _s: &StreamSnapshot) -> Work {
        Work::default()
    }

    /// Matches found so far (for matching applications).
    fn matches(&self) -> u64 {
        0
    }
}

/// An application slot: its requirements plus the application itself.
pub struct AppSlot {
    /// Display name (diagnostics).
    pub name: String,
    /// Stream filter; `None` = all streams.
    pub filter: Option<Filter>,
    /// Per-stream cutoff; `None` = unlimited.
    pub cutoff: Option<u64>,
    /// The application.
    pub app: Box<dyn SharedApp>,
    /// Events delivered to this application.
    pub events: u64,
    /// Data bytes this application actually received.
    pub bytes: u64,
}

impl AppSlot {
    /// Build a slot.
    pub fn new(
        name: &str,
        filter: Option<Filter>,
        cutoff: Option<u64>,
        app: Box<dyn SharedApp>,
    ) -> Self {
        AppSlot {
            name: name.to_string(),
            filter,
            cutoff,
            app,
            events: 0,
            bytes: 0,
        }
    }

    fn wants(&self, s: &StreamSnapshot) -> bool {
        match &self.filter {
            None => true,
            Some(f) => f.matches_key(&s.key) || f.matches_key(&s.key.reversed()),
        }
    }
}

/// One subscriber's capture requirements — the filter/cutoff/priority
/// triple a tenant or shared application brings to the capture,
/// independent of the application code behind it.
#[derive(Debug, Clone, Default)]
pub struct Requirement {
    /// Stream filter; `None` = all streams.
    pub filter: Option<Filter>,
    /// Per-stream cutoff; `None` = unlimited.
    pub cutoff: Option<u64>,
    /// PPL priority requested for the subscriber's streams (0 = lowest).
    pub priority: u8,
}

/// The generalized kernel configuration for a set of requirements:
/// union of filters, maximum cutoff, packet records if anyone needs
/// them (the "best effort approach to satisfy all requirements"). The
/// result is a pure function of the requirement *set* — merging in any
/// order yields the same configuration.
pub fn union_requirements(
    mut base: ScapConfig,
    reqs: &[Requirement],
    need_pkts: bool,
) -> Result<ScapConfig, FilterError> {
    // Filters: if any subscriber wants everything, so does the kernel;
    // otherwise the union of the individual filters.
    let mut union: Option<Filter> = None;
    let mut unrestricted = reqs.is_empty();
    for req in reqs {
        match &req.filter {
            None => {
                unrestricted = true;
                break;
            }
            Some(f) => {
                union = Some(match union {
                    None => f.clone(),
                    Some(u) => u.union(f)?,
                });
            }
        }
    }
    base.filter = if unrestricted { None } else { union };

    // Cutoff: the largest requirement wins; any unlimited one ⇒ unlimited.
    let mut cutoff: Option<u64> = Some(0);
    for req in reqs {
        cutoff = match (cutoff, req.cutoff) {
            (None, _) | (_, None) => None,
            (Some(a), Some(b)) => Some(a.max(b)),
        };
    }
    // The generalized cutoff must satisfy every subscriber in both
    // directions: stale per-direction or per-class cutoffs on the base
    // config could deliver less than the largest requirement.
    base.cutoff.generalize_to(cutoff);
    base.need_pkts = need_pkts;
    // Priorities are merged only when some subscriber states one: a set
    // of priority-0 requirements (every plain shared-app group) leaves
    // the base policy — and its PPL watermark count — untouched.
    if reqs.iter().any(|r| r.priority > 0) {
        base.priorities = union_priorities(reqs);
        base.ppl.num_priorities = base.priorities.levels();
    }
    Ok(base)
}

/// Merge per-subscriber priorities into one canonical
/// [`PriorityPolicy`]. Classes are sorted by priority descending, then
/// filter source, so the policy is independent of attach order and
/// first-match-wins resolves overlapping filters toward the *higher*
/// priority (the "best effort" direction: nobody's traffic gets shed
/// earlier because somebody else also asked for it). Unfiltered
/// subscribers contribute no class — their streams take the default
/// priority 0, which PPL sheds first.
pub fn union_priorities(reqs: &[Requirement]) -> PriorityPolicy {
    let mut classes: Vec<(Filter, u8)> = reqs
        .iter()
        .filter(|r| r.priority > 0)
        .filter_map(|r| r.filter.clone().map(|f| (f, r.priority)))
        .collect();
    classes.sort_by(|(fa, pa), (fb, pb)| pb.cmp(pa).then_with(|| fa.source().cmp(fb.source())));
    classes.dedup_by(|(fa, pa), (fb, pb)| fa.source() == fb.source() && pa == pb);
    PriorityPolicy { classes }
}

/// [`union_requirements`] over application slots (the §5.6 sharing
/// stub's view: each slot's filter and cutoff, priorities untouched at
/// their default).
pub fn union_config(
    base: ScapConfig,
    slots: &[AppSlot],
    need_pkts: bool,
) -> Result<ScapConfig, FilterError> {
    let reqs: Vec<Requirement> = slots
        .iter()
        .map(|s| Requirement {
            filter: s.filter.clone(),
            cutoff: s.cutoff,
            priority: 0,
        })
        .collect();
    union_requirements(base, &reqs, need_pkts)
}

/// The user-level dispatcher for shared captures.
pub struct SharedApps {
    slots: Vec<AppSlot>,
}

impl SharedApps {
    /// Build from application slots.
    pub fn new(slots: Vec<AppSlot>) -> Self {
        SharedApps { slots }
    }

    /// The slots (inspection after a run).
    pub fn slots(&self) -> &[AppSlot] {
        &self.slots
    }
}

impl SimApp for SharedApps {
    fn on_event(&mut self, ev: &Event) -> Work {
        let mut total = Work::default();
        for slot in &mut self.slots {
            if !slot.wants(&ev.stream) {
                continue;
            }
            let w = match &ev.kind {
                EventKind::Created => {
                    slot.events += 1;
                    slot.app.on_created(&ev.stream)
                }
                EventKind::Terminated => {
                    slot.events += 1;
                    slot.app.on_terminated(&ev.stream)
                }
                EventKind::Data { dir, chunk, .. } => {
                    // Per-application cutoff: deliver only the prefix of
                    // the stream this application asked for. The data is
                    // shared — no copy — the slice just ends earlier.
                    let cap = slot.cutoff.unwrap_or(u64::MAX);
                    if chunk.start_offset >= cap {
                        continue;
                    }
                    let allowed = ((cap - chunk.start_offset) as usize).min(chunk.len);
                    slot.events += 1;
                    slot.bytes += allowed as u64;
                    slot.app.on_data(
                        &ev.stream,
                        *dir,
                        &chunk.bytes()[..allowed],
                        chunk.start_offset,
                    )
                }
            };
            total.add(&w);
        }
        total
    }

    fn matches(&self) -> u64 {
        self.slots.iter().map(|s| s.app.matches()).sum()
    }
}

/// Ready-made shared applications.
pub mod shared_apps {
    use super::SharedApp;
    use crate::event::StreamSnapshot;
    use scap_patterns::{AhoCorasick, MatcherState};
    use scap_sim::Work;
    use scap_wire::Direction;
    use std::collections::HashMap;

    /// Flow accounting: counts streams and wire bytes at termination.
    #[derive(Default)]
    pub struct SharedFlowStats {
        /// Streams reported.
        pub flows: u64,
        /// Wire bytes across reported streams.
        pub wire_bytes: u64,
    }

    impl SharedApp for SharedFlowStats {
        fn on_data(&mut self, _s: &StreamSnapshot, _d: Direction, _data: &[u8], _o: u64) -> Work {
            Work::default()
        }

        fn on_terminated(&mut self, s: &StreamSnapshot) -> Work {
            self.flows += 1;
            self.wire_bytes += s.total_bytes();
            Work::default()
        }
    }

    /// Pattern matching over the shared stream view.
    pub struct SharedMatcher {
        ac: AhoCorasick,
        states: HashMap<(u64, u8), MatcherState>,
        found: u64,
        /// Data bytes scanned.
        pub scanned: u64,
    }

    impl SharedMatcher {
        /// Build from a compiled automaton.
        pub fn new(ac: AhoCorasick) -> Self {
            SharedMatcher {
                ac,
                states: HashMap::new(),
                found: 0,
                scanned: 0,
            }
        }
    }

    impl SharedApp for SharedMatcher {
        fn on_data(&mut self, s: &StreamSnapshot, dir: Direction, data: &[u8], _o: u64) -> Work {
            let st = self.states.entry((s.uid, dir.index() as u8)).or_default();
            self.found += self.ac.count(st, data);
            self.scanned += data.len() as u64;
            Work {
                u_bytes_scanned: data.len() as u64,
                ..Default::default()
            }
        }

        fn on_terminated(&mut self, s: &StreamSnapshot) -> Work {
            self.states.remove(&(s.uid, 0));
            self.states.remove(&(s.uid, 1));
            Work::default()
        }

        fn matches(&self) -> u64 {
            self.found
        }
    }
}

#[cfg(test)]
mod tests {
    use super::shared_apps::{SharedFlowStats, SharedMatcher};
    use super::*;
    use crate::kernel::ScapKernel;
    use crate::stack::ScapSimStack;
    use scap_patterns::AhoCorasick;
    use scap_sim::{CostModel, Engine, EngineConfig};
    use scap_trace::gen::{CampusMix, CampusMixConfig};
    use std::sync::Arc;

    fn oracle() -> Engine {
        Engine::new(EngineConfig {
            model: CostModel {
                core_hz: 1e15,
                ..CostModel::default()
            },
            ..EngineConfig::default()
        })
    }

    fn base_config() -> ScapConfig {
        ScapConfig {
            inactivity_timeout_ns: 500_000_000,
            ..ScapConfig::default()
        }
    }

    #[test]
    fn union_config_generalizes_requirements() {
        let slots = vec![
            AppSlot::new(
                "stats",
                Some(Filter::new("tcp").unwrap()),
                Some(0),
                Box::new(SharedFlowStats::default()),
            ),
            AppSlot::new(
                "ids",
                Some(Filter::new("port 80").unwrap()),
                Some(10_000),
                Box::new(SharedFlowStats::default()),
            ),
        ];
        let cfg = union_config(base_config(), &slots, false).unwrap();
        // Cutoff: the largest of (0, 10_000).
        assert_eq!(cfg.cutoff.default, Some(10_000));
        // Filter: the union matches both tcp and port-80 traffic.
        let f = cfg.filter.expect("union filter");
        let tcp_frame = scap_wire::PacketBuilder::tcp_v4(
            [1, 1, 1, 1],
            [2, 2, 2, 2],
            9,
            9999,
            1,
            1,
            scap_wire::TcpFlags::ACK,
            b"",
        );
        let udp53 = scap_wire::PacketBuilder::udp_v4([1, 1, 1, 1], [2, 2, 2, 2], 53, 53, b"");
        let udp80 = scap_wire::PacketBuilder::udp_v4([1, 1, 1, 1], [2, 2, 2, 2], 80, 9, b"");
        assert!(f.matches_frame(&tcp_frame));
        assert!(f.matches_frame(&udp80));
        assert!(!f.matches_frame(&udp53));

        // Any unlimited app generalizes to "no cutoff, no filter".
        let slots2 = vec![
            AppSlot::new("all", None, None, Box::new(SharedFlowStats::default())),
            AppSlot::new(
                "ids",
                Some(Filter::new("port 80").unwrap()),
                Some(10),
                Box::new(SharedFlowStats::default()),
            ),
        ];
        let cfg2 = union_config(base_config(), &slots2, false).unwrap();
        assert!(cfg2.filter.is_none());
        assert_eq!(cfg2.cutoff.default, None);
    }

    #[test]
    fn union_config_empty_app_set_records_streams_only() {
        let cfg = union_config(base_config(), &[], false).unwrap();
        // No applications: every stream is visible (stream bookkeeping is
        // nearly free) but no payload is collected and no packet records
        // are produced.
        assert!(cfg.filter.is_none());
        assert_eq!(cfg.cutoff.default, Some(0));
        assert!(!cfg.need_pkts);
    }

    #[test]
    fn union_config_single_unfiltered_app_keeps_its_cutoff() {
        let slots = vec![AppSlot::new(
            "only",
            None,
            Some(4096),
            Box::new(SharedFlowStats::default()),
        )];
        let cfg = union_config(base_config(), &slots, true).unwrap();
        assert!(cfg.filter.is_none());
        assert_eq!(cfg.cutoff.default, Some(4096));
        // Packet records requested by the group pass through.
        assert!(cfg.need_pkts);
    }

    #[test]
    fn union_config_overrides_conflicting_base_cutoff_directions() {
        // A base config carrying tighter per-direction and per-class
        // cutoffs must not leak into the generalized configuration — the
        // largest application requirement wins in *both* directions.
        let mut base = base_config();
        base.cutoff.per_direction = [Some(64), Some(4)];
        base.cutoff
            .classes
            .push((Filter::new("port 80").unwrap(), 16));
        let slots = vec![
            AppSlot::new(
                "small",
                Some(Filter::new("tcp").unwrap()),
                Some(0),
                Box::new(SharedFlowStats::default()),
            ),
            AppSlot::new(
                "large",
                Some(Filter::new("port 80").unwrap()),
                Some(10_000),
                Box::new(SharedFlowStats::default()),
            ),
        ];
        let cfg = union_config(base, &slots, false).unwrap();
        assert_eq!(cfg.cutoff.default, Some(10_000));
        assert_eq!(cfg.cutoff.per_direction, [None, None]);
        assert!(cfg.cutoff.classes.is_empty());
        // The effective cutoff must now be the generalized one both ways.
        let key = scap_wire::parse_frame(&scap_wire::PacketBuilder::tcp_v4(
            [1, 1, 1, 1],
            [2, 2, 2, 2],
            9,
            80,
            1,
            1,
            scap_wire::TcpFlags::ACK,
            b"",
        ))
        .unwrap()
        .key
        .unwrap();
        assert_eq!(cfg.cutoff.effective(&key), [Some(10_000), Some(10_000)]);
    }

    mod union_properties {
        use super::super::{union_priorities, union_requirements, Requirement};
        use crate::config::ScapConfig;
        use proptest::prelude::*;
        use scap_filter::Filter;

        /// The BPF vocabulary the generator draws from. `None` is the
        /// unrestricted subscriber.
        const FILTERS: [Option<&str>; 6] = [
            None,
            Some("tcp"),
            Some("udp"),
            Some("port 80"),
            Some("port 443"),
            Some("tcp and port 80"),
        ];

        /// Raw generated shape: (filter index, cutoff present, cutoff,
        /// priority). The offline proptest shim has no `prop_map`, so
        /// requirements are built from raw tuples inside each property.
        fn reqs_from(raw: &[(usize, bool, u64, u8)]) -> Vec<Requirement> {
            raw.iter()
                .map(|&(f, has_cutoff, cutoff, priority)| Requirement {
                    filter: FILTERS[f % FILTERS.len()].map(|s| Filter::new(s).unwrap()),
                    cutoff: has_cutoff.then_some(cutoff),
                    priority,
                })
                .collect()
        }

        /// Probe frames covering every corner of the filter vocabulary.
        fn probes() -> Vec<Vec<u8>> {
            use scap_wire::{PacketBuilder, TcpFlags};
            vec![
                PacketBuilder::tcp_v4([1, 1, 1, 1], [2, 2, 2, 2], 9, 80, 1, 1, TcpFlags::ACK, b""),
                PacketBuilder::tcp_v4([1, 1, 1, 1], [2, 2, 2, 2], 443, 9, 1, 1, TcpFlags::ACK, b""),
                PacketBuilder::tcp_v4(
                    [3, 3, 3, 3],
                    [4, 4, 4, 4],
                    1234,
                    5678,
                    1,
                    1,
                    TcpFlags::ACK,
                    b"",
                ),
                PacketBuilder::udp_v4([1, 1, 1, 1], [2, 2, 2, 2], 80, 9, b""),
                PacketBuilder::udp_v4([1, 1, 1, 1], [2, 2, 2, 2], 53, 53, b""),
            ]
        }

        /// The observable face of a generalized config: what the kernel
        /// would accept, collect, and prioritize.
        fn fingerprint(cfg: &ScapConfig) -> (Vec<bool>, Option<u64>, Vec<Option<u8>>, u8) {
            let accepts: Vec<bool> = probes()
                .iter()
                .map(|p| cfg.filter.as_ref().is_none_or(|f| f.matches_frame(p)))
                .collect();
            let prios: Vec<Option<u8>> = probes()
                .iter()
                .map(|p| {
                    scap_wire::parse_frame(p)
                        .ok()
                        .and_then(|f| f.key)
                        .map(|k| cfg.priorities.for_key(&k))
                })
                .collect();
            (accepts, cfg.cutoff.default, prios, cfg.ppl.num_priorities)
        }

        proptest! {
            /// Commutativity: merging N subscriber configs in any order
            /// yields the same effective capture config.
            #[test]
            fn union_is_order_invariant(
                raw in proptest::collection::vec(
                    (0usize..FILTERS.len(), any::<bool>(), 0u64..100_000, 0u8..4), 1..6),
                rot in 0usize..6,
                swap in (0usize..6, 0usize..6),
            ) {
                let reqs = reqs_from(&raw);
                let base = ScapConfig::default;
                let merged = union_requirements(base(), &reqs, false).unwrap();
                let mut shuffled = reqs.clone();
                let n = shuffled.len();
                shuffled.rotate_left(rot % n);
                let (i, j) = (swap.0 % n, swap.1 % n);
                shuffled.swap(i, j);
                let remerged = union_requirements(base(), &shuffled, false).unwrap();
                prop_assert_eq!(fingerprint(&merged), fingerprint(&remerged));
            }

            /// Associativity: merging a subscriber set in groups — the
            /// union filter of (A ∪ B) ∪ C against A ∪ (B ∪ C) — matches
            /// the flat merge on every probe, and the scalar folds (max
            /// cutoff, priority policy) agree with a manual fold.
            #[test]
            fn union_is_associative(
                raw in proptest::collection::vec(
                    (0usize..FILTERS.len(), any::<bool>(), 0u64..100_000, 0u8..4), 3..6),
            ) {
                let reqs = reqs_from(&raw);
                let base = ScapConfig::default;
                let flat = union_requirements(base(), &reqs, false).unwrap();
                // Grouped merge: generalize a prefix, then union the
                // remaining requirements on top of the already-merged
                // filter/cutoff (what incremental attach does).
                for split in 1..reqs.len() {
                    let left = union_requirements(base(), &reqs[..split], false).unwrap();
                    let mut grouped: Vec<Requirement> = reqs[split..].to_vec();
                    grouped.push(Requirement {
                        filter: left.filter.clone(),
                        cutoff: left.cutoff.default,
                        priority: 0,
                    });
                    let mut regrouped = union_requirements(base(), &grouped, false).unwrap();
                    // Priorities fold over the raw set, not the grouped
                    // aggregate (the aggregate's classes are not a single
                    // requirement); recompute them from the full set.
                    regrouped.priorities = union_priorities(&reqs);
                    regrouped.ppl.num_priorities = regrouped.priorities.levels();
                    let mut flat_cmp = fingerprint(&flat);
                    let mut re_cmp = fingerprint(&regrouped);
                    // An all-priority-0 set leaves base priorities alone
                    // (by design); normalize that away for comparison.
                    if reqs.iter().all(|r| r.priority == 0) {
                        flat_cmp.2 = vec![];
                        re_cmp.2 = vec![];
                        flat_cmp.3 = 0;
                        re_cmp.3 = 0;
                    }
                    prop_assert_eq!(flat_cmp, re_cmp);
                }
            }

            /// The merged cutoff is exactly the max-fold (None
            /// absorbing), and the merged priority policy gives every
            /// probe stream the highest priority any matching
            /// subscriber asked for.
            #[test]
            fn union_cutoff_and_priority_semantics(
                raw in proptest::collection::vec(
                    (0usize..FILTERS.len(), any::<bool>(), 0u64..100_000, 0u8..4), 1..6),
            ) {
                let reqs = reqs_from(&raw);
                let merged = union_requirements(ScapConfig::default(), &reqs, false).unwrap();
                let expect_cutoff = reqs.iter().try_fold(0u64, |acc, r| {
                    r.cutoff.map(|c| acc.max(c))
                });
                prop_assert_eq!(merged.cutoff.default, expect_cutoff);
                if reqs.iter().any(|r| r.priority > 0) {
                    for p in probes() {
                        let Some(key) = scap_wire::parse_frame(&p).ok().and_then(|f| f.key)
                        else {
                            continue;
                        };
                        let expected = reqs
                            .iter()
                            .filter(|r| {
                                r.priority > 0
                                    && r.filter.as_ref().is_some_and(|f| {
                                        f.matches_key(&key) || f.matches_key(&key.reversed())
                                    })
                            })
                            .map(|r| r.priority)
                            .max()
                            .unwrap_or(0);
                        prop_assert_eq!(merged.priorities.for_key(&key), expected);
                    }
                }
            }
        }
    }

    #[test]
    fn two_apps_share_one_reassembly_pass() {
        let pats = vec![b"XXSHAREDPATTERNXX".to_vec()];
        let trace = CampusMix::new(CampusMixConfig {
            patterns: Some(Arc::new(pats.clone())),
            pattern_prob: 1.0,
            ..CampusMixConfig::sized(41, 3 << 20)
        })
        .collect_all();
        let total_flows = scap_trace::stats::TraceStats::from_packets(trace.iter()).flows;

        let slots = vec![
            AppSlot::new("stats", None, Some(0), Box::new(SharedFlowStats::default())),
            AppSlot::new(
                "matcher",
                None,
                None,
                Box::new(SharedMatcher::new(AhoCorasick::new(&pats, false))),
            ),
        ];
        let cfg = union_config(base_config(), &slots, false).unwrap();
        let mut stack = ScapSimStack::new(ScapKernel::new(cfg), SharedApps::new(slots));
        let report = oracle().run(trace, &mut stack);

        assert_eq!(report.stats.dropped_packets, 0);
        assert!(report.stats.matches > 0, "matcher found nothing");
        // The kernel reassembled once; both apps were served from it.
        let slots = stack.app().slots();
        assert_eq!(slots[0].name, "stats");
        assert!(slots[0].events >= total_flows); // termination events
        assert!(slots[1].bytes > 0);
        // The stats app asked for cutoff 0: it received no data bytes.
        assert_eq!(slots[0].bytes, 0);
    }

    #[test]
    fn per_app_filter_restricts_stream_visibility() {
        let trace = CampusMix::new(CampusMixConfig::sized(43, 3 << 20)).collect_all();
        let slots = vec![
            AppSlot::new("all", None, Some(0), Box::new(SharedFlowStats::default())),
            AppSlot::new(
                "web",
                Some(Filter::new("port 80").unwrap()),
                Some(0),
                Box::new(SharedFlowStats::default()),
            ),
        ];
        let cfg = union_config(base_config(), &slots, false).unwrap();
        let mut stack = ScapSimStack::new(ScapKernel::new(cfg), SharedApps::new(slots));
        oracle().run(trace, &mut stack);
        let slots = stack.app().slots();
        let all_flows = slots[0].events;
        let web_flows = slots[1].events;
        assert!(web_flows > 0, "no port-80 streams seen");
        assert!(
            web_flows < all_flows / 2,
            "web app saw {web_flows} of {all_flows} events — filter not applied?"
        );
    }

    #[test]
    fn per_app_cutoff_trims_delivery() {
        let trace = CampusMix::new(CampusMixConfig::sized(47, 3 << 20)).collect_all();
        let slots = vec![
            AppSlot::new(
                "headers",
                None,
                Some(512),
                Box::new(SharedMatcher::new(AhoCorasick::new(
                    &[b"x".to_vec()],
                    false,
                ))),
            ),
            AppSlot::new(
                "full",
                None,
                None,
                Box::new(SharedMatcher::new(AhoCorasick::new(
                    &[b"x".to_vec()],
                    false,
                ))),
            ),
        ];
        let cfg = union_config(base_config(), &slots, false).unwrap();
        let mut stack = ScapSimStack::new(ScapKernel::new(cfg), SharedApps::new(slots));
        oracle().run(trace, &mut stack);
        let slots = stack.app().slots();
        assert!(slots[0].bytes > 0);
        assert!(
            slots[0].bytes < slots[1].bytes / 2,
            "cutoff app received {} vs full app {}",
            slots[0].bytes,
            slots[1].bytes
        );
    }
}
