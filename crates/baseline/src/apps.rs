//! Applications running on the baseline stacks — the same workloads the
//! Scap stack runs, so comparisons vary only the capture architecture.

use scap_patterns::{AhoCorasick, MatcherState};
use scap_sim::Work;
use scap_wire::Direction;
use std::collections::HashMap;

/// The application interface of a baseline stack.
pub trait BaselineApp {
    /// Reassembled (or raw, for non-reassembling stacks) data for a
    /// stream direction. Returns extra user work beyond what the stack
    /// itself charges.
    fn on_data(&mut self, stream_uid: u64, dir: Direction, data: &[u8]) -> Work;

    /// A stream ended (close or timeout), with wire totals.
    fn on_stream_end(&mut self, stream_uid: u64, total_bytes: u64, total_pkts: u64) -> Work;

    /// Pattern matches found so far.
    fn matches(&self) -> u64 {
        0
    }
}

/// Flow export (the YAF workload): only the termination totals matter.
#[derive(Default)]
pub struct FlowExportApp {
    /// Flows exported.
    pub exported: u64,
    /// Total bytes across exported flows.
    pub exported_bytes: u64,
}

impl BaselineApp for FlowExportApp {
    fn on_data(&mut self, _uid: u64, _dir: Direction, _data: &[u8]) -> Work {
        Work::default()
    }

    fn on_stream_end(&mut self, _uid: u64, total_bytes: u64, _total_pkts: u64) -> Work {
        self.exported += 1;
        self.exported_bytes += total_bytes;
        Work::default()
    }
}

/// Stream delivery with no processing (§6.3): touch every byte.
#[derive(Default)]
pub struct TouchApp {
    /// Bytes observed.
    pub bytes: u64,
}

impl BaselineApp for TouchApp {
    fn on_data(&mut self, _uid: u64, _dir: Direction, data: &[u8]) -> Work {
        self.bytes += data.len() as u64;
        Work {
            u_bytes_touched: data.len() as u64,
            ..Default::default()
        }
    }

    fn on_stream_end(&mut self, _uid: u64, _b: u64, _p: u64) -> Work {
        Work::default()
    }
}

/// Aho–Corasick pattern matching with streaming per-direction state —
/// identical automaton and algorithm as the Scap-side application.
pub struct PatternScanApp {
    ac: AhoCorasick,
    states: HashMap<(u64, u8), MatcherState>,
    found: u64,
}

impl PatternScanApp {
    /// Build from a compiled automaton.
    pub fn new(ac: AhoCorasick) -> Self {
        PatternScanApp {
            ac,
            states: HashMap::new(),
            found: 0,
        }
    }
}

impl BaselineApp for PatternScanApp {
    fn on_data(&mut self, uid: u64, dir: Direction, data: &[u8]) -> Work {
        let st = self.states.entry((uid, dir.index() as u8)).or_default();
        self.found += self.ac.count(st, data);
        Work {
            u_bytes_scanned: data.len() as u64,
            ..Default::default()
        }
    }

    fn on_stream_end(&mut self, uid: u64, _b: u64, _p: u64) -> Work {
        self.states.remove(&(uid, 0));
        self.states.remove(&(uid, 1));
        Work::default()
    }

    fn matches(&self) -> u64 {
        self.found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_app_streams_across_chunks() {
        let ac = AhoCorasick::new(&[b"needle".to_vec()], false);
        let mut app = PatternScanApp::new(ac);
        app.on_data(1, Direction::Forward, b"xxnee");
        app.on_data(1, Direction::Forward, b"dlexx");
        assert_eq!(app.matches(), 1);
        // Different stream: fresh state.
        app.on_data(2, Direction::Forward, b"dlexx");
        assert_eq!(app.matches(), 1);
        app.on_stream_end(1, 0, 0);
        // State cleared after end.
        app.on_data(1, Direction::Forward, b"dlexx");
        assert_eq!(app.matches(), 1);
    }

    #[test]
    fn flow_export_counts_streams() {
        let mut app = FlowExportApp::default();
        app.on_stream_end(1, 100, 2);
        app.on_stream_end(2, 200, 3);
        assert_eq!(app.exported, 2);
        assert_eq!(app.exported_bytes, 300);
    }

    #[test]
    fn touch_app_charges_touch_work() {
        let mut app = TouchApp::default();
        let w = app.on_data(1, Direction::Reverse, &[0u8; 500]);
        assert_eq!(w.u_bytes_touched, 500);
        assert_eq!(app.bytes, 500);
    }
}
