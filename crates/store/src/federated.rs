//! Federated queries across a fleet of per-shard archives.
//!
//! A sharded capture (`scap::shard::ShardFleet`) writes one archive per
//! shard under a common root (`<root>/shard-0`, `<root>/shard-1`, …).
//! [`FederatedReader`] opens every shard archive it can find and fans a
//! query out across them, enforcing a per-shard time budget: a shard
//! that fails to open, fails the query, or blows its budget contributes
//! no records, is reported in its [`ShardQueryStatus`], and marks the
//! result **partial** — callers always learn whether they saw the whole
//! fleet or a subset, never silently the latter.

use crate::reader::StoreReader;
use crate::{IndexRecord, StoreError};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Outcome of one shard's part of a federated query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardOutcome {
    /// The shard answered in budget with this many records.
    Ok(usize),
    /// The shard's archive could not be opened or queried.
    Error(String),
    /// The shard answered, but past its time budget; its records are
    /// excluded so the result stays budget-honest.
    TimedOut,
}

/// Per-shard status row of a federated query.
#[derive(Debug, Clone)]
pub struct ShardQueryStatus {
    /// Shard index (parsed from the `shard-N` directory name).
    pub shard: usize,
    /// Archive directory of the shard.
    pub dir: PathBuf,
    /// What happened.
    pub outcome: ShardOutcome,
    /// Wall time spent on this shard.
    pub elapsed: Duration,
}

/// The result of a federated query: the merged records plus per-shard
/// provenance and an explicit partial flag.
#[derive(Debug, Clone)]
pub struct FederatedResult {
    /// Matching records, tagged with their shard index, in shard order.
    pub records: Vec<(usize, IndexRecord)>,
    /// One status row per shard archive found under the root.
    pub statuses: Vec<ShardQueryStatus>,
    /// True when any shard errored or timed out: `records` covers only
    /// part of the fleet.
    pub partial: bool,
}

impl FederatedResult {
    /// Shards that answered in budget.
    pub fn ok_shards(&self) -> usize {
        self.statuses
            .iter()
            .filter(|s| matches!(s.outcome, ShardOutcome::Ok(_)))
            .count()
    }
}

/// A reader federating every `shard-N` archive under one root.
pub struct FederatedReader {
    shards: Vec<(usize, PathBuf)>,
}

impl FederatedReader {
    /// Discover shard archives under `root`: every subdirectory named
    /// `shard-<N>`, sorted by shard index. Directories that are missing
    /// or unreadable at *query* time are reported per query, but a root
    /// with no shard directories at all is an error.
    pub fn open(root: impl AsRef<Path>) -> Result<FederatedReader, StoreError> {
        let root = root.as_ref();
        let mut shards = Vec::new();
        for entry in std::fs::read_dir(root).map_err(StoreError::Io)? {
            let entry = entry.map_err(StoreError::Io)?;
            let name = entry.file_name();
            let Some(idx) = name
                .to_str()
                .and_then(|n| n.strip_prefix("shard-"))
                .and_then(|n| n.parse::<usize>().ok())
            else {
                continue;
            };
            if entry.path().is_dir() {
                shards.push((idx, entry.path()));
            }
        }
        if shards.is_empty() {
            return Err(StoreError::Corrupt(format!(
                "no shard-N archives under {}",
                root.display()
            )));
        }
        shards.sort_by_key(|(idx, _)| *idx);
        Ok(FederatedReader { shards })
    }

    /// Number of shard archives discovered.
    pub fn nshards(&self) -> usize {
        self.shards.len()
    }

    /// The discovered `(shard, dir)` pairs, in shard order.
    pub fn shard_dirs(&self) -> &[(usize, PathBuf)] {
        &self.shards
    }

    /// Run one filter-expression query against every shard archive with
    /// a per-shard time budget. See [`FederatedResult`] for the
    /// partial-result contract.
    pub fn query(&self, expr: &str, per_shard_timeout: Duration) -> FederatedResult {
        self.run(per_shard_timeout, |reader| {
            reader
                .query(expr)
                .map(|rs| rs.into_iter().cloned().collect())
                .map_err(|e| format!("bad filter: {e}"))
        })
    }

    /// Federated time-range scan (same budget/partial contract as
    /// [`FederatedReader::query`]).
    pub fn time_range(
        &self,
        since_ns: u64,
        until_ns: u64,
        per_shard_timeout: Duration,
    ) -> FederatedResult {
        self.run(per_shard_timeout, |reader| {
            Ok(reader
                .time_range(since_ns, until_ns)
                .into_iter()
                .cloned()
                .collect())
        })
    }

    fn run(
        &self,
        per_shard_timeout: Duration,
        f: impl Fn(&StoreReader) -> Result<Vec<IndexRecord>, String>,
    ) -> FederatedResult {
        let mut records = Vec::new();
        let mut statuses = Vec::new();
        let mut partial = false;
        for (shard, dir) in &self.shards {
            let started = Instant::now();
            // `StoreReader::open` treats a missing index as an empty
            // archive; for federation that silence would be a lie — a
            // shard whose archive vanished since discovery is an error.
            if !dir.join(crate::INDEX_FILE).exists() {
                partial = true;
                statuses.push(ShardQueryStatus {
                    shard: *shard,
                    dir: dir.clone(),
                    outcome: ShardOutcome::Error("archive missing".into()),
                    elapsed: started.elapsed(),
                });
                continue;
            }
            let outcome = match StoreReader::open(dir) {
                Err(e) => {
                    partial = true;
                    ShardOutcome::Error(format!("open failed: {e}"))
                }
                Ok(reader) => match f(&reader) {
                    Err(e) => {
                        partial = true;
                        ShardOutcome::Error(e)
                    }
                    Ok(rs) => {
                        if started.elapsed() > per_shard_timeout {
                            // Budget blown: the records are discarded so
                            // the caller's latency contract holds, and
                            // the miss is explicit.
                            partial = true;
                            ShardOutcome::TimedOut
                        } else {
                            let n = rs.len();
                            records.extend(rs.into_iter().map(|r| (*shard, r)));
                            ShardOutcome::Ok(n)
                        }
                    }
                },
            };
            statuses.push(ShardQueryStatus {
                shard: *shard,
                dir: dir.clone(),
                outcome,
                elapsed: started.elapsed(),
            });
        }
        FederatedResult {
            records,
            statuses,
            partial,
        }
    }
}
