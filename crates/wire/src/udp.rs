//! UDP datagram view.

use crate::{Result, WireError};

/// A read-only view over a UDP datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpPacket<'a> {
    buf: &'a [u8],
}

impl<'a> UdpPacket<'a> {
    /// UDP header length.
    pub const HEADER_LEN: usize = 8;

    /// Wrap `buf`, validating the length field.
    pub fn new_checked(buf: &'a [u8]) -> Result<Self> {
        if buf.len() < Self::HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let p = UdpPacket { buf };
        let l = p.length() as usize;
        if l < Self::HEADER_LEN || l > buf.len() {
            return Err(WireError::BadLength);
        }
        Ok(p)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// Total length (header + payload).
    pub fn length(&self) -> u16 {
        u16::from_be_bytes([self.buf[4], self.buf[5]])
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.buf[6], self.buf[7]])
    }

    /// Datagram payload, bounded by the length field.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[Self::HEADER_LEN..self.length() as usize]
    }
}

/// Emit an 8-byte UDP header (checksum left zero for the builder to fill).
pub fn emit_header(buf: &mut [u8], src_port: u16, dst_port: u16, payload_len: u16) {
    buf[0..2].copy_from_slice(&src_port.to_be_bytes());
    buf[2..4].copy_from_slice(&dst_port.to_be_bytes());
    let len = payload_len + UdpPacket::HEADER_LEN as u16;
    buf[4..6].copy_from_slice(&len.to_be_bytes());
    buf[6] = 0;
    buf[7] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_parse_roundtrip() {
        let mut buf = vec![0u8; 8 + 5];
        emit_header(&mut buf, 5000, 53, 5);
        buf[8..].copy_from_slice(b"hello");
        let u = UdpPacket::new_checked(&buf).unwrap();
        assert_eq!(u.src_port(), 5000);
        assert_eq!(u.dst_port(), 53);
        assert_eq!(u.length(), 13);
        assert_eq!(u.payload(), b"hello");
    }

    #[test]
    fn short_buffer_rejected() {
        assert_eq!(UdpPacket::new_checked(&[0u8; 7]), Err(WireError::Truncated));
    }

    #[test]
    fn length_too_small_rejected() {
        let mut buf = vec![0u8; 8];
        buf[5] = 4;
        assert_eq!(UdpPacket::new_checked(&buf), Err(WireError::BadLength));
    }

    #[test]
    fn length_beyond_buffer_rejected() {
        let mut buf = vec![0u8; 8];
        buf[5] = 100;
        assert_eq!(UdpPacket::new_checked(&buf), Err(WireError::BadLength));
    }
}
