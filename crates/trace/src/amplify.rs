//! Concurrency amplifier: N× the flows of any trace, streamed in O(1).
//!
//! The offload experiments need *million-flow* working sets — 10–100×
//! the concurrency of a base campus or ISP mix — without materializing
//! (or even generating) N× the trace in memory. The amplifier is a lazy
//! iterator adapter: each input packet fans out into `factor` replicas,
//! where replica 0 is the original frame (shared, zero-copy) and replica
//! `r > 0` carries NAT-style rewritten IPv4 addresses, so every replica
//! is a *distinct* flow that advances in lockstep with the original.
//! Amplifying a 100 K-flow mix by 10 yields a 1 M-flow workload whose
//! per-flow behaviour (sizes, handshakes, teardown, wire imperfections)
//! is byte-identical to the base trace.
//!
//! Address rewriting is done in place with incremental checksum updates
//! (RFC 1624) over the IPv4 header checksum and the TCP/UDP checksum's
//! pseudo-header contribution, so the amplified frames remain as
//! well-formed as the builder-produced originals. Non-IPv4 frames (a few
//! percent of a campus mix) are passed through unreplicated — they carry
//! no flow key, so replicating them would only inflate byte counts.
//!
//! Memory: one input packet plus a replica counter — independent of both
//! trace length and amplification factor.

use crate::Packet;
use scap_wire::splitmix64;

/// Configuration for the amplifier.
#[derive(Debug, Clone)]
pub struct AmplifyConfig {
    /// Replicas per input flow, including the original (1 = passthrough).
    pub factor: usize,
    /// Seed for the per-replica address masks; identical seeds give
    /// byte-identical amplified traces.
    pub seed: u64,
}

impl AmplifyConfig {
    /// Amplify by `factor` with the default seed.
    pub fn by(factor: usize) -> Self {
        AmplifyConfig {
            factor: factor.max(1),
            seed: 0x0ff1_0ad5,
        }
    }
}

/// Lazy concurrency amplifier over any packet iterator.
pub struct Amplifier<I: Iterator<Item = Packet>> {
    inner: I,
    cfg: AmplifyConfig,
    /// Per-replica address masks (index 0 unused: replica 0 is identity).
    masks: Vec<[u8; 3]>,
    current: Option<Packet>,
    replica: usize,
    last_ts: u64,
}

impl<I: Iterator<Item = Packet>> Amplifier<I> {
    /// Wrap `inner`, fanning each IPv4 packet out `cfg.factor` ways.
    pub fn new(inner: I, cfg: AmplifyConfig) -> Self {
        // Each replica rewrites the low three octets of both addresses
        // with a fixed xor mask; masks are pairwise distinct, so replicas
        // of one flow never collide with each other, and collisions
        // *across* base flows would need two flows whose address pairs
        // differ by exactly the xor of two 48-bit masks.
        let mut masks = vec![[0u8; 3]; cfg.factor];
        for (r, m) in masks.iter_mut().enumerate().skip(1) {
            let h = splitmix64(cfg.seed ^ r as u64);
            // Never all-zero: that would alias the original flow.
            m[0] = (h >> 16) as u8;
            m[1] = (h >> 8) as u8;
            m[2] = (h as u8) | 1;
        }
        Amplifier {
            inner,
            cfg,
            masks,
            current: None,
            replica: 0,
            last_ts: 0,
        }
    }

    /// Total flows this amplifier will produce per base flow.
    pub fn factor(&self) -> usize {
        self.cfg.factor
    }
}

impl<I: Iterator<Item = Packet>> Iterator for Amplifier<I> {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        loop {
            if let Some(base) = &self.current {
                if self.replica < self.cfg.factor {
                    let r = self.replica;
                    self.replica += 1;
                    let pkt = if r == 0 {
                        base.clone() // zero-copy: shares the frame
                    } else {
                        let mut frame = base.frame.to_vec();
                        if !rewrite_addrs_v4(&mut frame, self.masks[r]) {
                            // Not IPv4: emit once (replica 0), skip the rest.
                            self.replica = self.cfg.factor;
                            continue;
                        }
                        // Nudge replicas apart in time, keeping the stream
                        // monotonic: replays and the kernel's timer wheel
                        // both assume non-decreasing timestamps.
                        Packet::new(base.ts_ns + r as u64, frame)
                    };
                    let ts = pkt.ts_ns.max(self.last_ts);
                    self.last_ts = ts;
                    return Some(Packet { ts_ns: ts, ..pkt });
                }
                self.current = None;
            }
            self.current = Some(self.inner.next()?);
            self.replica = 0;
        }
    }
}

const ETH_HLEN: usize = 14;

/// Xor `mask` into the low three octets of the IPv4 source and
/// destination addresses, incrementally fixing the IP header checksum and
/// the TCP/UDP checksum (both cover the addresses via the pseudo-header).
/// Returns `false` when the frame is not IPv4 (left untouched).
fn rewrite_addrs_v4(frame: &mut [u8], mask: [u8; 3]) -> bool {
    if frame.len() < ETH_HLEN + 20 {
        return false;
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != 0x0800 {
        return false;
    }
    let ihl = usize::from(frame[ETH_HLEN] & 0x0F) * 4;
    if ihl < 20 || frame.len() < ETH_HLEN + ihl {
        return false;
    }
    let proto = frame[ETH_HLEN + 9];
    let src_off = ETH_HLEN + 12;
    let dst_off = ETH_HLEN + 16;

    // Remember the old address words for the checksum deltas.
    let old_words: Vec<u16> = (0..4)
        .map(|i| u16::from_be_bytes([frame[src_off + 2 * i], frame[src_off + 2 * i + 1]]))
        .collect();
    for off in [src_off, dst_off] {
        for (i, m) in mask.iter().enumerate() {
            frame[off + 1 + i] ^= m;
        }
    }
    let new_words: Vec<u16> = (0..4)
        .map(|i| u16::from_be_bytes([frame[src_off + 2 * i], frame[src_off + 2 * i + 1]]))
        .collect();

    let fix = |csum: u16| -> u16 {
        // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m'), per changed word.
        let mut acc = u32::from(!csum);
        for (o, n) in old_words.iter().zip(&new_words) {
            acc += u32::from(!o) + u32::from(*n);
        }
        while acc >> 16 != 0 {
            acc = (acc & 0xFFFF) + (acc >> 16);
        }
        !(acc as u16)
    };

    let ip_csum_off = ETH_HLEN + 10;
    let ip_csum = u16::from_be_bytes([frame[ip_csum_off], frame[ip_csum_off + 1]]);
    frame[ip_csum_off..ip_csum_off + 2].copy_from_slice(&fix(ip_csum).to_be_bytes());

    let l4_off = ETH_HLEN + ihl;
    let l4_csum_off = match proto {
        6 if frame.len() >= l4_off + 18 => Some(l4_off + 16), // TCP
        17 if frame.len() >= l4_off + 8 => Some(l4_off + 6),  // UDP
        _ => None,
    };
    if let Some(off) = l4_csum_off {
        let csum = u16::from_be_bytes([frame[off], frame[off + 1]]);
        // UDP checksum 0 means "not computed" — leave it that way.
        if !(proto == 17 && csum == 0) {
            frame[off..off + 2].copy_from_slice(&fix(csum).to_be_bytes());
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{CampusMix, CampusMixConfig};
    use crate::stats::TraceStats;
    use scap_wire::{checksum, ip_proto, parse_frame, Ipv4Packet, PacketBuilder, TcpFlags};

    fn base_trace() -> Vec<Packet> {
        CampusMix::new(CampusMixConfig::sized(7, 1 << 20)).collect_all()
    }

    #[test]
    fn amplification_multiplies_flow_count_exactly() {
        let base = base_trace();
        let base_stats = TraceStats::from_packets(base.iter());
        for factor in [1usize, 4, 10] {
            let amp: Vec<Packet> =
                Amplifier::new(base.iter().cloned(), AmplifyConfig::by(factor)).collect();
            let s = TraceStats::from_packets(amp.iter());
            assert_eq!(s.tcp_flows, base_stats.tcp_flows * factor as u64);
            assert_eq!(s.parse_errors, 0);
        }
    }

    #[test]
    fn replica_frames_keep_valid_checksums() {
        let frame = PacketBuilder::tcp_v4(
            [10, 0, 0, 1],
            [172, 16, 0, 1],
            40000,
            80,
            1000,
            2000,
            TcpFlags::ACK | TcpFlags::PSH,
            b"GET / HTTP/1.1\r\n\r\n",
        );
        let base = vec![Packet::new(1_000, frame)];
        let amp: Vec<Packet> = Amplifier::new(base.into_iter(), AmplifyConfig::by(8)).collect();
        assert_eq!(amp.len(), 8);
        for p in &amp {
            let ip = Ipv4Packet::new_checked(&p.frame[14..]).unwrap();
            ip.verify_checksum().unwrap();
            // The TCP checksum over the pseudo-header folds to zero.
            let parsed = parse_frame(&p.frame).unwrap();
            let payload_and_hdr = &p.frame[14 + ip.header_len()..];
            let mut sum = checksum::pseudo_header_v4(
                ip.src_addr(),
                ip.dst_addr(),
                ip_proto::TCP,
                payload_and_hdr.len() as u16,
            );
            sum.push(payload_and_hdr);
            assert_eq!(sum.finish(), 0, "tcp checksum must stay valid");
            assert!(parsed.key.is_some());
        }
    }

    #[test]
    fn replicas_are_distinct_flows_and_original_survives() {
        let frame = PacketBuilder::tcp_v4(
            [10, 1, 2, 3],
            [172, 16, 9, 1],
            41000,
            443,
            1,
            0,
            TcpFlags::SYN,
            b"",
        );
        let base = vec![Packet::new(5, frame.clone())];
        let amp: Vec<Packet> = Amplifier::new(base.into_iter(), AmplifyConfig::by(16)).collect();
        let mut keys = std::collections::HashSet::new();
        for p in &amp {
            let k = parse_frame(&p.frame).unwrap().key.unwrap().canonical().0;
            assert!(keys.insert(k), "replica flows must be pairwise distinct");
        }
        // Replica 0 is the untouched original.
        assert_eq!(&amp[0].frame[..], &frame[..]);
        // First octets survive, so addresses stay in their original nets.
        for p in &amp {
            let ip = Ipv4Packet::new_checked(&p.frame[14..]).unwrap();
            assert_eq!(ip.src_addr()[0], 10);
            assert_eq!(ip.dst_addr()[0], 172);
        }
    }

    #[test]
    fn timestamps_stay_monotonic() {
        let base = base_trace();
        let amp = Amplifier::new(base.into_iter(), AmplifyConfig::by(10));
        let mut last = 0u64;
        for p in amp {
            assert!(p.ts_ns >= last);
            last = p.ts_ns;
        }
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let base = base_trace();
        let a: Vec<Packet> = Amplifier::new(base.iter().cloned(), AmplifyConfig::by(5)).collect();
        let b: Vec<Packet> = Amplifier::new(base.iter().cloned(), AmplifyConfig::by(5)).collect();
        assert_eq!(a, b);
    }
}
