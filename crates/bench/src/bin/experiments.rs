//! The experiments binary: regenerate any table/figure of the paper.
//!
//! ```text
//! experiments --exp all              # everything, default scale
//! experiments --exp fig6 fig7        # selected figures
//! experiments --exp all --scale smoke
//! experiments --out results/         # output directory
//! ```

use scap_bench::figures::{run_experiment, ALL_EXPERIMENTS};
use scap_bench::{ExpConfig, Scale};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exps: Vec<String> = Vec::new();
    let mut scale = Scale::default_scale();
    let mut out_dir = String::from("results");
    let mut seed = 42u64;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                while i < args.len() && !args[i].starts_with("--") {
                    exps.push(args[i].clone());
                    i += 1;
                }
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("smoke") => Scale::smoke(),
                    Some("default") | None => Scale::default_scale(),
                    Some(other) => {
                        eprintln!("unknown scale '{other}' (use smoke|default)");
                        std::process::exit(2);
                    }
                };
                i += 1;
            }
            "--out" => {
                i += 1;
                out_dir = args.get(i).cloned().unwrap_or(out_dir);
                i += 1;
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(seed);
                i += 1;
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--exp <id>... | --exp all] [--scale smoke|default] \
                     [--out DIR] [--seed N]\nids: {}",
                    ALL_EXPERIMENTS.join(" ")
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }

    if exps.is_empty() || exps.iter().any(|e| e == "all") {
        exps = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    let mut cfg = ExpConfig::new(scale);
    cfg.out_dir = out_dir.into();
    cfg.seed = seed;

    println!(
        "scap experiments | scale={} trace={}MB out={}",
        cfg.scale.name,
        cfg.scale.trace_bytes >> 20,
        cfg.out_dir.display()
    );

    let mut produced = Vec::new();
    for id in &exps {
        let t0 = Instant::now();
        match run_experiment(id, &cfg) {
            Some(results) => {
                for r in &results {
                    println!("\n{}", r.to_table());
                    if let Err(e) = r.write(&cfg.out_dir) {
                        eprintln!("warning: could not write {}: {e}", r.name);
                    }
                }
                produced.extend(results);
                println!("[{id} done in {:.1}s]", t0.elapsed().as_secs_f64());
            }
            None => eprintln!(
                "unknown experiment '{id}' (ids: {})",
                ALL_EXPERIMENTS.join(" ")
            ),
        }
    }

    match scap_bench::write_bench_summary(&cfg, &produced) {
        Ok(path) => println!("summary: {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_summary.json: {e}"),
    }
    match scap_bench::append_trajectory(&cfg, &produced) {
        Ok(path) => println!("trajectory: {}", path.display()),
        Err(e) => eprintln!("warning: could not append trajectory.jsonl: {e}"),
    }
}
