//! The archive reader: query the sidecar index without touching payload
//! segments, fetch payloads on demand, verify on-disk integrity, and
//! export matched streams back to pcap.

use crate::format::{
    parse_segment_file_name, read_extent, scan_index, scan_segment, IndexEntry, IndexRecord,
    INDEX_FILE,
};
use crate::StoreError;
use scap::StreamUid;
use scap_filter::{Filter, FilterError};
use scap_trace::pcap::write_file_with_snaplen;
use scap_trace::Packet;
use scap_wire::{FlowKey, IpAddrBytes, PacketBuilder, TcpFlags, Transport};
use std::collections::{BTreeMap, HashSet};
use std::io::Write;
use std::path::PathBuf;

/// Payload bytes per synthesized packet on pcap export.
const EXPORT_MTU: usize = 1400;

/// Read-only access to an archive directory. Opening never modifies the
/// files: a torn tail left by a crashed writer is simply ignored (and
/// reported by [`StoreReader::verify`]); run writer-side recovery to
/// actually truncate it.
pub struct StoreReader {
    dir: PathBuf,
    records: BTreeMap<StreamUid, IndexRecord>,
    index_torn_bytes: u64,
}

impl StoreReader {
    /// Open the archive at `dir`, loading the sidecar index (tombstones
    /// applied, torn tail skipped).
    pub fn open(dir: impl Into<PathBuf>) -> Result<StoreReader, StoreError> {
        let dir = dir.into();
        let idx_path = dir.join(INDEX_FILE);
        let mut records = BTreeMap::new();
        let mut index_torn_bytes = 0;
        if idx_path.exists() {
            let scan = scan_index(&idx_path)?;
            index_torn_bytes = scan.torn_bytes;
            for e in scan.entries {
                match e {
                    IndexEntry::Stream(r) => {
                        records.insert(r.uid, *r);
                    }
                    IndexEntry::Tombstone(uid) => {
                        records.remove(&uid);
                    }
                }
            }
        }
        Ok(StoreReader {
            dir,
            records,
            index_torn_bytes,
        })
    }

    /// Number of live (non-tombstoned) streams in the index.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the archive holds no live streams.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate all live records in uid order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &IndexRecord> {
        self.records.values()
    }

    /// Point lookup by stream uid.
    pub fn get(&self, uid: StreamUid) -> Option<&IndexRecord> {
        self.records.get(&uid)
    }

    /// 5-tuple point lookup: matches the key in either orientation, so
    /// the caller does not need to know the canonical direction.
    pub fn lookup(&self, key: &FlowKey) -> Vec<&IndexRecord> {
        let rev = key.reversed();
        self.records
            .values()
            .filter(|r| r.key == *key || r.key == rev)
            .collect()
    }

    /// Streams whose lifetime `[first_ts_ns, last_ts_ns]` overlaps the
    /// inclusive range `[since_ns, until_ns]`.
    pub fn time_range(&self, since_ns: u64, until_ns: u64) -> Vec<&IndexRecord> {
        self.records
            .values()
            .filter(|r| r.first_ts_ns <= until_ns && r.last_ts_ns >= since_ns)
            .collect()
    }

    /// Evaluate a `scap-filter` BPF expression against the index — the
    /// same key-level semantics the live engine applies to streams
    /// (either orientation matches), without touching payload segments.
    pub fn query(&self, expr: &str) -> Result<Vec<&IndexRecord>, FilterError> {
        let f = Filter::new(expr)?;
        Ok(self
            .records
            .values()
            .filter(|r| f.matches_key(&r.key) || f.matches_key(&r.key.reversed()))
            .collect())
    }

    /// Fetch a stream's reassembled payload, per direction, re-checking
    /// frame headers and payload CRCs on the way.
    pub fn read_stream(&self, uid: StreamUid) -> Result<[Vec<u8>; 2], StoreError> {
        let r = self
            .records
            .get(&uid)
            .ok_or_else(|| StoreError::Corrupt(format!("no stream {uid} in index")))?;
        let mut out = [Vec::new(), Vec::new()];
        for (di, e) in r.extents.iter().enumerate() {
            if e.len > 0 {
                out[di] = read_extent(&self.dir, uid, di as u8, e)?;
            }
        }
        Ok(out)
    }

    /// Full integrity check: every segment frame validated, every index
    /// record's extents resolved, torn tails and orphan frames counted.
    pub fn verify(&self) -> Result<VerifyReport, StoreError> {
        let mut report = VerifyReport {
            records: self.records.len() as u64,
            index_torn_bytes: self.index_torn_bytes,
            ..VerifyReport::default()
        };
        // Scan every segment, collecting valid frames.
        let mut names: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if let Some(id) = entry.file_name().to_str().and_then(parse_segment_file_name) {
                names.push((id, entry.path()));
            }
        }
        names.sort();
        let mut frames: BTreeMap<(u64, u64), (StreamUid, u8, u64)> = BTreeMap::new();
        for (id, path) in names {
            report.segments += 1;
            report.segment_bytes_total += std::fs::metadata(&path)?.len();
            let scan = scan_segment(&path)?;
            if scan.id != id {
                report
                    .errors
                    .push(format!("{}: header id {} != name", path.display(), scan.id));
            }
            report.frames_valid += scan.frames.len() as u64;
            report.segment_torn_bytes += scan.torn_bytes;
            for fr in scan.frames {
                frames.insert((id, fr.offset), (fr.uid, fr.dir, fr.len));
            }
        }
        // Resolve every record extent against the valid frames.
        let mut referenced: HashSet<(u64, u64)> = HashSet::new();
        for r in self.records.values() {
            for (di, e) in r.extents.iter().enumerate() {
                if e.len == 0 {
                    continue;
                }
                match frames.get(&(e.segment, e.offset)) {
                    Some(&(uid, dir, len)) if uid == r.uid && dir == di as u8 && len == e.len => {
                        referenced.insert((e.segment, e.offset));
                    }
                    _ => report.errors.push(format!(
                        "stream {}: extent dir {di} (segment {}, offset {}) unresolved",
                        r.uid, e.segment, e.offset
                    )),
                }
            }
        }
        report.orphan_frames = frames.keys().filter(|k| !referenced.contains(k)).count() as u64;
        Ok(report)
    }

    /// Export streams back to pcap, synthesizing packets from the
    /// archived payload (EXPORT_MTU-byte data packets, timestamps
    /// interpolated across each stream's recorded lifetime, truncated to
    /// `snaplen` with the true length kept in `orig_len`). Streams whose
    /// transport the packet builder cannot synthesize (non-TCP IPv6,
    /// exotic protocols) are skipped. Returns the packet count written.
    pub fn export_pcap<W: Write>(
        &self,
        uids: &[StreamUid],
        w: W,
        snaplen: u32,
    ) -> Result<u64, StoreError> {
        let mut packets: Vec<Packet> = Vec::new();
        for &uid in uids {
            let Some(r) = self.records.get(&uid) else {
                continue;
            };
            let data = self.read_stream(uid)?;
            let nchunks: u64 = data.iter().map(|d| d.chunks(EXPORT_MTU).len() as u64).sum();
            let span = r.last_ts_ns.saturating_sub(r.first_ts_ns);
            let step = span / nchunks.max(1);
            let mut i = 0u64;
            for (di, payload) in data.iter().enumerate() {
                let key = if di == 0 { r.key } else { r.key.reversed() };
                let mut seq = 0u64;
                for chunk in payload.chunks(EXPORT_MTU) {
                    let Some(frame) = build_frame(&key, seq as u32, chunk) else {
                        break; // unsynthesizable transport: skip stream
                    };
                    packets.push(Packet::new(r.first_ts_ns + i * step, frame));
                    seq += chunk.len() as u64;
                    i += 1;
                }
            }
        }
        packets.sort_by_key(|p| p.ts_ns);
        let n = packets.len() as u64;
        write_file_with_snaplen(w, &packets, snaplen)?;
        Ok(n)
    }
}

/// Build one synthetic data packet for `key`; `None` when the builder
/// has no encoding for the transport/family combination.
fn build_frame(key: &FlowKey, seq: u32, payload: &[u8]) -> Option<Vec<u8>> {
    let (sp, dp) = (key.src_port(), key.dst_port());
    match (key.src(), key.dst(), key.transport()) {
        (IpAddrBytes::V4(s), IpAddrBytes::V4(d), Transport::Tcp) => Some(PacketBuilder::tcp_v4(
            s,
            d,
            sp,
            dp,
            seq,
            0,
            TcpFlags(TcpFlags::PSH.0 | TcpFlags::ACK.0),
            payload,
        )),
        (IpAddrBytes::V4(s), IpAddrBytes::V4(d), Transport::Udp) => {
            Some(PacketBuilder::udp_v4(s, d, sp, dp, payload))
        }
        (IpAddrBytes::V6(s), IpAddrBytes::V6(d), Transport::Tcp) => Some(PacketBuilder::tcp_v6(
            s,
            d,
            sp,
            dp,
            seq,
            0,
            TcpFlags(TcpFlags::PSH.0 | TcpFlags::ACK.0),
            payload,
        )),
        _ => None,
    }
}

/// What [`StoreReader::verify`] found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Live index records.
    pub records: u64,
    /// Segment files present.
    pub segments: u64,
    /// Frames that validated (magic, bounds, CRC).
    pub frames_valid: u64,
    /// Valid frames no live record references (uncommitted seal tails
    /// and compaction leftovers — benign, reclaimed by compaction).
    pub orphan_frames: u64,
    /// Bytes past the last valid frame across all segments.
    pub segment_torn_bytes: u64,
    /// Bytes past the last valid record in the index.
    pub index_torn_bytes: u64,
    /// Total segment-file bytes on disk.
    pub segment_bytes_total: u64,
    /// Real corruption: records whose extents don't resolve, id
    /// mismatches.
    pub errors: Vec<String>,
}

impl VerifyReport {
    /// True when the archive is fully intact: no unresolved records and
    /// no torn tails awaiting recovery. Orphan frames are allowed — they
    /// are unreferenced space, not corruption.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty() && self.segment_torn_bytes == 0 && self.index_torn_bytes == 0
    }
}

impl core::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "records={} segments={} frames={} orphans={} torn_seg_bytes={} torn_idx_bytes={} seg_bytes={} errors={}",
            self.records,
            self.segments,
            self.frames_valid,
            self.orphan_frames,
            self.segment_torn_bytes,
            self.index_torn_bytes,
            self.segment_bytes_total,
            self.errors.len()
        )
    }
}
