//! Prioritized Packet Loss under overload (§2.2 / Fig. 9 of the paper).
//!
//! An overloaded single-worker monitor with two priority classes: port-80
//! streams are high priority, everything else low. The capture runs under
//! the discrete-time performance engine with the stream-memory arena
//! deliberately undersized, so PPL has to shed load — and it sheds
//! low-priority tails first, keeping the high-priority class intact.
//!
//! Run with: `cargo run --release --example priorities`

use scap::apps::PatternMatchApp;
use scap::{ScapConfig, ScapKernel, ScapSimStack};
use scap_filter::Filter;
use scap_memory::PplConfig;
use scap_patterns::{generate_web_attack_patterns, AhoCorasick};
use scap_sim::{Engine, EngineConfig};
use scap_trace::gen::{CampusMix, CampusMixConfig};
use scap_trace::replay::{natural_rate_bps, RateReplay};

fn main() {
    let pats = generate_web_attack_patterns(500, 3);
    let ac = AhoCorasick::new(&pats, false);
    let trace = CampusMix::new(CampusMixConfig::sized(11, 24 << 20)).collect_all();
    let natural = natural_rate_bps(&trace);

    println!(
        "{:>10}  {:>18}  {:>18}",
        "rate", "low-prio drop %", "high-prio drop %"
    );
    for gbps in [1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0] {
        let mut cfg = ScapConfig {
            memory_bytes: 12 << 20, // deliberately tight
            inactivity_timeout_ns: 500_000_000,
            flush_timeout_ns: 5_000_000,
            ppl: PplConfig {
                base_threshold: 0.5,
                num_priorities: 2,
                overload_cutoff: Some(64 << 10),
            },
            ..ScapConfig::default()
        };
        // scap_set_stream_priority, policy form: port-80 streams matter.
        cfg.priorities
            .classes
            .push((Filter::new("port 80").expect("valid filter"), 1));

        let replayed: Vec<_> =
            RateReplay::new(trace.iter().cloned(), natural, gbps * 1e9).collect();
        let mut stack = ScapSimStack::new(ScapKernel::new(cfg), PatternMatchApp::new(ac.clone()));
        Engine::new(EngineConfig::default()).run(replayed, &mut stack);

        let s = stack.kernel().stats();
        let pct = |d: u64, w: u64| {
            if w == 0 {
                0.0
            } else {
                100.0 * d as f64 / w as f64
            }
        };
        println!(
            "{:>7.1} G  {:>17.1}%  {:>17.1}%",
            gbps,
            pct(s.dropped_by_priority[0], s.wire_by_priority[0]),
            pct(s.dropped_by_priority[1], s.wire_by_priority[1]),
        );
    }
    println!("\nPPL drops low-priority packets (and long-stream tails beyond the");
    println!("overload cutoff) first; high-priority port-80 streams survive rates");
    println!("well past the point where low-priority traffic is being shed.");
}
