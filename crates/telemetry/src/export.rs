//! Hand-rolled exporters: JSON-lines, CSV, aligned human table, and a
//! JSON-lines parser for round-trip verification. No serde — the formats
//! are fixed and tiny, and the repository's result writers are all
//! hand-rolled for the same reason.
//!
//! Output ordering is fully deterministic: shards ascending, then the
//! declaration order of [`Metric`]/[`Gauge`]/[`Stage`]. Zero-valued
//! counters and gauges are omitted from JSON-lines (the parser restores
//! them from the `meta` line) but kept in CSV so every run of the same
//! configuration has the same row set.

use crate::hist::{HistSnapshot, BUCKETS};
use crate::registry::{ShardSnapshot, Snapshot};
use crate::sampler::Sampler;
use crate::{Gauge, Metric, Stage};

/// Serialize a snapshot as JSON-lines: one `meta` line, then one line
/// per non-zero counter, gauge and non-empty stage histogram.
pub fn to_jsonl(s: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"type\":\"meta\",\"shards\":{}}}\n",
        s.shards.len()
    ));
    for (i, shard) in s.shards.iter().enumerate() {
        for m in Metric::ALL {
            let v = shard.counters[m.idx()];
            if v != 0 {
                out.push_str(&format!(
                    "{{\"type\":\"counter\",\"shard\":{i},\"name\":\"{}\",\"value\":{v}}}\n",
                    m.name()
                ));
            }
        }
        for g in Gauge::ALL {
            let v = shard.gauges[g.idx()];
            if v != 0 {
                out.push_str(&format!(
                    "{{\"type\":\"gauge\",\"shard\":{i},\"name\":\"{}\",\"value\":{v}}}\n",
                    g.name()
                ));
            }
        }
        for st in Stage::ALL {
            let h = &shard.stages[st.idx()];
            if h.count() == 0 {
                continue;
            }
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!(
                "{{\"type\":\"stage\",\"shard\":{i},\"name\":\"{}\",\"sum\":{},\"buckets\":[{}]}}\n",
                st.name(),
                h.sum,
                buckets.join(",")
            ));
        }
    }
    out
}

/// Parse the output of [`to_jsonl`] back into a snapshot. Only the exact
/// format this module emits is accepted; anything else is an error.
pub fn from_jsonl(text: &str) -> Result<Snapshot, String> {
    let mut snap: Option<Snapshot> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: {line}", lineno + 1);
        let ty = json_str(line, "type").ok_or_else(|| err("missing type"))?;
        if ty == "meta" {
            let shards = json_u64(line, "shards").ok_or_else(|| err("missing shards"))? as usize;
            snap = Some(Snapshot {
                shards: (0..shards.max(1))
                    .map(|_| ShardSnapshot::default())
                    .collect(),
            });
            continue;
        }
        let snap = snap.as_mut().ok_or_else(|| err("record before meta"))?;
        let shard = json_u64(line, "shard").ok_or_else(|| err("missing shard"))? as usize;
        let name = json_str(line, "name").ok_or_else(|| err("missing name"))?;
        let dst = snap
            .shards
            .get_mut(shard)
            .ok_or_else(|| err("shard out of range"))?;
        match ty.as_str() {
            "counter" => {
                let m = Metric::from_name(&name).ok_or_else(|| err("unknown counter"))?;
                dst.counters[m.idx()] =
                    json_u64(line, "value").ok_or_else(|| err("missing value"))?;
            }
            "gauge" => {
                let g = Gauge::from_name(&name).ok_or_else(|| err("unknown gauge"))?;
                dst.gauges[g.idx()] =
                    json_u64(line, "value").ok_or_else(|| err("missing value"))?;
            }
            "stage" => {
                let st = Stage::from_name(&name).ok_or_else(|| err("unknown stage"))?;
                let sum = json_u64(line, "sum").ok_or_else(|| err("missing sum"))?;
                let buckets = json_u64_array(line, "buckets").ok_or_else(|| err("bad buckets"))?;
                if buckets.len() != BUCKETS {
                    return Err(err("wrong bucket count"));
                }
                let h = &mut dst.stages[st.idx()];
                h.sum = sum;
                h.buckets.copy_from_slice(&buckets);
            }
            _ => return Err(err("unknown record type")),
        }
    }
    snap.ok_or_else(|| "no meta line".to_string())
}

/// Serialize a snapshot as CSV: `kind,shard,name,field,value` rows, all
/// counters and gauges (including zeros) plus count/sum/p50/p99 per
/// stage histogram. Byte-identical across runs of a deterministic
/// capture — the sim-mode determinism test compares exactly this.
pub fn to_csv(s: &Snapshot) -> String {
    let mut out = String::from("kind,shard,name,field,value\n");
    for (i, shard) in s.shards.iter().enumerate() {
        for m in Metric::ALL {
            out.push_str(&format!(
                "counter,{i},{},value,{}\n",
                m.name(),
                shard.counters[m.idx()]
            ));
        }
        for g in Gauge::ALL {
            out.push_str(&format!(
                "gauge,{i},{},value,{}\n",
                g.name(),
                shard.gauges[g.idx()]
            ));
        }
        for st in Stage::ALL {
            let h = &shard.stages[st.idx()];
            let hs = HistSnapshot {
                buckets: h.buckets,
                sum: h.sum,
            };
            out.push_str(&format!("stage,{i},{},count,{}\n", st.name(), hs.count()));
            out.push_str(&format!("stage,{i},{},sum,{}\n", st.name(), hs.sum));
            out.push_str(&format!(
                "stage,{i},{},p50,{}\n",
                st.name(),
                hs.quantile(0.50)
            ));
            out.push_str(&format!(
                "stage,{i},{},p99,{}\n",
                st.name(),
                hs.quantile(0.99)
            ));
        }
    }
    out
}

/// Render a snapshot as an aligned human-readable table: aggregate
/// counters, worst-shard gauges, and per-stage latency summaries.
pub fn to_table(s: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:>16}\ncounters ({} shards)\n",
        "telemetry",
        "",
        s.shards.len()
    ));
    for m in Metric::ALL {
        let v = s.total(m);
        if v != 0 {
            out.push_str(&format!("  {:<24} {:>16}\n", m.name(), v));
        }
    }
    out.push_str("gauges (max across shards)\n");
    for g in Gauge::ALL {
        out.push_str(&format!("  {:<24} {:>16}\n", g.name(), s.gauge_max(g)));
    }
    out.push_str(&format!(
        "stages {:<19} {:>12} {:>12} {:>12} {:>12}\n",
        "", "count", "mean", "p50", "p99"
    ));
    for st in Stage::ALL {
        let h = s.stage(st);
        out.push_str(&format!(
            "  {:<24} {:>12} {:>12.0} {:>12} {:>12}\n",
            st.name(),
            h.count(),
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.99)
        ));
    }
    out
}

/// Serialize a sampler's time series as CSV: one column per gauge, one
/// row per sample.
pub fn series_to_csv(sampler: &Sampler) -> String {
    let mut out = String::from("t_ns");
    for g in Gauge::ALL {
        out.push(',');
        out.push_str(g.name());
    }
    out.push('\n');
    for p in sampler.points() {
        out.push_str(&p.t_ns.to_string());
        for v in p.gauges {
            out.push(',');
            out.push_str(&v.to_string());
        }
        out.push('\n');
    }
    out
}

/// Extract a `"key":"string"` field from a single JSON-lines record.
fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

/// Extract a `"key":number` field from a single JSON-lines record.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Extract a `"key":[n,n,...]` array field.
fn json_u64_array(line: &str, key: &str) -> Option<Vec<u64>> {
    let pat = format!("\"{key}\":[");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find(']')?;
    line[start..start + end]
        .split(',')
        .map(|t| t.trim().parse().ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::PlainRegistry;

    fn populated() -> Snapshot {
        let r = PlainRegistry::new(3);
        r.add(0, Metric::WirePackets, 1000);
        r.add(0, Metric::WireBytes, 840_000);
        r.add(1, Metric::KernelHashProbes, 42);
        r.add(2, Metric::WorkerEventsHandled, 7);
        r.gauge_set(0, Gauge::GovernorLevel, 3);
        r.gauge_set(2, Gauge::EventBacklog, 19);
        for v in [0u64, 1, 5, 900, 1 << 40] {
            r.record_stage(1, Stage::Kernel, v);
            r.record_stage(2, Stage::Worker, v + 3);
        }
        r.snapshot()
    }

    /// Satellite: exporter round-trip — parsing the JSON-lines output
    /// reconstructs the registry state exactly.
    #[test]
    fn jsonl_round_trip_is_exact() {
        let snap = populated();
        let text = to_jsonl(&snap);
        let back = from_jsonl(&text).expect("parse-back failed");
        assert_eq!(back, snap);
    }

    #[test]
    fn jsonl_round_trip_of_empty_registry() {
        let snap = PlainRegistry::new(2).snapshot();
        assert_eq!(from_jsonl(&to_jsonl(&snap)).unwrap(), snap);
    }

    #[test]
    fn from_jsonl_rejects_garbage() {
        assert!(from_jsonl("").is_err());
        assert!(from_jsonl("{\"type\":\"counter\",\"shard\":0}").is_err());
        let bad_name =
            "{\"type\":\"meta\",\"shards\":1}\n{\"type\":\"counter\",\"shard\":0,\"name\":\"nope\",\"value\":1}";
        assert!(from_jsonl(bad_name).is_err());
        let bad_shard =
            "{\"type\":\"meta\",\"shards\":1}\n{\"type\":\"counter\",\"shard\":9,\"name\":\"wire_packets\",\"value\":1}";
        assert!(from_jsonl(bad_shard).is_err());
    }

    #[test]
    fn csv_and_table_are_deterministic_and_complete() {
        let snap = populated();
        let a = to_csv(&snap);
        let b = to_csv(&snap);
        assert_eq!(a, b);
        // Every metric name appears even when zero (stable row set).
        for m in Metric::ALL {
            assert!(a.contains(m.name()), "CSV missing {}", m.name());
        }
        let t = to_table(&snap);
        assert!(t.contains("wire_packets"));
        assert!(t.contains("governor_level"));
        assert!(t.contains("p99"));
    }

    #[test]
    fn series_csv_shape() {
        let mut s = Sampler::new(5, 16);
        s.record(0, [1; crate::Gauge::COUNT]);
        s.record(5, [2; crate::Gauge::COUNT]);
        let csv = series_to_csv(&s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("t_ns,ring_fill_permille,"));
        assert!(lines[1].starts_with("0,1,1,"));
        assert!(lines[2].starts_with("5,2,2,"));
    }
}
