//! RX descriptor rings.
//!
//! A fixed-capacity FIFO standing in for a hardware descriptor ring: when
//! the host is too slow to replenish descriptors, arriving frames are
//! dropped at the NIC — the overload mechanism every drop-rate figure in
//! the paper ultimately measures.

use std::collections::VecDeque;

/// A bounded FIFO of host-side packet handles.
#[derive(Debug)]
pub struct RxQueue<T> {
    ring: VecDeque<T>,
    capacity: usize,
    /// Total accepted items.
    pub enqueued: u64,
    /// Total rejected (ring-full) items.
    pub dropped: u64,
    /// High-water mark of occupancy.
    pub max_depth: usize,
}

impl<T> RxQueue<T> {
    /// A ring with `capacity` descriptors.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        RxQueue {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            enqueued: 0,
            dropped: 0,
            max_depth: 0,
        }
    }

    /// Try to enqueue; `false` means the ring was full and the item was
    /// dropped.
    pub fn push(&mut self, item: T) -> bool {
        if self.ring.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        self.ring.push_back(item);
        self.enqueued += 1;
        self.max_depth = self.max_depth.max(self.ring.len());
        true
    }

    /// Dequeue the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.ring.pop_front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupancy as a fraction of capacity.
    pub fn fill_level(&self) -> f64 {
        self.ring.len() as f64 / self.capacity as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = RxQueue::new(4);
        for i in 0..4 {
            assert!(q.push(i));
        }
        assert!(!q.push(99));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(4));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
        assert_eq!(q.enqueued, 5);
        assert_eq!(q.dropped, 1);
        assert_eq!(q.max_depth, 4);
    }

    #[test]
    fn fill_level_tracks_occupancy() {
        let mut q = RxQueue::new(10);
        assert_eq!(q.fill_level(), 0.0);
        for i in 0..5 {
            q.push(i);
        }
        assert!((q.fill_level() - 0.5).abs() < 1e-9);
        assert!(!q.is_empty());
        assert_eq!(q.capacity(), 10);
        assert_eq!(q.len(), 5);
    }
}
