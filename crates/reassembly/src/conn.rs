//! TCP connection tracking: the state machine that anchors the two
//! per-direction reassemblers, observes the three-way handshake, and
//! detects termination (FIN exchange, RST).

use crate::dir::{DataOutcome, DirReassembler, DirState, ReasmConfig};
use crate::{ReasmFlags, ReassemblyMode};
use scap_wire::{Direction, TcpFlags, TcpMeta};

/// Connection lifecycle phase as stored in a checkpoint (the public
/// mirror of the private state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConnPhase {
    /// Nothing or only a SYN seen.
    #[default]
    Opening,
    /// Handshake complete (or midstream pickup).
    Established,
    /// Closed by a FIN exchange.
    ClosedFin,
    /// Closed by a RST.
    ClosedRst,
}

/// A serializable snapshot of a whole connection: lifecycle phase plus
/// both directions' reassembly state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConnCheckpoint {
    /// Lifecycle phase.
    pub phase: ConnPhase,
    /// Which canonical direction initiated the connection, if known.
    pub client_dir: Option<Direction>,
    /// FIN observed per canonical direction.
    pub fin_seen: [bool; 2],
    /// Per-direction reassembly state, indexed by `Direction::index()`.
    pub dirs: [DirState; 2],
}

/// Connection lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Nothing or only a SYN seen.
    Opening,
    /// Handshake complete (or midstream pickup).
    Established,
    /// Closed; no more data expected.
    Closed(CloseKind),
}

/// How a connection ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseKind {
    /// Both sides sent FIN.
    Fin,
    /// A RST aborted the connection.
    Rst,
}

/// Per-segment outcome, for the kernel module's accounting and events.
#[derive(Debug, Clone, Copy, Default)]
pub struct SegOutcome {
    /// Payload accounting from the direction reassembler.
    pub data: DataOutcome,
    /// This segment completed the three-way handshake.
    pub established_now: bool,
    /// This segment closed the connection.
    pub closed_now: Option<CloseKind>,
    /// The segment carried a SYN we used to anchor a direction.
    pub syn_seen: bool,
}

/// A tracked TCP connection (both directions).
#[derive(Debug)]
pub struct TcpConn {
    state: ConnState,
    dirs: [DirReassembler; 2],
    /// Which canonical direction sent the SYN (client side), if seen.
    client_dir: Option<Direction>,
    fin_seen: [bool; 2],
    mode: ReassemblyMode,
}

impl TcpConn {
    /// Track a new connection with per-direction config.
    pub fn new(cfg: ReasmConfig) -> Self {
        TcpConn {
            state: ConnState::Opening,
            dirs: [DirReassembler::new(cfg), DirReassembler::new(cfg)],
            client_dir: None,
            fin_seen: [false, false],
            mode: cfg.mode,
        }
    }

    /// Snapshot the connection for a checkpoint.
    pub fn export_state(&self) -> ConnCheckpoint {
        ConnCheckpoint {
            phase: match self.state {
                ConnState::Opening => ConnPhase::Opening,
                ConnState::Established => ConnPhase::Established,
                ConnState::Closed(CloseKind::Fin) => ConnPhase::ClosedFin,
                ConnState::Closed(CloseKind::Rst) => ConnPhase::ClosedRst,
            },
            client_dir: self.client_dir,
            fin_seen: self.fin_seen,
            dirs: [self.dirs[0].export_state(), self.dirs[1].export_state()],
        }
    }

    /// Rebuild a connection from a checkpoint, re-anchoring both
    /// directions at their committed offsets and arming the resume-gap
    /// skip so the blackout hole does not stall delivery.
    pub fn restore(cfg: ReasmConfig, ck: &ConnCheckpoint) -> Self {
        let mut dirs = [
            DirReassembler::restore(cfg, &ck.dirs[0]),
            DirReassembler::restore(cfg, &ck.dirs[1]),
        ];
        for d in &mut dirs {
            d.arm_resume_skip();
        }
        TcpConn {
            state: match ck.phase {
                ConnPhase::Opening => ConnState::Opening,
                ConnPhase::Established => ConnState::Established,
                ConnPhase::ClosedFin => ConnState::Closed(CloseKind::Fin),
                ConnPhase::ClosedRst => ConnState::Closed(CloseKind::Rst),
            },
            dirs,
            client_dir: ck.client_dir,
            fin_seen: ck.fin_seen,
            mode: cfg.mode,
        }
    }

    /// The direction that initiated the connection, when known.
    pub fn client_dir(&self) -> Option<Direction> {
        self.client_dir
    }

    /// True once the handshake completed (or data forced establishment).
    pub fn established(&self) -> bool {
        matches!(self.state, ConnState::Established)
    }

    /// True when the connection has terminated.
    pub fn closed(&self) -> Option<CloseKind> {
        match self.state {
            ConnState::Closed(k) => Some(k),
            _ => None,
        }
    }

    /// Combined error flags of both directions.
    pub fn flags(&self) -> ReasmFlags {
        ReasmFlags(self.dirs[0].flags.0 | self.dirs[1].flags.0)
    }

    /// Access a direction's reassembler.
    pub fn dir(&self, d: Direction) -> &DirReassembler {
        &self.dirs[d.index()]
    }

    /// Mutable access to a direction's reassembler.
    pub fn dir_mut(&mut self, d: Direction) -> &mut DirReassembler {
        &mut self.dirs[d.index()]
    }

    /// Process one segment arriving in canonical direction `dir`.
    /// In-order payload for that direction goes to `sink`.
    pub fn on_segment(
        &mut self,
        dir: Direction,
        meta: &TcpMeta,
        payload: &[u8],
        sink: &mut impl FnMut(u64, &[u8]),
    ) -> SegOutcome {
        let mut out = SegOutcome::default();
        let flags = meta.flags;

        // RST aborts immediately; any payload on it is ignored.
        if flags.contains(TcpFlags::RST) {
            if self.state != ConnState::Closed(CloseKind::Rst) {
                let was_closed = matches!(self.state, ConnState::Closed(_));
                self.state = ConnState::Closed(CloseKind::Rst);
                if !was_closed {
                    out.closed_now = Some(CloseKind::Rst);
                }
            }
            return out;
        }

        if flags.contains(TcpFlags::SYN) {
            out.syn_seen = true;
            let d = self.dirs[dir.index()].anchored();
            if !d {
                // SYN consumes one sequence number: data starts at seq+1.
                self.dirs[dir.index()].set_base(meta.seq.wrapping_add(1));
            }
            if flags.contains(TcpFlags::ACK) {
                // SYN-ACK: handshake effectively complete for monitoring.
                if self.state == ConnState::Opening {
                    self.state = ConnState::Established;
                    out.established_now = true;
                }
                if self.client_dir.is_none() {
                    self.client_dir = Some(dir.flip());
                }
            } else {
                if self.client_dir.is_none() {
                    self.client_dir = Some(dir);
                }
            }
            if !payload.is_empty() {
                // TCP fast-open style data on SYN: the paper's
                // normalization ignores it and flags the stream.
                self.dirs[dir.index()].flags.set(ReasmFlags::DATA_ON_SYN);
            }
            return out;
        }

        if let ConnState::Closed(_) = self.state {
            // Late data after close: count as duplicate traffic.
            out.data.duplicate = payload.len() as u64;
            return out;
        }

        if !payload.is_empty() {
            // Data without an observed handshake: midstream pickup. In
            // strict mode this is flagged (and the paper's strict
            // semantics would also let the application reject it); fast
            // mode continues best-effort either way.
            if self.state == ConnState::Opening && self.mode == ReassemblyMode::Strict {
                self.dirs[dir.index()]
                    .flags
                    .set(ReasmFlags::INCOMPLETE_HANDSHAKE);
            }
            if self.state == ConnState::Opening {
                self.state = ConnState::Established;
                out.established_now = true;
            }
            out.data = self.dirs[dir.index()].on_data(meta.seq, payload, sink);
        } else if self.state == ConnState::Opening && flags.contains(TcpFlags::ACK) {
            // The final ACK of the handshake.
            if self.dirs[Direction::Forward.index()].anchored()
                || self.dirs[Direction::Reverse.index()].anchored()
            {
                self.state = ConnState::Established;
                out.established_now = true;
            }
        }

        if flags.contains(TcpFlags::FIN) {
            self.fin_seen[dir.index()] = true;
            if self.fin_seen[0] && self.fin_seen[1] {
                self.state = ConnState::Closed(CloseKind::Fin);
                out.closed_now = Some(CloseKind::Fin);
            }
        }
        out
    }

    /// Flush both directions (inactivity expiry or forced teardown).
    /// Returns bytes flushed per direction.
    pub fn flush(&mut self, mut sink: impl FnMut(Direction, u64, &[u8])) -> [u64; 2] {
        let mut out = [0u64; 2];
        for d in [Direction::Forward, Direction::Reverse] {
            out[d.index()] = self.dirs[d.index()].flush(&mut |o, b| sink(d, o, b));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(seq: u32, ack: u32, flags: TcpFlags) -> TcpMeta {
        TcpMeta {
            seq,
            ack,
            flags,
            window: 0xFFFF,
        }
    }

    fn conn() -> TcpConn {
        TcpConn::new(ReasmConfig::for_mode(ReassemblyMode::Fast))
    }

    /// Drive a complete handshake; client is Forward.
    fn handshake(c: &mut TcpConn, isn_c: u32, isn_s: u32) {
        let mut sink = |_: u64, _: &[u8]| {};
        let o1 = c.on_segment(
            Direction::Forward,
            &meta(isn_c, 0, TcpFlags::SYN),
            b"",
            &mut sink,
        );
        assert!(o1.syn_seen);
        let o2 = c.on_segment(
            Direction::Reverse,
            &meta(isn_s, isn_c + 1, TcpFlags::SYN | TcpFlags::ACK),
            b"",
            &mut sink,
        );
        assert!(o2.established_now);
        c.on_segment(
            Direction::Forward,
            &meta(isn_c + 1, isn_s + 1, TcpFlags::ACK),
            b"",
            &mut sink,
        );
    }

    #[test]
    fn handshake_establishes_and_anchors() {
        let mut c = conn();
        handshake(&mut c, 1000, 9000);
        assert!(c.established());
        assert_eq!(c.client_dir(), Some(Direction::Forward));
        assert!(c.flags().is_clean());

        // Data in both directions reassembles from ISN+1.
        let mut fwd = Vec::new();
        c.on_segment(
            Direction::Forward,
            &meta(1001, 9001, TcpFlags::ACK | TcpFlags::PSH),
            b"GET /",
            &mut |_, d| fwd.extend_from_slice(d),
        );
        assert_eq!(fwd, b"GET /");
        let mut rev = Vec::new();
        c.on_segment(
            Direction::Reverse,
            &meta(9001, 1006, TcpFlags::ACK),
            b"200 OK",
            &mut |_, d| rev.extend_from_slice(d),
        );
        assert_eq!(rev, b"200 OK");
    }

    #[test]
    fn fin_exchange_closes_once() {
        let mut c = conn();
        handshake(&mut c, 0, 0);
        let mut sink = |_: u64, _: &[u8]| {};
        let o1 = c.on_segment(
            Direction::Forward,
            &meta(1, 1, TcpFlags::FIN | TcpFlags::ACK),
            b"",
            &mut sink,
        );
        assert!(o1.closed_now.is_none());
        assert!(c.closed().is_none());
        let o2 = c.on_segment(
            Direction::Reverse,
            &meta(1, 2, TcpFlags::FIN | TcpFlags::ACK),
            b"",
            &mut sink,
        );
        assert_eq!(o2.closed_now, Some(CloseKind::Fin));
        assert_eq!(c.closed(), Some(CloseKind::Fin));
    }

    #[test]
    fn rst_closes_immediately() {
        let mut c = conn();
        handshake(&mut c, 0, 0);
        let mut sink = |_: u64, _: &[u8]| {};
        let o = c.on_segment(
            Direction::Reverse,
            &meta(1, 1, TcpFlags::RST),
            b"",
            &mut sink,
        );
        assert_eq!(o.closed_now, Some(CloseKind::Rst));
        // A second RST does not re-close.
        let o2 = c.on_segment(
            Direction::Reverse,
            &meta(1, 1, TcpFlags::RST),
            b"",
            &mut sink,
        );
        assert!(o2.closed_now.is_none());
    }

    #[test]
    fn data_after_close_is_counted_not_delivered() {
        let mut c = conn();
        handshake(&mut c, 0, 0);
        let mut sink = |_: u64, _: &[u8]| panic!("no delivery after close");
        c.on_segment(
            Direction::Forward,
            &meta(1, 1, TcpFlags::RST),
            b"",
            &mut |_, _| {},
        );
        let o = c.on_segment(
            Direction::Forward,
            &meta(1, 1, TcpFlags::ACK),
            b"late",
            &mut sink,
        );
        assert_eq!(o.data.duplicate, 4);
    }

    #[test]
    fn data_on_syn_is_flagged_and_ignored() {
        let mut c = conn();
        let mut sink = |_: u64, _: &[u8]| panic!("SYN payload must be ignored");
        c.on_segment(
            Direction::Forward,
            &meta(77, 0, TcpFlags::SYN),
            b"early",
            &mut sink,
        );
        assert!(c.flags().contains(ReasmFlags::DATA_ON_SYN));
    }

    #[test]
    fn midstream_pickup_established_with_flag_in_strict() {
        let mut c = TcpConn::new(ReasmConfig::for_mode(ReassemblyMode::Strict));
        let mut got = Vec::new();
        let o = c.on_segment(
            Direction::Forward,
            &meta(500, 0, TcpFlags::ACK),
            b"mid",
            &mut |_, d| got.extend_from_slice(d),
        );
        assert!(o.established_now);
        assert_eq!(got, b"mid");
        assert!(c.flags().contains(ReasmFlags::INCOMPLETE_HANDSHAKE));
    }

    #[test]
    fn syn_retransmission_does_not_reanchor() {
        let mut c = conn();
        let mut sink = |_: u64, _: &[u8]| {};
        c.on_segment(
            Direction::Forward,
            &meta(100, 0, TcpFlags::SYN),
            b"",
            &mut sink,
        );
        // Retransmitted SYN with a *different* seq must not move the base.
        c.on_segment(
            Direction::Forward,
            &meta(100, 0, TcpFlags::SYN),
            b"",
            &mut sink,
        );
        let mut got = Vec::new();
        c.on_segment(
            Direction::Reverse,
            &meta(200, 101, TcpFlags::SYN | TcpFlags::ACK),
            b"",
            &mut |_, d| got.extend_from_slice(d),
        );
        c.on_segment(
            Direction::Forward,
            &meta(101, 201, TcpFlags::ACK),
            b"abc",
            &mut |_, d| got.extend_from_slice(d),
        );
        assert_eq!(got, b"abc");
    }

    #[test]
    fn server_identified_from_synack_when_syn_missed() {
        let mut c = conn();
        let mut sink = |_: u64, _: &[u8]| {};
        // Only the SYN-ACK is observed (asymmetric capture start).
        let o = c.on_segment(
            Direction::Reverse,
            &meta(300, 100, TcpFlags::SYN | TcpFlags::ACK),
            b"",
            &mut sink,
        );
        assert!(o.established_now);
        assert_eq!(c.client_dir(), Some(Direction::Forward));
    }

    #[test]
    fn flush_reports_direction() {
        let mut c = conn();
        handshake(&mut c, 0, 0);
        let mut sink = |_: u64, _: &[u8]| {};
        // Leave a hole so data stays buffered.
        c.on_segment(
            Direction::Forward,
            &meta(5, 1, TcpFlags::ACK),
            b"later",
            &mut sink,
        );
        let mut flushed = Vec::new();
        let n = c.flush(|d, _, b| flushed.push((d, b.to_vec())));
        assert_eq!(n[Direction::Forward.index()], 5);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].0, Direction::Forward);
    }
}
