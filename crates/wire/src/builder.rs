//! Packet construction for the traffic generator and tests.
//!
//! Builders always produce well-formed frames with correct checksums, so
//! anything the generator emits survives the strict parsers. Each builder
//! returns an owned `Vec<u8>` containing a complete Ethernet frame.

use crate::checksum;
use crate::ethernet::{self, EtherType, MacAddr};
use crate::tcp::{self, TcpFlags, TcpHeader};
use crate::{icmp, ip_proto, ipv4, ipv6, udp};

/// Default MAC addresses used by the synthetic workloads. The monitoring
/// stacks never key on L2 addresses, so fixed values are fine.
const SRC_MAC: MacAddr = MacAddr([0x02, 0x00, 0x00, 0x00, 0x00, 0x01]);
const DST_MAC: MacAddr = MacAddr([0x02, 0x00, 0x00, 0x00, 0x00, 0x02]);

/// Frame builders for every packet shape the workloads need.
#[derive(Debug)]
pub struct PacketBuilder;

impl PacketBuilder {
    /// Total header overhead of a TCP/IPv4 frame (Ethernet+IP+TCP).
    pub const TCP_V4_OVERHEAD: usize = ethernet::EthernetFrame::HEADER_LEN
        + ipv4::Ipv4Packet::MIN_HEADER_LEN
        + tcp::TcpPacket::MIN_HEADER_LEN;

    /// Total header overhead of a UDP/IPv4 frame.
    pub const UDP_V4_OVERHEAD: usize = ethernet::EthernetFrame::HEADER_LEN
        + ipv4::Ipv4Packet::MIN_HEADER_LEN
        + udp::UdpPacket::HEADER_LEN;

    /// Build a TCP/IPv4 frame.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp_v4(
        src: [u8; 4],
        dst: [u8; 4],
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: TcpFlags,
        payload: &[u8],
    ) -> Vec<u8> {
        let eth_len = ethernet::EthernetFrame::HEADER_LEN;
        let ip_len = ipv4::Ipv4Packet::MIN_HEADER_LEN;
        let tcp_len = tcp::TcpPacket::MIN_HEADER_LEN;
        let mut frame = vec![0u8; eth_len + ip_len + tcp_len + payload.len()];

        ethernet::emit_header(&mut frame[..eth_len], DST_MAC, SRC_MAC, EtherType::Ipv4);
        ipv4::emit_header(
            &mut frame[eth_len..],
            &ipv4::Ipv4Header {
                src,
                dst,
                protocol: ip_proto::TCP,
                payload_len: (tcp_len + payload.len()) as u16,
                ttl: 64,
                ident: (seq >> 8) as u16 ^ seq as u16,
            },
        );
        let l4 = &mut frame[eth_len + ip_len..];
        tcp::emit_header(
            l4,
            &TcpHeader {
                src_port,
                dst_port,
                seq,
                ack,
                flags,
                window: 0xFFFF,
            },
        );
        l4[tcp_len..].copy_from_slice(payload);
        let mut sum =
            checksum::pseudo_header_v4(src, dst, ip_proto::TCP, (tcp_len + payload.len()) as u16);
        sum.push(l4);
        let c = sum.finish();
        frame[eth_len + ip_len + 16..eth_len + ip_len + 18].copy_from_slice(&c.to_be_bytes());
        frame
    }

    /// Build a UDP/IPv4 frame.
    pub fn udp_v4(
        src: [u8; 4],
        dst: [u8; 4],
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
    ) -> Vec<u8> {
        let eth_len = ethernet::EthernetFrame::HEADER_LEN;
        let ip_len = ipv4::Ipv4Packet::MIN_HEADER_LEN;
        let udp_len = udp::UdpPacket::HEADER_LEN;
        let mut frame = vec![0u8; eth_len + ip_len + udp_len + payload.len()];

        ethernet::emit_header(&mut frame[..eth_len], DST_MAC, SRC_MAC, EtherType::Ipv4);
        ipv4::emit_header(
            &mut frame[eth_len..],
            &ipv4::Ipv4Header {
                src,
                dst,
                protocol: ip_proto::UDP,
                payload_len: (udp_len + payload.len()) as u16,
                ttl: 64,
                ident: 0,
            },
        );
        let l4 = &mut frame[eth_len + ip_len..];
        udp::emit_header(l4, src_port, dst_port, payload.len() as u16);
        l4[udp_len..].copy_from_slice(payload);
        let mut sum =
            checksum::pseudo_header_v4(src, dst, ip_proto::UDP, (udp_len + payload.len()) as u16);
        sum.push(l4);
        let c = match sum.finish() {
            0 => 0xFFFF, // RFC 768: transmitted zero means "no checksum"
            c => c,
        };
        frame[eth_len + ip_len + 6..eth_len + ip_len + 8].copy_from_slice(&c.to_be_bytes());
        frame
    }

    /// Build a TCP/IPv6 frame.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp_v6(
        src: [u8; 16],
        dst: [u8; 16],
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: TcpFlags,
        payload: &[u8],
    ) -> Vec<u8> {
        let eth_len = ethernet::EthernetFrame::HEADER_LEN;
        let ip_len = ipv6::Ipv6Packet::HEADER_LEN;
        let tcp_len = tcp::TcpPacket::MIN_HEADER_LEN;
        let mut frame = vec![0u8; eth_len + ip_len + tcp_len + payload.len()];

        ethernet::emit_header(&mut frame[..eth_len], DST_MAC, SRC_MAC, EtherType::Ipv6);
        ipv6::emit_header(
            &mut frame[eth_len..],
            &ipv6::Ipv6Header {
                src,
                dst,
                next_header: ip_proto::TCP,
                payload_len: (tcp_len + payload.len()) as u16,
                hop_limit: 64,
            },
        );
        let l4 = &mut frame[eth_len + ip_len..];
        tcp::emit_header(
            l4,
            &TcpHeader {
                src_port,
                dst_port,
                seq,
                ack,
                flags,
                window: 0xFFFF,
            },
        );
        l4[tcp_len..].copy_from_slice(payload);
        let mut sum =
            checksum::pseudo_header_v6(src, dst, ip_proto::TCP, (tcp_len + payload.len()) as u32);
        sum.push(l4);
        let c = sum.finish();
        frame[eth_len + ip_len + 16..eth_len + ip_len + 18].copy_from_slice(&c.to_be_bytes());
        frame
    }

    /// Build an ICMP echo frame (background noise in the campus mix).
    pub fn icmp_echo_v4(
        src: [u8; 4],
        dst: [u8; 4],
        ident: u16,
        seq: u16,
        payload: &[u8],
    ) -> Vec<u8> {
        let eth_len = ethernet::EthernetFrame::HEADER_LEN;
        let ip_len = ipv4::Ipv4Packet::MIN_HEADER_LEN;
        let icmp_len = icmp::IcmpPacket::HEADER_LEN;
        let mut frame = vec![0u8; eth_len + ip_len + icmp_len + payload.len()];

        ethernet::emit_header(&mut frame[..eth_len], DST_MAC, SRC_MAC, EtherType::Ipv4);
        ipv4::emit_header(
            &mut frame[eth_len..],
            &ipv4::Ipv4Header {
                src,
                dst,
                protocol: ip_proto::ICMP,
                payload_len: (icmp_len + payload.len()) as u16,
                ttl: 64,
                ident: 0,
            },
        );
        frame[eth_len + ip_len + icmp_len..].copy_from_slice(payload);
        let (head, body) = frame[eth_len + ip_len..].split_at_mut(icmp_len);
        icmp::emit_echo(head, icmp::IcmpPacket::ECHO_REQUEST, ident, seq, body);
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_frame, Ipv4Packet, TcpPacket, UdpPacket};

    #[test]
    fn tcp_v4_checksums_are_valid() {
        let frame = PacketBuilder::tcp_v4(
            [1, 2, 3, 4],
            [5, 6, 7, 8],
            1000,
            2000,
            7,
            9,
            TcpFlags::SYN,
            b"abc",
        );
        let eth = 14;
        let ip = Ipv4Packet::new_checked(&frame[eth..]).unwrap();
        ip.verify_checksum().unwrap();
        // TCP checksum over pseudo-header folds to zero.
        let mut sum = checksum::pseudo_header_v4(
            ip.src_addr(),
            ip.dst_addr(),
            ip_proto::TCP,
            ip.payload().len() as u16,
        );
        sum.push(ip.payload());
        assert_eq!(sum.finish(), 0);
        let t = TcpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(t.payload(), b"abc");
    }

    #[test]
    fn udp_v4_checksums_are_valid() {
        let frame = PacketBuilder::udp_v4([9, 9, 9, 9], [8, 8, 8, 8], 111, 222, b"payload");
        let ip = Ipv4Packet::new_checked(&frame[14..]).unwrap();
        ip.verify_checksum().unwrap();
        let mut sum = checksum::pseudo_header_v4(
            ip.src_addr(),
            ip.dst_addr(),
            ip_proto::UDP,
            ip.payload().len() as u16,
        );
        sum.push(ip.payload());
        assert_eq!(sum.finish(), 0);
        let u = UdpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(u.payload(), b"payload");
    }

    #[test]
    fn tcp_v6_parses_back() {
        let frame = PacketBuilder::tcp_v6(
            [1u8; 16],
            [2u8; 16],
            10,
            20,
            100,
            200,
            TcpFlags::ACK,
            b"v6data",
        );
        let p = parse_frame(&frame).unwrap();
        assert!(p.is_tcp());
        assert_eq!(p.payload(), b"v6data");
        assert_eq!(p.tcp.unwrap().seq, 100);
    }

    #[test]
    fn icmp_parses_back() {
        let frame = PacketBuilder::icmp_echo_v4([1, 1, 1, 1], [2, 2, 2, 2], 5, 6, b"ping!");
        let p = parse_frame(&frame).unwrap();
        assert_eq!(p.ip_proto, Some(ip_proto::ICMP));
        assert!(p.key.is_none());
    }
}
