//! TCP segment view, flags, and option parsing.

use crate::{Result, WireError};

/// TCP header flags as a bit set.
///
/// Implemented by hand (no bitflags dependency) with the operations the
/// capture stacks need: union, intersection test, and exact-match test
/// (the FDIR filter emulation matches on *exact* flag bytes, per §5.5 of
/// the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN: no more data from sender.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN: synchronize sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST: reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH: push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK: acknowledgement field is significant.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG: urgent pointer is significant.
    pub const URG: TcpFlags = TcpFlags(0x20);
    /// ECE: ECN echo.
    pub const ECE: TcpFlags = TcpFlags(0x40);
    /// CWR: congestion window reduced.
    pub const CWR: TcpFlags = TcpFlags(0x80);
    /// No flags set.
    pub const EMPTY: TcpFlags = TcpFlags(0);

    /// True when every flag in `other` is set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True when any flag in `other` is set in `self`.
    pub fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// True when the flag byte equals `other` exactly (FDIR-style match).
    pub fn is_exactly(self, other: TcpFlags) -> bool {
        self.0 == other.0
    }

    /// True when this segment starts a connection (SYN without ACK).
    pub fn is_syn_only(self) -> bool {
        self.contains(TcpFlags::SYN) && !self.contains(TcpFlags::ACK)
    }
}

impl core::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl core::ops::BitAnd for TcpFlags {
    type Output = TcpFlags;
    fn bitand(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 & rhs.0)
    }
}

impl core::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        const NAMES: [(u8, &str); 8] = [
            (0x02, "SYN"),
            (0x10, "ACK"),
            (0x01, "FIN"),
            (0x04, "RST"),
            (0x08, "PSH"),
            (0x20, "URG"),
            (0x40, "ECE"),
            (0x80, "CWR"),
        ];
        let mut first = true;
        for (bit, name) in NAMES {
            if self.0 & bit != 0 {
                if !first {
                    f.write_str("|")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        if first {
            f.write_str("-")?;
        }
        Ok(())
    }
}

/// A parsed TCP option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpOption {
    /// End of option list.
    EndOfList,
    /// Padding.
    Nop,
    /// Maximum segment size.
    Mss(u16),
    /// Window scale shift.
    WindowScale(u8),
    /// SACK permitted.
    SackPermitted,
    /// Timestamps (TSval, TSecr).
    Timestamps(u32, u32),
    /// Any other option, as (kind, data length).
    Unknown(u8, u8),
}

/// A read-only view over a TCP segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpPacket<'a> {
    buf: &'a [u8],
}

impl<'a> TcpPacket<'a> {
    /// Minimum (option-less) TCP header length.
    pub const MIN_HEADER_LEN: usize = 20;

    /// Wrap `buf`, validating data-offset against the buffer.
    pub fn new_checked(buf: &'a [u8]) -> Result<Self> {
        if buf.len() < Self::MIN_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let p = TcpPacket { buf };
        let hl = p.header_len();
        if hl < Self::MIN_HEADER_LEN {
            return Err(WireError::BadHeaderLen);
        }
        if hl > buf.len() {
            return Err(WireError::Truncated);
        }
        Ok(p)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// Sequence number.
    pub fn seq_number(&self) -> u32 {
        u32::from_be_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]])
    }

    /// Acknowledgement number.
    pub fn ack_number(&self) -> u32 {
        u32::from_be_bytes([self.buf[8], self.buf[9], self.buf[10], self.buf[11]])
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buf[12] >> 4) * 4
    }

    /// Flag byte.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.buf[13])
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        u16::from_be_bytes([self.buf[14], self.buf[15]])
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.buf[16], self.buf[17]])
    }

    /// Urgent pointer.
    pub fn urgent_ptr(&self) -> u16 {
        u16::from_be_bytes([self.buf[18], self.buf[19]])
    }

    /// Raw option bytes.
    pub fn options_raw(&self) -> &'a [u8] {
        &self.buf[Self::MIN_HEADER_LEN..self.header_len()]
    }

    /// Iterate over parsed options. Malformed options end iteration.
    pub fn options(&self) -> TcpOptionIter<'a> {
        TcpOptionIter {
            buf: self.options_raw(),
        }
    }

    /// Segment payload.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[self.header_len()..]
    }
}

/// Iterator over TCP options in a header.
#[derive(Debug, Clone)]
pub struct TcpOptionIter<'a> {
    buf: &'a [u8],
}

impl<'a> Iterator for TcpOptionIter<'a> {
    type Item = TcpOption;

    fn next(&mut self) -> Option<TcpOption> {
        let (kind, rest) = self.buf.split_first()?;
        match kind {
            0 => {
                self.buf = &[];
                Some(TcpOption::EndOfList)
            }
            1 => {
                self.buf = rest;
                Some(TcpOption::Nop)
            }
            kind => {
                let (len, data) = rest.split_first()?;
                let body_len = (*len as usize).checked_sub(2)?;
                if data.len() < body_len {
                    self.buf = &[];
                    return None;
                }
                let (body, tail) = data.split_at(body_len);
                self.buf = tail;
                Some(match (kind, body_len) {
                    (2, 2) => TcpOption::Mss(u16::from_be_bytes([body[0], body[1]])),
                    (3, 1) => TcpOption::WindowScale(body[0]),
                    (4, 0) => TcpOption::SackPermitted,
                    (8, 8) => TcpOption::Timestamps(
                        u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                        u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                    ),
                    (k, l) => TcpOption::Unknown(*k, l as u8),
                })
            }
        }
    }
}

/// Field bundle for emitting a TCP header.
#[derive(Debug, Clone, Copy)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

/// Emit a 20-byte option-less TCP header (checksum left zero; the builder
/// fills it in over the pseudo-header).
pub fn emit_header(buf: &mut [u8], h: &TcpHeader) {
    buf[0..2].copy_from_slice(&h.src_port.to_be_bytes());
    buf[2..4].copy_from_slice(&h.dst_port.to_be_bytes());
    buf[4..8].copy_from_slice(&h.seq.to_be_bytes());
    buf[8..12].copy_from_slice(&h.ack.to_be_bytes());
    buf[12] = 5 << 4;
    buf[13] = h.flags.0;
    buf[14..16].copy_from_slice(&h.window.to_be_bytes());
    buf[16] = 0;
    buf[17] = 0;
    buf[18] = 0;
    buf[19] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header_bytes() -> Vec<u8> {
        let mut buf = vec![0u8; 20];
        emit_header(
            &mut buf,
            &TcpHeader {
                src_port: 443,
                dst_port: 55000,
                seq: 0xDEADBEEF,
                ack: 0x01020304,
                flags: TcpFlags::ACK | TcpFlags::PSH,
                window: 0xFFFF,
            },
        );
        buf
    }

    #[test]
    fn emit_and_parse_roundtrip() {
        let buf = header_bytes();
        let t = TcpPacket::new_checked(&buf).unwrap();
        assert_eq!(t.src_port(), 443);
        assert_eq!(t.dst_port(), 55000);
        assert_eq!(t.seq_number(), 0xDEADBEEF);
        assert_eq!(t.ack_number(), 0x01020304);
        assert_eq!(t.header_len(), 20);
        assert!(t.flags().contains(TcpFlags::ACK));
        assert!(t.flags().contains(TcpFlags::PSH));
        assert!(!t.flags().contains(TcpFlags::SYN));
        assert_eq!(t.window(), 0xFFFF);
        assert!(t.payload().is_empty());
    }

    #[test]
    fn flag_set_operations() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.intersects(TcpFlags::ACK | TcpFlags::RST));
        assert!(!f.intersects(TcpFlags::FIN));
        assert!(f.is_exactly(TcpFlags(0x12)));
        assert!(!f.is_syn_only());
        assert!(TcpFlags::SYN.is_syn_only());
        assert_eq!(f.to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::EMPTY.to_string(), "-");
    }

    #[test]
    fn options_parse() {
        // MSS(1460), NOP, NOP, SACK-permitted, Timestamps, WS(7), EOL pad
        let mut buf = header_bytes();
        let opts: Vec<u8> = vec![
            2, 4, 0x05, 0xB4, // MSS 1460
            1, 1, // NOPs
            4, 2, // SACK permitted
            8, 10, 0, 0, 0, 1, 0, 0, 0, 2, // Timestamps 1, 2
            3, 3, 7, // Window scale 7
            0, // EOL
        ];
        let dataoff = (20 + opts.len()).div_ceil(4); // round up to 4
        let padded = dataoff * 4 - 20;
        buf[12] = (dataoff as u8) << 4;
        buf.extend_from_slice(&opts);
        buf.resize(20 + padded, 0);
        let t = TcpPacket::new_checked(&buf).unwrap();
        let parsed: Vec<TcpOption> = t.options().collect();
        assert!(parsed.contains(&TcpOption::Mss(1460)));
        assert!(parsed.contains(&TcpOption::SackPermitted));
        assert!(parsed.contains(&TcpOption::Timestamps(1, 2)));
        assert!(parsed.contains(&TcpOption::WindowScale(7)));
    }

    #[test]
    fn malformed_option_len_stops_iteration() {
        let mut buf = header_bytes();
        buf[12] = 6 << 4; // 24-byte header
        buf.extend_from_slice(&[2, 40, 0, 0]); // MSS claims 40-byte length
        let t = TcpPacket::new_checked(&buf).unwrap();
        assert_eq!(t.options().count(), 0);
    }

    #[test]
    fn data_offset_too_small_rejected() {
        let mut buf = header_bytes();
        buf[12] = 4 << 4;
        assert_eq!(TcpPacket::new_checked(&buf), Err(WireError::BadHeaderLen));
    }

    #[test]
    fn data_offset_beyond_buffer_rejected() {
        let mut buf = header_bytes();
        buf[12] = 15 << 4;
        assert_eq!(TcpPacket::new_checked(&buf), Err(WireError::Truncated));
    }
}
