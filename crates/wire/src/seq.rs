//! TCP sequence-number arithmetic.
//!
//! Sequence numbers live on a mod-2³² circle; comparisons are only
//! meaningful within a half-window. These helpers implement the standard
//! RFC 793 signed-difference idiom, which every piece of reassembly code in
//! the workspace must use instead of raw integer comparison.

/// A TCP sequence number (alias for documentation clarity).
pub type SeqNum = u32;

/// Signed distance from `b` to `a` on the sequence circle (`a - b`).
///
/// Positive when `a` is logically after `b`, negative when before. Only
/// meaningful when the true distance is less than 2³¹.
#[inline]
pub fn seq_diff(a: SeqNum, b: SeqNum) -> i32 {
    a.wrapping_sub(b) as i32
}

/// `a` strictly before `b` on the circle.
#[inline]
pub fn seq_lt(a: SeqNum, b: SeqNum) -> bool {
    seq_diff(a, b) < 0
}

/// `a` before or equal to `b`.
#[inline]
pub fn seq_le(a: SeqNum, b: SeqNum) -> bool {
    seq_diff(a, b) <= 0
}

/// `a` strictly after `b`.
#[inline]
pub fn seq_gt(a: SeqNum, b: SeqNum) -> bool {
    seq_diff(a, b) > 0
}

/// `a` after or equal to `b`.
#[inline]
pub fn seq_ge(a: SeqNum, b: SeqNum) -> bool {
    seq_diff(a, b) >= 0
}

/// Advance a sequence number by `n` bytes, wrapping.
#[inline]
pub fn seq_add(a: SeqNum, n: u32) -> SeqNum {
    a.wrapping_add(n)
}

/// The maximum (later) of two sequence numbers on the circle.
#[inline]
pub fn seq_max(a: SeqNum, b: SeqNum) -> SeqNum {
    if seq_ge(a, b) {
        a
    } else {
        b
    }
}

/// The minimum (earlier) of two sequence numbers on the circle.
#[inline]
pub fn seq_min(a: SeqNum, b: SeqNum) -> SeqNum {
    if seq_le(a, b) {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn plain_ordering() {
        assert!(seq_lt(1, 2));
        assert!(seq_gt(2, 1));
        assert!(seq_le(2, 2));
        assert!(seq_ge(2, 2));
        assert_eq!(seq_diff(10, 4), 6);
        assert_eq!(seq_diff(4, 10), -6);
    }

    #[test]
    fn wraparound_ordering() {
        let near_max = u32::MAX - 10;
        let wrapped = 5u32;
        assert!(seq_lt(near_max, wrapped));
        assert!(seq_gt(wrapped, near_max));
        assert_eq!(seq_diff(wrapped, near_max), 16);
        assert_eq!(seq_add(near_max, 16), 5);
    }

    #[test]
    fn min_max_across_wrap() {
        let a = u32::MAX - 1;
        let b = 3u32;
        assert_eq!(seq_max(a, b), b);
        assert_eq!(seq_min(a, b), a);
    }

    proptest! {
        /// Within a half-window, seq ordering agrees with adding offsets.
        #[test]
        fn ordering_consistent_with_offsets(base: u32, d in 1u32..0x7FFF_FFFF) {
            let later = seq_add(base, d);
            prop_assert!(seq_lt(base, later));
            prop_assert!(seq_gt(later, base));
            prop_assert_eq!(seq_diff(later, base), d as i32);
        }

        /// seq_max/seq_min are consistent and commutative-ish.
        #[test]
        fn min_max_agree(base: u32, d in 0u32..0x7FFF_FFFF) {
            let later = seq_add(base, d);
            prop_assert_eq!(seq_max(base, later), later);
            prop_assert_eq!(seq_min(base, later), base);
            prop_assert_eq!(seq_max(later, base), later);
            prop_assert_eq!(seq_min(later, base), base);
        }
    }
}
