#![warn(missing_docs)]

//! # scap-bench
//!
//! The experiment harness: one function per table/figure of the paper's
//! evaluation (§6 and §7), each regenerating the corresponding rows from
//! the reproduction's own stacks, workloads, and performance model.
//!
//! Run everything with the `experiments` binary:
//!
//! ```text
//! cargo run --release -p scap-bench --bin experiments -- --exp all
//! cargo run --release -p scap-bench --bin experiments -- --exp fig6 --scale smoke
//! ```
//!
//! Outputs go to `results/` as aligned text tables and CSV files;
//! EXPERIMENTS.md in the repository root records a full run against the
//! paper's reported numbers.

pub mod common;
pub mod figures;
pub mod render;
pub mod summary;

pub use common::{ExpConfig, FigureResult, Scale};
pub use summary::{append_trajectory, write_bench_summary};
