//! Pattern corpora: Snort-rule `content:` extraction and a seeded
//! generator that mirrors the paper's workload.
//!
//! The paper extracts 2,120 strings from the `content:` fields of the VRT
//! "web attack" rules. That rule set is proprietary, so this module
//! provides (a) a parser for the standard Snort rule syntax, usable with
//! any rule file the user supplies, and (b) a deterministic generator that
//! produces a corpus with the same *shape*: HTTP-attack-flavoured strings,
//! 4–30 bytes, some with hex escapes, seeded so every run sees the same
//! set.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Extract every `content:"..."` pattern from Snort rule text.
///
/// Handles the `|41 42|` hex-escape notation inside content strings and
/// skips negated contents (`content:!"..."`). Returns raw byte patterns.
pub fn extract_contents(rules: &str) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for line in rules.lines() {
        let line = line.trim();
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let mut rest = line;
        while let Some(idx) = rest.find("content:") {
            rest = &rest[idx + "content:".len()..];
            let body = rest.trim_start();
            if body.starts_with('!') {
                // negated content: not a pattern to search for
                continue;
            }
            let Some(body) = body.strip_prefix('"') else {
                continue;
            };
            let Some(endq) = body.find('"') else { continue };
            if let Some(p) = decode_content(&body[..endq]) {
                if !p.is_empty() {
                    out.push(p);
                }
            }
            rest = &body[endq..];
        }
    }
    out
}

/// Decode a Snort content string: literal bytes with `|hex bytes|` spans.
fn decode_content(s: &str) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(s.len());
    let mut in_hex = false;
    let mut hex_acc = String::new();
    for c in s.chars() {
        if c == '|' {
            if in_hex {
                for pair in hex_acc.split_whitespace() {
                    out.push(u8::from_str_radix(pair, 16).ok()?);
                }
                hex_acc.clear();
            }
            in_hex = !in_hex;
        } else if in_hex {
            hex_acc.push(c);
        } else {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
    }
    if in_hex {
        return None; // unterminated hex span
    }
    Some(out)
}

/// A small corpus of genuine web-attack strings for examples and tests.
pub fn builtin_web_patterns() -> Vec<Vec<u8>> {
    [
        "../..",
        "/etc/passwd",
        "cmd.exe",
        "xp_cmdshell",
        "UNION SELECT",
        "<script>",
        "javascript:",
        "' OR '1'='1",
        "/bin/sh",
        "%00",
        "..%2f..%2f",
        "eval(",
        "base64_decode",
        "wget http",
        "/admin/config",
        "DROP TABLE",
        "onerror=",
        "document.cookie",
        "passwd.txt",
        "boot.ini",
    ]
    .iter()
    .map(|s| s.as_bytes().to_vec())
    .collect()
}

/// Generate `n` distinct attack-flavoured patterns, deterministically from
/// `seed`. Pattern lengths and byte distribution mimic `content:` strings
/// from web-attack rules: a recognizable stem plus a distinguishing
/// suffix, 4–30 bytes overall.
pub fn generate_web_attack_patterns(n: usize, seed: u64) -> Vec<Vec<u8>> {
    const STEMS: &[&str] = &[
        "GET /",
        "POST /",
        "/cgi-bin/",
        "/scripts/",
        "../",
        "%2e%2e/",
        "SELECT ",
        "UNION ",
        "INSERT ",
        "exec(",
        "eval(",
        "system(",
        "<script",
        "onload=",
        "onerror=",
        "cmd=",
        "id=",
        "file=",
        "path=",
        "page=",
        "/etc/",
        "/bin/",
        "passwd",
        "shadow",
        "config",
        "admin",
        "login",
        "shell",
        "upload",
        "include=",
    ];
    const TAILS: &[&str] = &[
        ".php", ".asp", ".cgi", ".jsp", ".pl", ".exe", ".dll", ".ini", ".conf", ".bak", "%00",
        "%20", "'--", "\";", ")/*", "../", "\\x90", "HTTP/1.", "\r\n", "&x=",
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let stem = STEMS[rng.random_range(0..STEMS.len())];
        let tail = TAILS[rng.random_range(0..TAILS.len())];
        let mid_len = rng.random_range(0..12usize);
        let mut pat = Vec::with_capacity(stem.len() + mid_len + tail.len());
        pat.extend_from_slice(stem.as_bytes());
        for _ in 0..mid_len {
            // Alphanumeric filler, biased to lowercase like real URIs.
            let c = match rng.random_range(0..10u8) {
                0..=5 => rng.random_range(b'a'..=b'z'),
                6..=7 => rng.random_range(b'0'..=b'9'),
                8 => b'_',
                _ => rng.random_range(b'A'..=b'Z'),
            };
            pat.push(c);
        }
        pat.extend_from_slice(tail.as_bytes());
        pat.truncate(30);
        if pat.len() >= 4 && seen.insert(pat.clone()) {
            out.push(pat);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_plain_contents() {
        let rules = r#"
# a comment
alert tcp any any -> any 80 (msg:"test"; content:"/etc/passwd"; sid:1;)
alert tcp any any -> any 80 (msg:"two"; content:"a"; content:"bb"; sid:2;)
"#;
        let pats = extract_contents(rules);
        assert_eq!(
            pats,
            vec![b"/etc/passwd".to_vec(), b"a".to_vec(), b"bb".to_vec()]
        );
    }

    #[test]
    fn extracts_hex_escapes() {
        let rules = r#"alert tcp any any -> any any (content:"AB|43 44|EF"; sid:3;)"#;
        let pats = extract_contents(rules);
        assert_eq!(pats, vec![b"ABCDEF".to_vec()]);
    }

    #[test]
    fn skips_negated_contents() {
        let rules = r#"alert tcp any any -> any any (content:!"nope"; content:"yes"; sid:4;)"#;
        assert_eq!(extract_contents(rules), vec![b"yes".to_vec()]);
    }

    #[test]
    fn malformed_hex_dropped() {
        let rules = r#"alert tcp any any -> any any (content:"AB|4"; sid:5;)"#;
        assert!(extract_contents(rules).is_empty());
    }

    #[test]
    fn generator_is_deterministic_and_distinct() {
        let a = generate_web_attack_patterns(2120, 42);
        let b = generate_web_attack_patterns(2120, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2120);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 2120);
        assert!(a.iter().all(|p| p.len() >= 4 && p.len() <= 30));
        let c = generate_web_attack_patterns(100, 43);
        assert_ne!(a[..100], c[..]);
    }

    #[test]
    fn generated_patterns_compile() {
        let pats = generate_web_attack_patterns(500, 7);
        let ac = crate::AhoCorasick::new(&pats, false);
        assert_eq!(ac.pattern_count(), 500);
        // A buffer containing one of the patterns matches.
        let mut data = b"noise ".to_vec();
        data.extend_from_slice(&pats[17]);
        data.extend_from_slice(b" more noise");
        assert!(!ac.find_all(&data).is_empty());
    }

    #[test]
    fn builtin_patterns_nonempty() {
        let p = builtin_web_patterns();
        assert!(p.len() >= 20);
    }
}
