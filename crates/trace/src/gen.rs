//! Synthetic campus-mix traffic generator.
//!
//! Stands in for the paper's 46 GB university-access-link trace. The
//! generator produces a time-ordered packet stream with the aggregate
//! properties the evaluation depends on:
//!
//! * heavy-tailed TCP flow sizes (log-normal body + Pareto tail), so
//!   per-flow cutoffs discard most traffic while keeping most flows;
//! * ≈ 95 % of bytes in TCP, the rest UDP (DNS, RTP-like) and ICMP;
//! * mean packet size ≈ 800–900 bytes (full-MSS data packets mixed with
//!   minimum-size ACKs and handshakes);
//! * a configurable share of flows on port 80 (the paper's trace has
//!   ≈ 8.4 % of packets in port-80 streams, used by the PPL experiment);
//! * wire-level imperfections — retransmissions, reordering, overlapping
//!   segments — to exercise the reassembly engines;
//! * optional embedded attack patterns near the start of HTTP-like
//!   streams, matching where web-attack signatures fire in real traffic.
//!
//! Every session's payload bytes are a deterministic function of
//! `(flow seed, direction, offset)`, so retransmitted and overlapping
//! segments carry byte-identical data — exactly like a real sender's
//! buffer — and reassembly output is independent of segmentation.

use crate::Packet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scap_wire::{splitmix64, PacketBuilder, TcpFlags};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Configuration for the campus mix. `Default` reproduces the paper-like
/// trace shape at a 64 MB scale.
#[derive(Debug, Clone)]
pub struct CampusMixConfig {
    /// PRNG seed; identical seeds give byte-identical traces.
    pub seed: u64,
    /// Approximate total frame bytes to generate.
    pub target_bytes: u64,
    /// Poisson flow-arrival rate (flows per second of trace time).
    pub flows_per_sec: f64,
    /// Fraction of sessions that are TCP (bytes skew much higher).
    pub tcp_session_fraction: f64,
    /// Fraction of TCP sessions on server port 80.
    pub port80_fraction: f64,
    /// Client→server share of a TCP session's payload bytes.
    pub request_fraction: f64,
    /// Probability that a data segment is retransmitted (duplicate).
    pub retrans_prob: f64,
    /// Probability that adjacent packets are swapped on the wire.
    pub reorder_prob: f64,
    /// Probability that a segment is followed by a half-overlapping copy.
    pub overlap_prob: f64,
    /// Probability a TCP session ends with RST instead of FIN.
    pub rst_prob: f64,
    /// TCP maximum segment size.
    pub mss: usize,
    /// Patterns to embed near stream starts (with per-session probability
    /// `pattern_prob`). `None` disables embedding.
    pub patterns: Option<Arc<Vec<Vec<u8>>>>,
    /// Probability that an HTTP-like session carries one embedded pattern.
    pub pattern_prob: f64,
    /// Hard cap on a single flow's payload size. `None` derives a cap of
    /// `target_bytes / 12`, so no single elephant flow can dominate a
    /// small trace the way it never dominates an hour-long campus trace.
    pub max_flow_bytes: Option<u64>,
}

impl Default for CampusMixConfig {
    fn default() -> Self {
        CampusMixConfig {
            seed: 42,
            target_bytes: 64 << 20,
            flows_per_sec: 400.0,
            tcp_session_fraction: 0.78,
            port80_fraction: 0.084,
            request_fraction: 0.08,
            retrans_prob: 0.004,
            reorder_prob: 0.005,
            overlap_prob: 0.002,
            rst_prob: 0.05,
            mss: 1460,
            patterns: None,
            pattern_prob: 0.25,
            max_flow_bytes: None,
        }
    }
}

impl CampusMixConfig {
    /// A paper-shaped trace of approximately `target_bytes` bytes.
    pub fn sized(seed: u64, target_bytes: u64) -> Self {
        CampusMixConfig {
            seed,
            target_bytes,
            ..Default::default()
        }
    }
}

/// A single generated session's packets plus bookkeeping for the merge.
struct Session {
    packets: std::vec::IntoIter<Packet>,
    next: Packet,
}

/// Streaming campus-mix generator; yields packets in timestamp order.
pub struct CampusMix {
    cfg: CampusMixConfig,
    rng: StdRng,
    /// Min-heap of active sessions keyed by next packet timestamp.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    sessions: Vec<Option<Session>>,
    free_slots: Vec<usize>,
    next_arrival_ns: u64,
    bytes_budget: i64,
    flow_counter: u64,
}

impl CampusMix {
    /// Create a generator from a configuration.
    pub fn new(cfg: CampusMixConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        CampusMix {
            bytes_budget: cfg.target_bytes as i64,
            cfg,
            rng,
            heap: BinaryHeap::new(),
            sessions: Vec::new(),
            free_slots: Vec::new(),
            next_arrival_ns: 0,
            flow_counter: 0,
        }
    }

    /// Generate the whole trace into memory.
    pub fn collect_all(self) -> Vec<Packet> {
        self.collect()
    }

    fn exp_ns(&mut self, mean_secs: f64) -> u64 {
        let u: f64 = self.rng.random::<f64>().max(1e-12);
        ((-u.ln()) * mean_secs * 1e9) as u64
    }

    /// Draw a TCP session payload size: log-normal body, Pareto tail.
    fn flow_payload_size(&mut self) -> u64 {
        let cap = self
            .cfg
            .max_flow_bytes
            .unwrap_or(self.cfg.target_bytes / 12)
            .clamp(1 << 20, 24 << 20);
        if self.rng.random::<f64>() < 0.8 {
            // Log-normal body: median 1 KB, sigma 1.1 — most flows are
            // small (requests, short objects).
            let z = box_muller(&mut self.rng);
            let v = (1024.0f64).ln() + 1.1 * z;
            (v.exp() as u64).clamp(64, 1 << 20)
        } else {
            // Pareto tail: xm = 16 KB, alpha = 1.15, capped so one
            // elephant cannot dominate the trace. The tail carries the
            // overwhelming majority of bytes, as on a real access link —
            // which is exactly what makes per-flow cutoffs effective
            // (§6.6).
            let u: f64 = self.rng.random::<f64>().max(1e-12);
            let v = 16384.0 * u.powf(-1.0 / 1.15);
            (v as u64).min(cap)
        }
    }

    fn spawn_session(&mut self, t0: u64) -> Session {
        self.flow_counter += 1;
        let flow_seed = splitmix64(self.cfg.seed ^ self.flow_counter);
        let r = self.rng.random::<f64>();
        let mut packets = if r < self.cfg.tcp_session_fraction {
            let size = self.flow_payload_size();
            build_tcp_session(&mut self.rng, &self.cfg, flow_seed, t0, size)
        } else if r < self.cfg.tcp_session_fraction + 0.17 {
            build_dns_session(&mut self.rng, flow_seed, t0)
        } else if r < self.cfg.tcp_session_fraction + 0.19 {
            build_rtp_session(&mut self.rng, flow_seed, t0)
        } else {
            build_icmp_session(&mut self.rng, flow_seed, t0)
        };
        debug_assert!(!packets.is_empty());
        let mut iter = std::mem::take(&mut packets).into_iter();
        let next = iter.next().expect("sessions always have packets");
        Session {
            packets: iter,
            next,
        }
    }
}

impl Iterator for CampusMix {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        // Admit new sessions that arrive before the earliest queued packet.
        loop {
            let head_ts = self.heap.peek().map(|Reverse((ts, _))| *ts);
            let admit = self.bytes_budget > 0
                && match head_ts {
                    Some(ts) => self.next_arrival_ns <= ts,
                    None => true,
                };
            if !admit {
                break;
            }
            let t0 = self.next_arrival_ns;
            let mean_gap = 1.0 / self.cfg.flows_per_sec;
            let gap = self.exp_ns(mean_gap);
            self.next_arrival_ns = t0 + gap.max(1);
            let sess = self.spawn_session(t0);
            let sess_bytes: u64 = sess.next.len() as u64
                + sess
                    .packets
                    .as_slice()
                    .iter()
                    .map(|p| p.len() as u64)
                    .sum::<u64>();
            self.bytes_budget -= sess_bytes as i64;
            let slot = match self.free_slots.pop() {
                Some(s) => {
                    self.sessions[s] = Some(sess);
                    s
                }
                None => {
                    self.sessions.push(Some(sess));
                    self.sessions.len() - 1
                }
            };
            let ts = self.sessions[slot].as_ref().unwrap().next.ts_ns;
            self.heap.push(Reverse((ts, slot)));
        }

        let Reverse((_, slot)) = self.heap.pop()?;
        let sess = self.sessions[slot].as_mut().expect("slot occupied");
        let pkt = sess.next.clone();
        match sess.packets.next() {
            Some(n) => {
                sess.next = n;
                let ts = sess.next.ts_ns;
                self.heap.push(Reverse((ts, slot)));
            }
            None => {
                self.sessions[slot] = None;
                self.free_slots.push(slot);
            }
        }
        Some(pkt)
    }
}

/// Standard-normal sample via Box–Muller.
fn box_muller(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Deterministic payload bytes for `(flow_seed, direction, offset)`.
///
/// Mostly printable ASCII so HTTP-ish pattern matching behaves like real
/// traffic. Byte at offset `o` depends only on the arguments, so any two
/// packets covering the same stream range carry identical bytes.
pub fn fill_payload(buf: &mut [u8], flow_seed: u64, dir: u8, offset: u64) {
    for (i, b) in buf.iter_mut().enumerate() {
        let o = offset + i as u64;
        let h = splitmix64(flow_seed ^ (u64::from(dir) << 56) ^ (o / 8));
        let byte = (h >> ((o % 8) * 8)) as u8;
        // Map into mostly-printable space.
        *b = 0x20 + (byte % 0x5F);
    }
}

/// Overlay any embedded pattern bytes onto a payload slice covering
/// `[offset, offset + buf.len())` of the stream.
fn overlay_embeds(buf: &mut [u8], offset: u64, embeds: &[(u64, Arc<Vec<u8>>)]) {
    let end = offset + buf.len() as u64;
    for (eoff, pat) in embeds {
        let pend = eoff + pat.len() as u64;
        if *eoff < end && pend > offset {
            let from = (*eoff).max(offset);
            let to = pend.min(end);
            for o in from..to {
                buf[(o - offset) as usize] = pat[(o - eoff) as usize];
            }
        }
    }
}

/// Endpoint addresses for a flow, derived from its seed: client inside
/// the campus `10.20.0.0/16`, server outside.
fn endpoints(flow_seed: u64) -> ([u8; 4], [u8; 4], u16) {
    let h = splitmix64(flow_seed ^ 0xE0DD);
    let client = [10, 20, (h >> 8) as u8, h as u8];
    let server = [
        (93 + (h >> 16) % 100) as u8,
        (h >> 24) as u8,
        (h >> 32) as u8,
        (h >> 40) as u8,
    ];
    let cport = 32768 + ((h >> 48) % 28000) as u16;
    (client, server, cport)
}

/// Pick a server port for a TCP session.
fn tcp_server_port(rng: &mut StdRng, cfg: &CampusMixConfig) -> u16 {
    if rng.random::<f64>() < cfg.port80_fraction {
        return 80;
    }
    // Popular services, then ephemeral/other.
    match rng.random_range(0..100u32) {
        0..=39 => 443,
        40..=46 => 22,
        47..=53 => 25,
        54..=60 => 8080,
        61..=67 => 993,
        68..=74 => 3306,
        _ => rng.random_range(1024..65000),
    }
}

/// One direction of payload with its embedded patterns.
struct DirPlan {
    total: u64,
    embeds: Vec<(u64, Arc<Vec<u8>>)>,
}

impl DirPlan {
    fn segment(&self, flow_seed: u64, dir: u8, offset: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        fill_payload(&mut buf, flow_seed, dir, offset);
        overlay_embeds(&mut buf, offset, &self.embeds);
        buf
    }
}

/// Build a complete TCP session: handshake, request, response, teardown,
/// with timing, ACKs, and injected wire imperfections.
fn build_tcp_session(
    rng: &mut StdRng,
    cfg: &CampusMixConfig,
    flow_seed: u64,
    t0: u64,
    payload_size: u64,
) -> Vec<Packet> {
    let (client, server, cport) = endpoints(flow_seed);
    let sport = tcp_server_port(rng, cfg);
    let rtt_ns = rng.random_range(1_000_000..8_000_000u64);
    let seg_gap_ns = rng.random_range(20_000..200_000u64);
    let isn_c: u32 = rng.random();
    let isn_s: u32 = rng.random();
    let mss = cfg.mss;

    let req_bytes = ((payload_size as f64 * cfg.request_fraction) as u64).max(64);
    let resp_bytes = payload_size.saturating_sub(req_bytes).max(64);

    // Plan pattern embedding near the start of request/response.
    let mut req_plan = DirPlan {
        total: req_bytes,
        embeds: Vec::new(),
    };
    let mut resp_plan = DirPlan {
        total: resp_bytes,
        embeds: Vec::new(),
    };
    if let Some(pats) = &cfg.patterns {
        if !pats.is_empty() && rng.random::<f64>() < cfg.pattern_prob {
            let pat = Arc::new(pats[rng.random_range(0..pats.len())].clone());
            let into_resp = rng.random::<f64>() < 0.5;
            let plan = if into_resp {
                &mut resp_plan
            } else {
                &mut req_plan
            };
            if plan.total > pat.len() as u64 {
                // Within the first ~2 KB, like real web-attack signatures.
                let max_off = (plan.total - pat.len() as u64).min(2048);
                let off = rng.random_range(0..=max_off);
                plan.embeds.push((off, pat));
            }
        }
    }

    let mut pkts: Vec<Packet> = Vec::new();
    let tcp = |src: [u8; 4],
               dst: [u8; 4],
               sp: u16,
               dp: u16,
               seq: u32,
               ack: u32,
               flags: TcpFlags,
               payload: &[u8]| {
        PacketBuilder::tcp_v4(src, dst, sp, dp, seq, ack, flags, payload)
    };

    // Handshake.
    let mut t = t0;
    pkts.push(Packet::new(
        t,
        tcp(client, server, cport, sport, isn_c, 0, TcpFlags::SYN, b""),
    ));
    t += rtt_ns / 2;
    pkts.push(Packet::new(
        t,
        tcp(
            server,
            client,
            sport,
            cport,
            isn_s,
            isn_c.wrapping_add(1),
            TcpFlags::SYN | TcpFlags::ACK,
            b"",
        ),
    ));
    t += rtt_ns / 2;
    pkts.push(Packet::new(
        t,
        tcp(
            client,
            server,
            cport,
            sport,
            isn_c.wrapping_add(1),
            isn_s.wrapping_add(1),
            TcpFlags::ACK,
            b"",
        ),
    ));

    // One direction's data: emit MSS segments with periodic ACKs from the
    // receiver; returns the time after the last packet.
    let send_dir = |pkts: &mut Vec<Packet>,
                    rng: &mut StdRng,
                    start_t: u64,
                    plan: &DirPlan,
                    dir: u8,
                    from: ([u8; 4], u16, u32),
                    to: ([u8; 4], u16, u32)|
     -> (u64, u32) {
        let (src, sp, isn) = from;
        let (dst, dp, peer_isn) = to;
        let mut t = start_t;
        let mut off = 0u64;
        let mut segs_since_ack = 0u32;
        while off < plan.total {
            let len = ((plan.total - off) as usize).min(mss);
            let payload = plan.segment(flow_seed, dir, off, len);
            let seq = isn.wrapping_add(1).wrapping_add(off as u32);
            let mut flags = TcpFlags::ACK;
            if off + len as u64 >= plan.total {
                flags = flags | TcpFlags::PSH;
            }
            pkts.push(Packet::new(
                t,
                tcp(
                    src,
                    dst,
                    sp,
                    dp,
                    seq,
                    peer_isn.wrapping_add(1),
                    flags,
                    &payload,
                ),
            ));

            // Wire imperfections.
            if rng.random::<f64>() < cfg.retrans_prob {
                pkts.push(Packet::new(
                    t + rtt_ns,
                    tcp(
                        src,
                        dst,
                        sp,
                        dp,
                        seq,
                        peer_isn.wrapping_add(1),
                        flags,
                        &payload,
                    ),
                ));
            }
            if rng.random::<f64>() < cfg.overlap_prob && len > 16 {
                // Half-overlapping copy: covers the second half of this
                // segment and a little of the next range.
                let half = len / 2;
                let ov_len = (len - half + 8).min(mss);
                let ov_end = (off + half as u64 + ov_len as u64).min(plan.total);
                let ov_len = (ov_end - off - half as u64) as usize;
                if ov_len > 0 {
                    let ov_payload = plan.segment(flow_seed, dir, off + half as u64, ov_len);
                    pkts.push(Packet::new(
                        t + seg_gap_ns / 2,
                        tcp(
                            src,
                            dst,
                            sp,
                            dp,
                            seq.wrapping_add(half as u32),
                            peer_isn.wrapping_add(1),
                            TcpFlags::ACK,
                            &ov_payload,
                        ),
                    ));
                }
            }
            off += len as u64;
            segs_since_ack += 1;
            // Delayed ACK from the receiver every two segments.
            if segs_since_ack == 2 || off >= plan.total {
                pkts.push(Packet::new(
                    t + rtt_ns / 2,
                    tcp(
                        dst,
                        src,
                        dp,
                        sp,
                        peer_isn.wrapping_add(1),
                        seq.wrapping_add(len as u32),
                        TcpFlags::ACK,
                        b"",
                    ),
                ));
                segs_since_ack = 0;
            }
            t += seg_gap_ns;
        }
        (t, isn.wrapping_add(1).wrapping_add(plan.total as u32))
    };

    let (t_after_req, req_end_seq) = send_dir(
        &mut pkts,
        rng,
        t + seg_gap_ns,
        &req_plan,
        0,
        (client, cport, isn_c),
        (server, sport, isn_s),
    );
    let (t_after_resp, resp_end_seq) = send_dir(
        &mut pkts,
        rng,
        t_after_req + rtt_ns / 2,
        &resp_plan,
        1,
        (server, sport, isn_s),
        (client, cport, isn_c),
    );

    // Teardown.
    let mut t = t_after_resp + rtt_ns / 2;
    if rng.random::<f64>() < cfg.rst_prob {
        pkts.push(Packet::new(
            t,
            tcp(
                server,
                client,
                sport,
                cport,
                resp_end_seq,
                req_end_seq,
                TcpFlags::RST,
                b"",
            ),
        ));
    } else {
        pkts.push(Packet::new(
            t,
            tcp(
                server,
                client,
                sport,
                cport,
                resp_end_seq,
                req_end_seq,
                TcpFlags::FIN | TcpFlags::ACK,
                b"",
            ),
        ));
        t += rtt_ns / 2;
        pkts.push(Packet::new(
            t,
            tcp(
                client,
                server,
                cport,
                sport,
                req_end_seq,
                resp_end_seq.wrapping_add(1),
                TcpFlags::FIN | TcpFlags::ACK,
                b"",
            ),
        ));
        t += rtt_ns / 2;
        pkts.push(Packet::new(
            t,
            tcp(
                server,
                client,
                sport,
                cport,
                resp_end_seq.wrapping_add(1),
                req_end_seq.wrapping_add(1),
                TcpFlags::ACK,
                b"",
            ),
        ));
    }

    pkts.sort_by_key(|p| p.ts_ns);

    // Wire reordering: swap adjacent packets with small probability.
    let mut i = 1;
    while i < pkts.len() {
        if rng.random::<f64>() < cfg.reorder_prob {
            let ts_a = pkts[i - 1].ts_ns;
            let ts_b = pkts[i].ts_ns;
            pkts.swap(i - 1, i);
            pkts[i - 1].ts_ns = ts_a;
            pkts[i].ts_ns = ts_b;
            i += 2;
        } else {
            i += 1;
        }
    }
    pkts
}

/// DNS lookup: one query, one response.
fn build_dns_session(rng: &mut StdRng, flow_seed: u64, t0: u64) -> Vec<Packet> {
    let (client, server, cport) = endpoints(flow_seed);
    let qlen = rng.random_range(40..90usize);
    let rlen = rng.random_range(80..480usize);
    let mut q = vec![0u8; qlen];
    fill_payload(&mut q, flow_seed, 0, 0);
    let mut r = vec![0u8; rlen];
    fill_payload(&mut r, flow_seed, 1, 0);
    let rtt = rng.random_range(1_000_000..8_000_000u64);
    vec![
        Packet::new(t0, PacketBuilder::udp_v4(client, server, cport, 53, &q)),
        Packet::new(
            t0 + rtt,
            PacketBuilder::udp_v4(server, client, 53, cport, &r),
        ),
    ]
}

/// RTP-like UDP stream: a run of ~200-byte datagrams at a steady pace.
fn build_rtp_session(rng: &mut StdRng, flow_seed: u64, t0: u64) -> Vec<Packet> {
    let (client, server, cport) = endpoints(flow_seed);
    let dport = rng.random_range(16384..32768u16);
    let n = rng.random_range(10..60usize);
    let gap = rng.random_range(2_000_000..8_000_000u64); // 2-8 ms
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let len = rng.random_range(160..240usize);
        let mut payload = vec![0u8; len];
        fill_payload(&mut payload, flow_seed, 0, (i * 200) as u64);
        out.push(Packet::new(
            t0 + i as u64 * gap,
            PacketBuilder::udp_v4(client, server, cport, dport, &payload),
        ));
    }
    out
}

/// A short ICMP echo exchange.
fn build_icmp_session(rng: &mut StdRng, flow_seed: u64, t0: u64) -> Vec<Packet> {
    let (client, server, _) = endpoints(flow_seed);
    let n = rng.random_range(1..3usize);
    let mut out = Vec::with_capacity(n * 2);
    for i in 0..n {
        let t = t0 + i as u64 * 100_000_000;
        let payload = vec![0x61u8; 56];
        out.push(Packet::new(
            t,
            PacketBuilder::icmp_echo_v4(
                client,
                server,
                (flow_seed >> 8) as u16,
                i as u16,
                &payload,
            ),
        ));
        out.push(Packet::new(
            t + rng.random_range(1_000_000..20_000_000u64),
            PacketBuilder::icmp_echo_v4(
                server,
                client,
                (flow_seed >> 8) as u16,
                i as u16,
                &payload,
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn generator_is_deterministic() {
        let cfg = CampusMixConfig::sized(7, 2 << 20);
        let a = CampusMix::new(cfg.clone()).collect_all();
        let b = CampusMix::new(cfg).collect_all();
        assert_eq!(a.len(), b.len());
        assert_eq!(a, b);
    }

    #[test]
    fn timestamps_are_nondecreasing() {
        let pkts = CampusMix::new(CampusMixConfig::sized(1, 4 << 20)).collect_all();
        assert!(pkts.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn trace_shape_matches_paper_profile() {
        let pkts = CampusMix::new(CampusMixConfig::sized(42, 24 << 20)).collect_all();
        let stats = TraceStats::from_packets(pkts.iter());
        // Total size close to the target.
        assert!(
            stats.total_bytes > 20 << 20,
            "bytes = {}",
            stats.total_bytes
        );
        // TCP dominates bytes (paper: 95.4 %).
        let tcp_share = stats.tcp_bytes as f64 / stats.total_bytes as f64;
        assert!(tcp_share > 0.90, "tcp byte share = {tcp_share:.3}");
        // Mean packet size in the campus range (paper: ~840 B).
        let mean = stats.total_bytes as f64 / stats.packets as f64;
        assert!((500.0..1200.0).contains(&mean), "mean pkt = {mean:.0}");
        // A healthy number of distinct flows.
        assert!(stats.flows > 100, "flows = {}", stats.flows);
    }

    #[test]
    fn port80_packet_share_near_configured() {
        let pkts = CampusMix::new(CampusMixConfig::sized(3, 32 << 20)).collect_all();
        let mut port80 = 0u64;
        let mut total = 0u64;
        for p in &pkts {
            if let Ok(parsed) = scap_wire::parse_frame(&p.frame) {
                if let Some(k) = parsed.key {
                    total += 1;
                    if k.src_port() == 80 || k.dst_port() == 80 {
                        port80 += 1;
                    }
                }
            }
        }
        let share = port80 as f64 / total as f64;
        // Target 8.4 % of packets; generous tolerance for a small trace.
        assert!((0.02..0.25).contains(&share), "port-80 share = {share:.3}");
    }

    #[test]
    fn all_frames_parse() {
        let pkts = CampusMix::new(CampusMixConfig::sized(9, 2 << 20)).collect_all();
        for p in &pkts {
            scap_wire::parse_frame(&p.frame).expect("generated frames parse");
        }
    }

    #[test]
    fn payload_fill_is_deterministic_in_offset() {
        let mut a = vec![0u8; 64];
        fill_payload(&mut a, 123, 0, 1000);
        // Generate the same range in two halves.
        let mut b1 = vec![0u8; 32];
        let mut b2 = vec![0u8; 32];
        fill_payload(&mut b1, 123, 0, 1000);
        fill_payload(&mut b2, 123, 0, 1032);
        assert_eq!(&a[..32], &b1[..]);
        assert_eq!(&a[32..], &b2[..]);
        // Different direction differs.
        let mut c = vec![0u8; 64];
        fill_payload(&mut c, 123, 1, 1000);
        assert_ne!(a, c);
    }

    #[test]
    fn embedded_patterns_appear_in_payloads() {
        let pats = Arc::new(vec![b"XXWEBATTACKXX".to_vec()]);
        let cfg = CampusMixConfig {
            patterns: Some(pats),
            pattern_prob: 1.0,
            ..CampusMixConfig::sized(5, 4 << 20)
        };
        let pkts = CampusMix::new(cfg).collect_all();
        let mut found = 0;
        for p in &pkts {
            if let Ok(parsed) = scap_wire::parse_frame(&p.frame) {
                let pl = parsed.payload();
                if pl.windows(13).any(|w| w == b"XXWEBATTACKXX") {
                    found += 1;
                }
            }
        }
        assert!(found > 0, "no embedded patterns found on the wire");
    }

    #[test]
    fn session_with_overlap_consistent_bytes() {
        // Overlapping segments must carry identical bytes for the same
        // stream offsets (fill_payload determinism).
        let plan = DirPlan {
            total: 5000,
            embeds: vec![],
        };
        let s1 = plan.segment(99, 0, 1000, 100);
        let s2 = plan.segment(99, 0, 1050, 100);
        assert_eq!(&s1[50..], &s2[..50]);
    }
}
