//! OpenMetrics text exposition for the telemetry registry and the
//! pulse latency plane. Hand-rolled like every other exporter here: the
//! format is line-oriented and tiny, and the repository takes no
//! dependencies for serialization.
//!
//! The emitted text follows the OpenMetrics text format: one `# TYPE`
//! (and optional `# UNIT`/`# HELP`) block per metric family, cumulative
//! `_bucket{le="..."}` series for histograms, exemplars attached to
//! bucket lines as `# {uid="...",cursor="..."} <delay>`, and a final
//! `# EOF` terminator. [`validate`] is the matching checker the CI gate
//! and `scapctl metrics` run before trusting a scrape.

use crate::hist::{bucket_range, BUCKETS};
use crate::pulse::PulseSnapshot;
use crate::registry::Snapshot;
use crate::{Gauge, Metric, PulseStage};

/// Incremental OpenMetrics text builder. One `family_*` call per metric
/// family keeps each family's samples contiguous, as the format
/// requires; [`OpenMetrics::finish`] appends the `# EOF` terminator.
#[derive(Default)]
pub struct OpenMetrics {
    out: String,
}

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn label_str(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

impl OpenMetrics {
    /// An empty exposition.
    pub fn new() -> Self {
        OpenMetrics::default()
    }

    /// Emit one counter family with a single labeled sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.out.push_str(&format!("# TYPE {name} counter\n"));
        if !help.is_empty() {
            self.out.push_str(&format!("# HELP {name} {help}\n"));
        }
        self.out
            .push_str(&format!("{name}_total{} {value}\n", label_str(labels)));
    }

    /// Emit one gauge family with arbitrary labeled samples.
    pub fn gauge(&mut self, name: &str, help: &str, series: &[(Vec<(&str, &str)>, u64)]) {
        self.out.push_str(&format!("# TYPE {name} gauge\n"));
        if !help.is_empty() {
            self.out.push_str(&format!("# HELP {name} {help}\n"));
        }
        for (labels, value) in series {
            self.out
                .push_str(&format!("{name}{} {value}\n", label_str(labels)));
        }
    }

    /// Emit every registry counter and gauge (aggregated across shards)
    /// as `scap_<name>` families carrying `labels`.
    pub fn registry(&mut self, snap: &Snapshot, labels: &[(&str, &str)]) {
        for m in Metric::ALL {
            let v = snap.total(m);
            if v != 0 {
                self.counter(&format!("scap_{}", m.name()), "", labels, v);
            }
        }
        for g in Gauge::ALL {
            let v = snap.gauge_max(g);
            if v != 0 {
                self.gauge(&format!("scap_{}", g.name()), "", &[(labels.to_vec(), v)]);
            }
        }
    }

    /// Append the pulse plane: one `scap_pulse_latency_ns` histogram
    /// family with a `stage` label per non-empty stage, exemplars on
    /// their bucket lines, and a quantile-summary gauge family.
    pub fn pulse(&mut self, pulse: &PulseSnapshot, labels: &[(&str, &str)]) {
        let name = "scap_pulse_latency_ns";
        self.out.push_str(&format!("# TYPE {name} histogram\n"));
        self.out.push_str(&format!("# UNIT {name} ns\n"));
        self.out.push_str(&format!(
            "# HELP {name} Per-stage capture latency (pulse plane).\n"
        ));
        for st in PulseStage::ALL {
            let h = pulse.stage(st);
            if h.count() == 0 {
                continue;
            }
            let exemplars = pulse.stage_exemplars(st);
            let mut base = labels.to_vec();
            base.push(("stage", st.name()));
            let last = h.buckets.iter().rposition(|&c| c != 0).unwrap_or(0);
            let mut cum = 0u64;
            for b in 0..=last.min(BUCKETS - 1) {
                cum += h.buckets[b];
                let le = if b == BUCKETS - 1 {
                    "+Inf".to_string()
                } else {
                    bucket_range(b).1.to_string()
                };
                let mut lab = base.clone();
                lab.push(("le", &le));
                let ex = exemplars
                    .iter()
                    .filter(|e| crate::hist::bucket_of(e.delay_ns) == b)
                    .max_by_key(|e| (e.delay_ns, e.uid));
                let ex_str = ex
                    .map(|e| {
                        format!(
                            " # {{uid=\"{}\",cursor=\"{}\"}} {}",
                            e.uid, e.cursor, e.delay_ns
                        )
                    })
                    .unwrap_or_default();
                self.out
                    .push_str(&format!("{name}_bucket{} {cum}{ex_str}\n", label_str(&lab)));
            }
            if last < BUCKETS - 1 {
                let mut lab = base.clone();
                lab.push(("le", "+Inf"));
                self.out
                    .push_str(&format!("{name}_bucket{} {}\n", label_str(&lab), h.count()));
            }
            self.out
                .push_str(&format!("{name}_sum{} {}\n", label_str(&base), h.sum));
            self.out
                .push_str(&format!("{name}_count{} {}\n", label_str(&base), h.count()));
        }
        // Interpolated percentile summaries as a gauge family.
        let qname = "scap_pulse_latency_quantile_ns";
        let mut series: Vec<(Vec<(&str, &str)>, u64)> = Vec::new();
        for st in PulseStage::ALL {
            let h = pulse.stage(st);
            if h.count() == 0 {
                continue;
            }
            for (qs, q) in [("0.5", 0.5), ("0.99", 0.99), ("0.999", 0.999)] {
                let mut lab = labels.to_vec();
                lab.push(("stage", st.name()));
                lab.push(("q", qs));
                series.push((lab, h.quantile(q)));
            }
        }
        if !series.is_empty() {
            self.gauge(
                qname,
                "Interpolated per-stage latency percentiles.",
                &series,
            );
        }
    }

    /// Terminate the exposition. The result always ends with `# EOF`.
    pub fn finish(mut self) -> String {
        self.out.push_str("# EOF\n");
        self.out
    }
}

/// Validate an OpenMetrics text exposition: every line is a well-formed
/// comment or sample, and the exposition ends with `# EOF`. Returns the
/// number of sample lines.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut saw_eof = false;
    for (no, line) in text.lines().enumerate() {
        let err = |m: &str| format!("line {}: {m}: {line:?}", no + 1);
        if saw_eof {
            return Err(err("content after # EOF"));
        }
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let kind = rest.split_whitespace().next().unwrap_or("");
            if !matches!(kind, "TYPE" | "UNIT" | "HELP") {
                return Err(err("unknown comment kind"));
            }
            continue;
        }
        if line.trim().is_empty() {
            return Err(err("blank line"));
        }
        // Sample: name[{labels}] value [# {labels} exemplar-value]
        let (series, _exemplar) = match line.split_once(" # ") {
            Some((s, e)) => {
                if !e.starts_with('{') {
                    return Err(err("malformed exemplar"));
                }
                (s, Some(e))
            }
            None => (line, None),
        };
        let name_end = series.find(['{', ' ']).ok_or_else(|| err("no value"))?;
        let name = &series[..name_end];
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(err("bad metric name"));
        }
        let rest = &series[name_end..];
        let value_part = if let Some(stripped) = rest.strip_prefix('{') {
            let close = stripped.find('}').ok_or_else(|| err("unclosed labels"))?;
            &stripped[close + 1..]
        } else {
            rest
        };
        let value = value_part.trim();
        if value != "+Inf" && value.parse::<f64>().is_err() {
            return Err(err("unparseable value"));
        }
        samples += 1;
    }
    if !saw_eof {
        return Err("exposition does not end with # EOF".into());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::PlainRegistry;
    use crate::{Metric, Pulse, PulseStage};

    #[test]
    fn exposition_validates_and_terminates() {
        let r = PlainRegistry::new(2);
        r.add(0, Metric::WirePackets, 10);
        r.add(1, Metric::DeliveredBytes, 999);
        r.gauge_set(0, crate::Gauge::GovernorLevel, 2);
        let mut p = Pulse::new(900, 4);
        for i in 0..600u64 {
            p.record_uid(PulseStage::Delivery, (i * 37) % 50_000, 1 + i, i);
        }
        p.record(PulseStage::NicVerdict, 90);
        let mut om = OpenMetrics::new();
        om.registry(&r.snapshot(), &[("shard", "0")]);
        om.pulse(&p.snapshot(), &[("mode", "fastpath")]);
        let text = om.finish();
        assert!(text.ends_with("# EOF\n"));
        let n = validate(&text).expect("exposition should validate");
        assert!(n > 5, "too few samples: {n}\n{text}");
        assert!(text.contains("scap_wire_packets_total{shard=\"0\"} 10"));
        assert!(text.contains("scap_pulse_latency_ns_bucket{mode=\"fastpath\",stage=\"delivery\""));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains(
            "scap_pulse_latency_quantile_ns{mode=\"fastpath\",stage=\"delivery\",q=\"0.99\"}"
        ));
        // Exemplars rode along on bucket lines.
        assert!(text.contains("# {uid=\""), "no exemplar emitted:\n{text}");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate("scap_x 1\n").is_err()); // no EOF
        assert!(validate("# EOF\nscap_x 1\n").is_err()); // content after EOF
        assert!(validate("bad name{} 1\n# EOF\n").is_err());
        assert!(validate("scap_x{a=\"b\" 1\n# EOF\n").is_err()); // unclosed labels
        assert!(validate("scap_x nope\n# EOF\n").is_err());
        assert_eq!(
            validate("# TYPE scap_x counter\nscap_x_total 3\n# EOF\n"),
            Ok(1)
        );
    }

    #[test]
    fn empty_exposition_is_just_eof() {
        let text = OpenMetrics::new().finish();
        assert_eq!(text, "# EOF\n");
        assert_eq!(validate(&text), Ok(0));
    }
}
