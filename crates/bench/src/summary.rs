//! Machine-readable run summary: `BENCH_summary.json`.
//!
//! At the end of an `experiments` run, the harness distills the produced
//! [`FigureResult`]s into one JSON document a CI job or notebook can
//! consume without parsing text tables: the maximum loss-free rate per
//! worker count (Fig. 10b), the processed-traffic ratio per stack at the
//! highest replay rate (Fig. 6b), and the per-stage span quantiles from
//! the telemetry experiment. Sections whose source experiment did not
//! run in this invocation are omitted. The JSON is hand-rolled — the
//! workspace carries no serialization dependency.

use crate::common::{ExpConfig, FigureResult};
use std::path::PathBuf;

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Emit a cell as a bare JSON number when it parses as one (the tables
/// pre-format all numerics), otherwise as a quoted string.
fn json_value(cell: &str) -> String {
    match cell.parse::<f64>() {
        Ok(v) if v.is_finite() => cell.to_string(),
        _ => format!("\"{}\"", json_escape(cell)),
    }
}

fn find<'a>(results: &'a [FigureResult], name: &str) -> Option<&'a FigureResult> {
    results.iter().find(|r| r.name == name)
}

/// Fig. 10b rows (`workers`, `max_lossfree_gbps`) as a JSON array.
fn lossfree_section(fig: &FigureResult) -> String {
    let items: Vec<String> = fig
        .rows
        .iter()
        .filter(|r| r.len() >= 2)
        .map(|r| {
            format!(
                "{{\"workers\": {}, \"gbps\": {}}}",
                json_value(&r[0]),
                json_value(&r[1])
            )
        })
        .collect();
    format!("  \"max_lossfree_gbps\": [{}]", items.join(", "))
}

/// The last (highest-rate) Fig. 6b row keyed by stack-name headers.
fn processed_section(fig: &FigureResult) -> Option<String> {
    let row = fig.rows.last()?;
    let mut fields = Vec::new();
    for (h, cell) in fig.headers.iter().zip(row.iter()) {
        fields.push(format!("\"{}\": {}", json_escape(h), json_value(cell)));
    }
    Some(format!(
        "  \"processed_traffic_percent_at_max_rate\": {{{}}}",
        fields.join(", ")
    ))
}

/// Per-stage count/mean/p50/p99 from the telemetry experiment.
fn stages_section(fig: &FigureResult) -> String {
    let items: Vec<String> = fig
        .rows
        .iter()
        .filter(|r| r.len() >= 5)
        .map(|r| {
            format!(
                "{{\"stage\": {}, \"count\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}}}",
                format_args!("\"{}\"", json_escape(&r[0])),
                json_value(&r[1]),
                json_value(&r[2]),
                json_value(&r[3]),
                json_value(&r[4])
            )
        })
        .collect();
    format!("  \"stage_spans\": [{}]", items.join(", "))
}

/// The archive counters plus per-priority retention from the store
/// experiment, as one `"store"` object.
fn store_section(archive: &FigureResult, priorities: Option<&FigureResult>) -> String {
    let mut fields: Vec<String> = archive
        .rows
        .iter()
        .filter(|r| r.len() >= 2)
        .map(|r| {
            format!(
                "\"{}\": {}",
                json_escape(&json_key(&r[0])),
                json_value(&r[1])
            )
        })
        .collect();
    if let Some(p) = priorities {
        let items: Vec<String> = p
            .rows
            .iter()
            .filter(|r| r.len() >= 5)
            .map(|r| {
                format!(
                    "{{\"priority\": {}, \"archived\": {}, \"pruned\": {}, \
                     \"discard_ratio\": {}, \"live_bytes\": {}}}",
                    json_value(&r[0]),
                    json_value(&r[1]),
                    json_value(&r[2]),
                    json_value(&r[3]),
                    json_value(&r[4])
                )
            })
            .collect();
        fields.push(format!("\"by_priority\": [{}]", items.join(", ")));
    }
    format!("  \"store\": {{{}}}", fields.join(", "))
}

/// One object per checkpoint interval from the warm-restart experiment,
/// keyed by the figure's own column headers.
fn restart_section(fig: &FigureResult) -> String {
    let items: Vec<String> = fig
        .rows
        .iter()
        .map(|row| {
            let fields: Vec<String> = fig
                .headers
                .iter()
                .zip(row.iter())
                .map(|(h, cell)| format!("\"{}\": {}", json_escape(h), json_value(cell)))
                .collect();
            format!("{{{}}}", fields.join(", "))
        })
        .collect();
    format!("  \"restart\": [{}]", items.join(", "))
}

/// Normalize a human table label into a snake_case JSON key.
fn json_key(label: &str) -> String {
    let mut key = String::new();
    for c in label.chars() {
        if c.is_alphanumeric() {
            key.push(c.to_ascii_lowercase());
        } else if !key.is_empty() && !key.ends_with('_') {
            key.push('_');
        }
    }
    key.trim_end_matches('_').to_string()
}

/// The flight-recorder reconciliation (flight vs telemetry, per check)
/// plus the drop-attribution rows, as one `"flight"` object. The
/// restart row doubles as the `ResilienceStats`-vs-journal cross-check.
fn flight_section(recon: &FigureResult, attribution: Option<&FigureResult>) -> String {
    let mut fields: Vec<String> = recon
        .rows
        .iter()
        .filter(|r| r.len() >= 3)
        .map(|r| {
            format!(
                "\"{}\": {{\"flight\": {}, \"telemetry\": {}}}",
                json_escape(&json_key(&r[0])),
                json_value(&r[1]),
                json_value(&r[2])
            )
        })
        .collect();
    if let Some(a) = attribution {
        let items: Vec<String> = a
            .rows
            .iter()
            .filter(|r| r.len() >= 6)
            .map(|r| {
                format!(
                    "{{\"kind\": \"{}\", \"layer\": \"{}\", \"reason\": \"{}\", \
                     \"events\": {}, \"pkts\": {}, \"bytes\": {}}}",
                    json_escape(&r[0]),
                    json_escape(&r[1]),
                    json_escape(&r[2]),
                    json_value(&r[3]),
                    json_value(&r[4]),
                    json_value(&r[5])
                )
            })
            .collect();
        fields.push(format!("\"attribution\": [{}]", items.join(", ")));
    }
    format!("  \"flight\": {{{}}}", fields.join(", "))
}

/// The per-tenant isolation/fairness and conservation tables from the
/// tenants experiment, joined by tenant name into one `"tenants"` array.
fn tenants_section(isolation: &FigureResult, conservation: Option<&FigureResult>) -> String {
    let items: Vec<String> = isolation
        .rows
        .iter()
        .filter(|r| r.len() >= 6)
        .map(|r| {
            let mut fields = vec![
                format!("\"tenant\": \"{}\"", json_escape(&r[0])),
                format!("\"state\": \"{}\"", json_escape(&r[1])),
                format!("\"solo_delivered_bytes\": {}", json_value(&r[2])),
                format!("\"shared_delivered_bytes\": {}", json_value(&r[3])),
                format!("\"shared_solo_percent\": {}", json_value(&r[4])),
                format!("\"hostile\": {}", r[5] == "yes"),
            ];
            if let Some(c) = conservation {
                if let Some(cr) = c.rows.iter().find(|cr| cr.len() >= 8 && cr[0] == r[0]) {
                    fields.push(format!("\"matched_bytes\": {}", json_value(&cr[1])));
                    fields.push(format!("\"dropped_bytes\": {}", json_value(&cr[3])));
                    fields.push(format!("\"discarded_bytes\": {}", json_value(&cr[4])));
                    fields.push(format!("\"journal_dropped_bytes\": {}", json_value(&cr[5])));
                    fields.push(format!("\"strikes\": {}", json_value(&cr[6])));
                    fields.push(format!("\"disconnected\": {}", cr[7] != "0"));
                }
            }
            format!("{{{}}}", fields.join(", "))
        })
        .collect();
    format!("  \"tenants\": [{}]", items.join(", "))
}

/// The fast-path head-to-head (classic vs. kernel-bypass dispatch at
/// 1M+ concurrent flows) plus the burst-size ablation, as one
/// `"fastpath"` object with absolute `pkts_per_sec` figures.
fn fastpath_section(throughput: &FigureResult, ablation: Option<&FigureResult>) -> String {
    // Mpkt/s column -> absolute pkts/s.
    let pps = |cell: &str| -> String {
        cell.parse::<f64>()
            .map(|v| format!("{:.0}", v * 1e6))
            .unwrap_or_else(|_| "null".into())
    };
    let mut fields = Vec::new();
    for r in throughput.rows.iter().filter(|r| r.len() >= 8) {
        let key = if r[0] == "fastpath" {
            "bypass"
        } else {
            "classic"
        };
        fields.push(format!(
            "\"{}\": {{\"pkts_per_sec\": {}, \"cycles_per_pkt\": {}, \"burst\": {}, \
             \"speedup\": {}}}",
            key,
            pps(&r[5]),
            json_value(&r[4]),
            json_value(&r[1]),
            json_value(&r[6])
        ));
    }
    if let Some(r) = throughput.rows.iter().find(|r| r.len() >= 4) {
        fields.push(format!("\"concurrent_flows\": {}", json_value(&r[3])));
    }
    if let Some(a) = ablation {
        let items: Vec<String> = a
            .rows
            .iter()
            .filter(|r| r.len() >= 6 && r[0] == "fastpath")
            .map(|r| {
                format!(
                    "{{\"burst\": {}, \"pkts_per_sec\": {}, \"cycles_per_pkt\": {}, \
                     \"speedup\": {}, \"fill_permille\": {}}}",
                    json_value(&r[1]),
                    pps(&r[3]),
                    json_value(&r[2]),
                    json_value(&r[4]),
                    json_value(&r[5])
                )
            })
            .collect();
        fields.push(format!("\"burst_ablation\": [{}]", items.join(", ")));
    }
    format!("  \"fastpath\": {{{}}}", fields.join(", "))
}

/// The programmable offload engine: the amplified million-flow replay's
/// headline numbers plus the per-cutoff hit-rate/softirq-savings curve,
/// as one `"offload"` object.
fn offload_section(scale: &FigureResult, fig8: Option<&FigureResult>) -> String {
    let metric = |name: &str| -> String {
        scale
            .rows
            .iter()
            .find(|r| r.len() >= 2 && r[0] == name)
            .map(|r| json_value(r[1].trim_end_matches('x')))
            .unwrap_or_else(|| "null".into())
    };
    let mut fields = vec![
        format!("\"flows_replayed\": {}", metric("flows_replayed")),
        format!("\"amplification\": {}", metric("amplification")),
        format!("\"concurrent_at_end\": {}", metric("concurrent_at_end")),
        format!("\"wire_pkts\": {}", metric("wire_pkts")),
        format!("\"hit_rate_pct\": {}", metric("offload_hit_rate%")),
        format!("\"nic_dropped_pkts\": {}", metric("nic_dropped_pkts")),
        format!("\"evictions\": {}", metric("evictions")),
        format!("\"table_load_permille\": {}", metric("table_load_permille")),
    ];
    if let Some(f) = fig8 {
        let items: Vec<String> = f
            .rows
            .iter()
            .filter(|r| r.len() >= 6)
            .map(|r| {
                format!(
                    "{{\"cutoff\": \"{}\", \"hit_rate_pct\": {}, \"softirq_none_pct\": {}, \
                     \"softirq_offload_pct\": {}, \"savings_pp\": {}}}",
                    json_escape(&r[0]),
                    json_value(&r[1]),
                    json_value(&r[2]),
                    json_value(&r[4]),
                    json_value(&r[5])
                )
            })
            .collect();
        fields.push(format!("\"per_cutoff\": [{}]", items.join(", ")));
    }
    format!("  \"offload\": {{{}}}", fields.join(", "))
}

/// The pulse plane: one array of per-stage latency rows per experiment
/// that reported it (`<exp>_latency` figures), keyed by experiment, as
/// one `"latency"` object. Quantiles are interpolated nanoseconds;
/// `exemplars`/`threshold_ns` describe the tail-sample set riding with
/// each histogram.
fn latency_section(figs: &[&FigureResult]) -> String {
    let objs: Vec<String> = figs
        .iter()
        .map(|f| {
            let key = f.name.trim_end_matches("_latency");
            let items: Vec<String> = f
                .rows
                .iter()
                .filter(|r| r.len() >= 7)
                .map(|r| {
                    format!(
                        "{{\"stage\": \"{}\", \"count\": {}, \"p50_ns\": {}, \
                         \"p99_ns\": {}, \"p999_ns\": {}, \"exemplars\": {}, \
                         \"threshold_ns\": {}}}",
                        json_escape(&r[0]),
                        json_value(&r[1]),
                        json_value(&r[2]),
                        json_value(&r[3]),
                        json_value(&r[4]),
                        json_value(&r[5]),
                        json_value(&r[6])
                    )
                })
                .collect();
            format!("\"{}\": [{}]", json_escape(key), items.join(", "))
        })
        .collect();
    format!("  \"latency\": {{{}}}", objs.join(", "))
}

/// The sharded soak run: fleet-wide conservation, storm/recovery
/// counters, and the federated-query outcome as one `"soak"` object.
fn soak_section(fleet: &FigureResult, federated: Option<&FigureResult>) -> String {
    let metric = |name: &str| -> String {
        fleet
            .rows
            .iter()
            .find(|r| r.len() >= 2 && r[0] == name)
            .map(|r| json_value(r[1].trim_end_matches('x')))
            .unwrap_or_else(|| "null".into())
    };
    let mut fields = vec![
        format!("\"shards\": {}", metric("shards")),
        format!("\"amplification\": {}", metric("amplification")),
        format!("\"flows_tracked\": {}", metric("flows_tracked")),
        format!("\"wire_pkts\": {}", metric("wire_pkts")),
        format!("\"shard_down_pkts\": {}", metric("shard_down_pkts")),
        format!("\"shard_down_bytes\": {}", metric("shard_down_bytes")),
        format!("\"kills\": {}", metric("kills")),
        format!("\"respawns\": {}", metric("respawns")),
        format!("\"parked\": {}", metric("parked")),
        format!("\"max_blackout_ms\": {}", metric("max_blackout_ms")),
        format!("\"throughput_mpps\": {}", metric("throughput_mpps")),
    ];
    if let Some(f) = federated {
        let ok = f
            .rows
            .iter()
            .filter(|r| r.len() >= 2 && r[1] == "ok")
            .count();
        fields.push(format!(
            "\"federated\": {{\"shards_ok\": {ok}, \"shards_total\": {}}}",
            f.rows.len()
        ));
    }
    format!("  \"soak\": {{{}}}", fields.join(", "))
}

/// Render the summary document from every figure produced in this run.
pub fn render_bench_summary(cfg: &ExpConfig, results: &[FigureResult]) -> String {
    let mut sections = vec![
        "  \"schema\": \"scap-bench-summary/1\"".to_string(),
        format!("  \"scale\": \"{}\"", json_escape(cfg.scale.name)),
        format!("  \"seed\": {}", cfg.seed),
        format!(
            "  \"experiments\": [{}]",
            results
                .iter()
                .map(|r| format!("\"{}\"", json_escape(&r.name)))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    ];
    if let Some(fig) = find(results, "fig10b_max_lossfree_rate") {
        sections.push(lossfree_section(fig));
    }
    if let Some(sec) = find(results, "fig6b_matched").and_then(processed_section) {
        sections.push(sec);
    }
    if let Some(fig) = find(results, "telemetry_stages") {
        sections.push(stages_section(fig));
    }
    if let Some(fig) = find(results, "store_archive") {
        sections.push(store_section(fig, find(results, "store_priorities")));
    }
    if let Some(fig) = find(results, "restart_recovery") {
        sections.push(restart_section(fig));
    }
    if let Some(fig) = find(results, "flight_reconciliation") {
        sections.push(flight_section(fig, find(results, "flight_attribution")));
    }
    if let Some(fig) = find(results, "tenants_isolation") {
        sections.push(tenants_section(fig, find(results, "tenants_conservation")));
    }
    if let Some(fig) = find(results, "fastpath_throughput") {
        sections.push(fastpath_section(
            fig,
            find(results, "fastpath_burst_ablation"),
        ));
    }
    if let Some(fig) = find(results, "offload_scale") {
        sections.push(offload_section(fig, find(results, "offload_fig8_softirq")));
    }
    if let Some(fig) = find(results, "soak_fleet") {
        sections.push(soak_section(fig, find(results, "soak_federated")));
    }
    let latency_figs: Vec<&FigureResult> = results
        .iter()
        .filter(|r| r.name.ends_with("_latency"))
        .collect();
    if !latency_figs.is_empty() {
        sections.push(latency_section(&latency_figs));
    }
    format!("{{\n{}\n}}\n", sections.join(",\n"))
}

/// Convert unix days to a civil (year, month, day) date
/// (Howard Hinnant's `civil_from_days`, public domain algorithm).
fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// One line of `results/trajectory.jsonl`: the run's headline throughput
/// figures (fast-path pkts/s and offload hit rate/flows when those
/// experiments ran), stamped with the git SHA and UTC date so successive
/// runs accumulate into a performance trajectory of the repository.
pub fn render_trajectory_record(cfg: &ExpConfig, results: &[FigureResult]) -> String {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((unix_secs / 86_400) as i64);
    let sha = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into());

    let mut fields = vec![
        format!("\"date\": \"{y:04}-{m:02}-{d:02}\""),
        format!("\"unix_secs\": {unix_secs}"),
        format!("\"git_sha\": \"{}\"", json_escape(&sha)),
        format!("\"scale\": \"{}\"", json_escape(cfg.scale.name)),
        format!("\"seed\": {}", cfg.seed),
    ];
    if let Some(t) = find(results, "fastpath_throughput") {
        for r in t.rows.iter().filter(|r| r.len() >= 8) {
            let key = if r[0] == "fastpath" {
                "fastpath_pkts_per_sec"
            } else {
                "classic_pkts_per_sec"
            };
            if let Ok(mpps) = r[5].parse::<f64>() {
                fields.push(format!("\"{key}\": {:.0}", mpps * 1e6));
            }
        }
    }
    if let Some(s) = find(results, "offload_scale") {
        let metric = |name: &str| -> Option<String> {
            s.rows
                .iter()
                .find(|r| r.len() >= 2 && r[0] == name)
                .map(|r| json_value(r[1].trim_end_matches('x')))
        };
        if let Some(v) = metric("offload_hit_rate%") {
            fields.push(format!("\"offload_hit_rate_pct\": {v}"));
        }
        if let Some(v) = metric("flows_replayed") {
            fields.push(format!("\"offload_flows_replayed\": {v}"));
        }
        if let Some(v) = metric("wire_pkts") {
            fields.push(format!("\"offload_wire_pkts\": {v}"));
        }
    }
    if let Some(s) = find(results, "soak_fleet") {
        let metric = |name: &str| -> Option<String> {
            s.rows
                .iter()
                .find(|r| r.len() >= 2 && r[0] == name)
                .map(|r| json_value(&r[1]))
        };
        if let Some(v) = metric("throughput_mpps") {
            if let Ok(mpps) = v.parse::<f64>() {
                fields.push(format!("\"soak_pkts_per_sec\": {:.0}", mpps * 1e6));
            }
        }
        if let Some(v) = metric("flows_tracked") {
            fields.push(format!("\"soak_flows_tracked\": {v}"));
        }
        if let Some(v) = metric("max_blackout_ms") {
            fields.push(format!("\"soak_max_blackout_ms\": {v}"));
        }
    }
    // End-to-end delivery p99 from whichever experiment reported the
    // pulse plane first — the trajectory's latency headline.
    if let Some(p99) = results
        .iter()
        .filter(|r| r.name.ends_with("_latency"))
        .flat_map(|r| r.rows.iter())
        .find(|row| row.len() >= 4 && row[0] == "delivery")
        .map(|row| row[3].clone())
    {
        fields.push(format!("\"p99_delivery_ns\": {}", json_value(&p99)));
    }
    format!("{{{}}}\n", fields.join(", "))
}

/// Append this run's [`render_trajectory_record`] line to
/// `trajectory.jsonl` in the output directory, returning the path.
pub fn append_trajectory(cfg: &ExpConfig, results: &[FigureResult]) -> std::io::Result<PathBuf> {
    use std::io::Write;
    std::fs::create_dir_all(&cfg.out_dir)?;
    let path = cfg.out_dir.join("trajectory.jsonl");
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    f.write_all(render_trajectory_record(cfg, results).as_bytes())?;
    Ok(path)
}

/// Write `BENCH_summary.json` into the run's output directory, returning
/// the path written.
pub fn write_bench_summary(cfg: &ExpConfig, results: &[FigureResult]) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(&cfg.out_dir)?;
    let path = cfg.out_dir.join("BENCH_summary.json");
    std::fs::write(&path, render_bench_summary(cfg, results))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Scale;

    fn fig(name: &str, headers: &[&str], rows: Vec<Vec<String>>) -> FigureResult {
        FigureResult {
            name: name.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows,
            notes: vec![],
        }
    }

    #[test]
    fn sections_appear_only_when_their_figures_ran() {
        let cfg = ExpConfig::new(Scale::smoke());
        let none = render_bench_summary(&cfg, &[]);
        assert!(none.contains("\"schema\": \"scap-bench-summary/1\""));
        assert!(!none.contains("max_lossfree_gbps"));
        assert!(!none.contains("stage_spans"));

        let results = vec![
            fig(
                "fig10b_max_lossfree_rate",
                &["workers", "max_lossfree_gbps"],
                vec![
                    vec!["1".into(), "1.25".into()],
                    vec!["8".into(), "5.50".into()],
                ],
            ),
            fig(
                "fig6b_matched",
                &["rate_gbps", "libnids", "snort", "scap", "scap_pkts"],
                vec![vec![
                    "6.00".into(),
                    "8.1".into(),
                    "9.0".into(),
                    "52.3".into(),
                    "47.0".into(),
                ]],
            ),
            fig(
                "telemetry_stages",
                &["stage", "count", "mean", "p50", "p99"],
                vec![vec![
                    "kernel".into(),
                    "1000".into(),
                    "812.5".into(),
                    "700".into(),
                    "3100".into(),
                ]],
            ),
        ];
        let full = render_bench_summary(&cfg, &results);
        assert!(full.contains("\"max_lossfree_gbps\": [{\"workers\": 1, \"gbps\": 1.25}"));
        assert!(full.contains("\"processed_traffic_percent_at_max_rate\": {\"rate_gbps\": 6.00"));
        assert!(full.contains("\"stage\": \"kernel\", \"count\": 1000"));
        assert!(!full.contains("\"store\""));
    }

    #[test]
    fn store_section_keys_and_priorities() {
        let cfg = ExpConfig::new(Scale::smoke());
        let results = vec![
            fig(
                "store_archive",
                &["counter", "value"],
                vec![
                    vec!["streams archived".into(), "12".into()],
                    vec!["verify clean".into(), "true".into()],
                ],
            ),
            fig(
                "store_priorities",
                &[
                    "priority",
                    "archived",
                    "pruned",
                    "discard_ratio",
                    "live_bytes",
                ],
                vec![vec![
                    "0".into(),
                    "5".into(),
                    "3".into(),
                    "0.375".into(),
                    "4096".into(),
                ]],
            ),
        ];
        let full = render_bench_summary(&cfg, &results);
        assert!(full.contains("\"store\": {"));
        assert!(full.contains("\"streams_archived\": 12"));
        assert!(full.contains("\"verify_clean\": \"true\""));
        assert!(full.contains(
            "\"by_priority\": [{\"priority\": 0, \"archived\": 5, \"pruned\": 3, \
             \"discard_ratio\": 0.375, \"live_bytes\": 4096}]"
        ));
    }

    #[test]
    fn flight_section_reconciliation_and_attribution() {
        let cfg = ExpConfig::new(Scale::smoke());
        let results = vec![
            fig(
                "flight_reconciliation",
                &["check", "flight", "telemetry"],
                vec![
                    vec!["dropped packets".into(), "7".into(), "7".into()],
                    vec![
                        "restarts (counter vs journal)".into(),
                        "1".into(),
                        "1".into(),
                    ],
                ],
            ),
            fig(
                "flight_attribution",
                &["kind", "layer", "reason", "events", "pkts", "bytes"],
                vec![vec![
                    "drop".into(),
                    "kernel".into(),
                    "ring_full".into(),
                    "7".into(),
                    "7".into(),
                    "448".into(),
                ]],
            ),
        ];
        let full = render_bench_summary(&cfg, &results);
        assert!(full.contains("\"dropped_packets\": {\"flight\": 7, \"telemetry\": 7}"));
        assert!(full.contains("\"restarts_counter_vs_journal\": {\"flight\": 1, \"telemetry\": 1}"));
        assert!(full.contains(
            "\"attribution\": [{\"kind\": \"drop\", \"layer\": \"kernel\", \
             \"reason\": \"ring_full\", \"events\": 7, \"pkts\": 7, \"bytes\": 448}]"
        ));
    }

    #[test]
    fn tenants_section_joins_isolation_and_conservation() {
        let cfg = ExpConfig::new(Scale::smoke());
        let results = vec![
            fig(
                "tenants_isolation",
                &[
                    "tenant",
                    "state",
                    "solo_delivered_B",
                    "shared_delivered_B",
                    "shared/solo %",
                    "hostile",
                ],
                vec![
                    vec![
                        "web".into(),
                        "active".into(),
                        "1000".into(),
                        "1000".into(),
                        "100".into(),
                        "no".into(),
                    ],
                    vec![
                        "bulk".into(),
                        "disconnected".into(),
                        "9000".into(),
                        "30".into(),
                        "0".into(),
                        "yes".into(),
                    ],
                ],
            ),
            fig(
                "tenants_conservation",
                &[
                    "tenant",
                    "matched_B",
                    "delivered_B",
                    "dropped_B",
                    "discarded_B",
                    "journal_dropped_B",
                    "strikes",
                    "disconnected",
                ],
                vec![
                    vec![
                        "web".into(),
                        "1500".into(),
                        "1000".into(),
                        "0".into(),
                        "500".into(),
                        "0".into(),
                        "0".into(),
                        "0".into(),
                    ],
                    vec![
                        "bulk".into(),
                        "130".into(),
                        "30".into(),
                        "100".into(),
                        "0".into(),
                        "100".into(),
                        "8".into(),
                        "1".into(),
                    ],
                ],
            ),
        ];
        let full = render_bench_summary(&cfg, &results);
        assert!(full.contains(
            "\"tenants\": [{\"tenant\": \"web\", \"state\": \"active\", \
             \"solo_delivered_bytes\": 1000, \"shared_delivered_bytes\": 1000, \
             \"shared_solo_percent\": 100, \"hostile\": false, \"matched_bytes\": 1500"
        ));
        assert!(full.contains("\"hostile\": true"));
        assert!(
            full.contains("\"journal_dropped_bytes\": 100, \"strikes\": 8, \"disconnected\": true")
        );
    }

    #[test]
    fn fastpath_section_pkts_per_sec_and_ablation() {
        let cfg = ExpConfig::new(Scale::smoke());
        let results = vec![
            fig(
                "fastpath_throughput",
                &[
                    "path",
                    "burst",
                    "wire_pkts",
                    "concurrent_flows",
                    "cycles/pkt",
                    "Mpkt/s",
                    "speedup",
                    "induced_drops",
                ],
                vec![
                    vec![
                        "classic".into(),
                        "-".into(),
                        "2097152".into(),
                        "1048576".into(),
                        "990.2".into(),
                        "16.16".into(),
                        "1.00".into(),
                        "3232".into(),
                    ],
                    vec![
                        "fastpath".into(),
                        "64".into(),
                        "2097152".into(),
                        "1048576".into(),
                        "549.6".into(),
                        "29.11".into(),
                        "1.80".into(),
                        "3232".into(),
                    ],
                ],
            ),
            fig(
                "fastpath_burst_ablation",
                &[
                    "path",
                    "burst",
                    "cycles/pkt",
                    "Mpkt/s",
                    "speedup",
                    "fill_permille",
                ],
                vec![
                    vec![
                        "classic".into(),
                        "-".into(),
                        "984.5".into(),
                        "16.25".into(),
                        "1.00".into(),
                        "-".into(),
                    ],
                    vec![
                        "fastpath".into(),
                        "8".into(),
                        "609.5".into(),
                        "26.25".into(),
                        "1.62".into(),
                        "1000".into(),
                    ],
                ],
            ),
        ];
        let out = render_bench_summary(&cfg, &results);
        assert!(out.contains("\"fastpath\": {"));
        assert!(out.contains("\"bypass\": {\"pkts_per_sec\": 29110000"));
        assert!(out.contains("\"classic\": {\"pkts_per_sec\": 16160000"));
        assert!(out.contains("\"concurrent_flows\": 1048576"));
        assert!(out.contains("\"burst_ablation\": [{\"burst\": 8, \"pkts_per_sec\": 26250000"));
        // The classic reference row stays out of the ablation array.
        assert!(!out.contains("\"burst\": \"-\", \"pkts_per_sec\""));
    }

    #[test]
    fn offload_section_headline_and_per_cutoff() {
        let cfg = ExpConfig::new(Scale::smoke());
        let results = vec![
            fig(
                "offload_scale",
                &["metric", "value"],
                vec![
                    vec!["base_flows".into(), "671".into()],
                    vec!["amplification".into(), "15x".into()],
                    vec!["flows_replayed".into(), "10065".into()],
                    vec!["concurrent_at_end".into(), "10065".into()],
                    vec!["wire_pkts".into(), "264210".into()],
                    vec!["offload_hit_rate%".into(), "52.2".into()],
                    vec!["nic_dropped_pkts".into(), "137876".into()],
                    vec!["evictions".into(), "0".into()],
                    vec!["table_load_permille".into(), "3".into()],
                ],
            ),
            fig(
                "offload_fig8_softirq",
                &[
                    "cutoff",
                    "hit_rate%",
                    "softirq_none%",
                    "softirq_fdir%",
                    "softirq_offload%",
                    "savings_pp",
                ],
                vec![vec![
                    "10K".into(),
                    "57.8".into(),
                    "4.2".into(),
                    "2.5".into(),
                    "2.4".into(),
                    "1.8".into(),
                ]],
            ),
        ];
        let out = render_bench_summary(&cfg, &results);
        assert!(out.contains("\"offload\": {"));
        assert!(out.contains("\"flows_replayed\": 10065"));
        assert!(out.contains("\"amplification\": 15"));
        assert!(out.contains("\"hit_rate_pct\": 52.2"));
        assert!(out.contains(
            "\"per_cutoff\": [{\"cutoff\": \"10K\", \"hit_rate_pct\": 57.8, \
             \"softirq_none_pct\": 4.2, \"softirq_offload_pct\": 2.4, \"savings_pp\": 1.8}]"
        ));
    }

    #[test]
    fn latency_section_keys_by_experiment_and_feeds_trajectory() {
        let cfg = ExpConfig::new(Scale::smoke());
        let lat_headers = [
            "stage",
            "count",
            "p50_ns",
            "p99_ns",
            "p999_ns",
            "exemplars",
            "threshold_ns",
        ];
        let results = vec![
            fig(
                "fastpath_latency",
                &lat_headers,
                vec![
                    vec![
                        "kernel_dispatch".into(),
                        "2097152".into(),
                        "25500".into(),
                        "50600".into(),
                        "51000".into(),
                        "8".into(),
                        "32768".into(),
                    ],
                    vec![
                        "delivery".into(),
                        "2097152".into(),
                        "25700".into(),
                        "50900".into(),
                        "51050".into(),
                        "8".into(),
                        "32768".into(),
                    ],
                ],
            ),
            fig(
                "soak_latency",
                &lat_headers,
                vec![vec![
                    "delivery".into(),
                    "884000".into(),
                    "110000".into(),
                    "420000".into(),
                    "510000".into(),
                    "6".into(),
                    "262144".into(),
                ]],
            ),
        ];
        let full = render_bench_summary(&cfg, &results);
        assert!(full.contains("\"latency\": {\"fastpath\": ["));
        assert!(full.contains(
            "{\"stage\": \"delivery\", \"count\": 2097152, \"p50_ns\": 25700, \
             \"p99_ns\": 50900, \"p999_ns\": 51050, \"exemplars\": 8, \
             \"threshold_ns\": 32768}"
        ));
        assert!(full.contains("\"soak\": [{\"stage\": \"delivery\""));

        // Trajectory takes the first delivery row's p99.
        let line = render_trajectory_record(&cfg, &results);
        assert!(line.contains("\"p99_delivery_ns\": 50900"));

        // No latency figures -> no section, no trajectory field.
        let none = render_bench_summary(&cfg, &[]);
        assert!(!none.contains("\"latency\""));
        assert!(!render_trajectory_record(&cfg, &[]).contains("p99_delivery_ns"));
    }

    #[test]
    fn escaping_and_non_numeric_cells() {
        assert_eq!(json_value("3.25"), "3.25");
        assert_eq!(json_value("nan"), "\"nan\"");
        assert_eq!(json_value("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn trajectory_record_carries_throughput_and_stamp() {
        let cfg = ExpConfig::new(Scale::smoke());
        let results = vec![
            fig(
                "fastpath_throughput",
                &[
                    "path",
                    "burst",
                    "wire_pkts",
                    "concurrent_flows",
                    "cycles/pkt",
                    "Mpkt/s",
                    "speedup",
                    "induced_drops",
                ],
                vec![vec![
                    "fastpath".into(),
                    "64".into(),
                    "2097152".into(),
                    "1048576".into(),
                    "549.6".into(),
                    "29.11".into(),
                    "1.80".into(),
                    "3232".into(),
                ]],
            ),
            fig(
                "offload_scale",
                &["metric", "value"],
                vec![
                    vec!["offload_hit_rate%".into(), "52.2".into()],
                    vec!["flows_replayed".into(), "10065".into()],
                    vec!["wire_pkts".into(), "264210".into()],
                ],
            ),
        ];
        let line = render_trajectory_record(&cfg, &results);
        assert!(line.ends_with("}\n"));
        assert!(line.contains("\"fastpath_pkts_per_sec\": 29110000"));
        assert!(line.contains("\"offload_hit_rate_pct\": 52.2"));
        assert!(line.contains("\"offload_flows_replayed\": 10065"));
        assert!(line.contains("\"git_sha\": \""));
        assert!(line.contains("\"scale\": \"smoke\""));
        // Date must render as YYYY-MM-DD.
        let date = line.split("\"date\": \"").nth(1).unwrap();
        let date = &date[..10];
        assert_eq!(date.as_bytes()[4], b'-');
        assert_eq!(date.as_bytes()[7], b'-');
    }

    #[test]
    fn civil_from_days_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
    }
}
