#!/usr/bin/env bash
# CI gate: build, test, lint, format. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --check

echo "CI green."
