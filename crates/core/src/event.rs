//! Events delivered from the kernel module to user level.
//!
//! The paper avoids races between the kernel module and the application
//! by keeping a second `stream_t` instance that the kernel updates just
//! before enqueueing an event (§5.4). [`StreamSnapshot`] is that second
//! instance: an owned copy of the descriptor fields, consistent at event
//! time, handed to the callback.

use scap_flow::{DirStats, StreamErrors, StreamStatus};
use scap_memory::ChunkBuf;
use scap_wire::{Direction, FlowKey};

/// A stable identifier for a stream across the whole capture (unique over
/// all cores, never recycled).
pub type StreamUid = u64;

/// Per-packet record for packet delivery (§5.7): metadata plus the
/// location of the packet's payload inside the delivered chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRecord {
    /// Capture timestamp.
    pub ts_ns: u64,
    /// Wire length of the packet.
    pub wire_len: u32,
    /// Payload length stored in the chunk.
    pub payload_len: u32,
    /// Offset of this packet's payload within the chunk data
    /// (`u32::MAX` when the payload did not land in this chunk, e.g.
    /// duplicates that were discarded).
    pub chunk_off: u32,
}

/// The consistent descriptor copy delivered with every event.
#[derive(Debug, Clone)]
pub struct StreamSnapshot {
    /// Capture-wide stream id.
    pub uid: StreamUid,
    /// Canonical flow key.
    pub key: FlowKey,
    /// Direction of the stream's first packet relative to `key` (the
    /// client→server orientation for connections whose SYN was seen).
    pub first_dir: Direction,
    /// Lifecycle status at event time.
    pub status: StreamStatus,
    /// Reassembly error flags (`sd->error`).
    pub errors: StreamErrors,
    /// Stream priority.
    pub priority: u8,
    /// Whether the cutoff has been exceeded.
    pub cutoff_exceeded: bool,
    /// Per-direction counters (all/captured/discarded/dropped).
    pub dirs: [DirStats; 2],
    /// First-packet timestamp.
    pub first_ts_ns: u64,
    /// Last-packet timestamp at event time.
    pub last_ts_ns: u64,
    /// Chunks delivered so far (`sd->chunks`).
    pub chunks: u64,
    /// Cumulative processing time previously charged (`sd->processing_time`).
    pub processing_time_ns: u64,
    /// Bytes skipped in the warm-restart blackout window (non-zero only
    /// on streams carrying [`StreamErrors::RESUMED`]).
    pub resume_gap_bytes: u64,
}

impl StreamSnapshot {
    /// Human-readable status (for log lines in examples).
    pub fn status_str(&self) -> &'static str {
        match self.status {
            StreamStatus::Active => "active",
            StreamStatus::ClosedFin => "closed(fin)",
            StreamStatus::ClosedRst => "closed(rst)",
            StreamStatus::ClosedTimeout => "closed(timeout)",
        }
    }

    /// Total wire bytes both directions.
    pub fn total_bytes(&self) -> u64 {
        self.dirs[0].total_bytes + self.dirs[1].total_bytes
    }

    /// Total packets both directions.
    pub fn total_pkts(&self) -> u64 {
        self.dirs[0].total_pkts + self.dirs[1].total_pkts
    }
}

/// Event payloads.
#[derive(Debug)]
pub enum EventKind {
    /// A new stream was created.
    Created,
    /// Stream data is available: a chunk of reassembled payload.
    Data {
        /// Which direction the data belongs to.
        dir: Direction,
        /// The chunk (owned block from the arena; return it via
        /// `release_chunk` after processing).
        chunk: ChunkBuf,
        /// Per-packet records when `need_pkts` was set.
        packets: Vec<PacketRecord>,
    },
    /// The stream terminated (FIN, RST, or inactivity timeout).
    Terminated,
}

/// One event from kernel to user.
#[derive(Debug)]
pub struct Event {
    /// Descriptor snapshot, consistent at enqueue time.
    pub stream: StreamSnapshot,
    /// The payload.
    pub kind: EventKind,
    /// Core (event queue) this event was produced on.
    pub core: usize,
    /// NIC-ingress timestamp (trace clock) of the packet that produced
    /// this event; timer-generated events carry the timer tick. The
    /// pulse plane measures kernel-dispatch and delivery latency
    /// against this.
    pub ingress_ns: u64,
    /// Trace-clock time this event was enqueued on its per-core queue.
    pub enqueued_ns: u64,
}

impl Event {
    /// Bytes of chunk data carried (0 for non-data events).
    pub fn data_len(&self) -> usize {
        match &self.kind {
            EventKind::Data { chunk, .. } => chunk.len,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_wire::Transport;

    #[test]
    fn snapshot_aggregates() {
        let mut dirs = [DirStats::default(), DirStats::default()];
        dirs[0].total_bytes = 10;
        dirs[1].total_bytes = 32;
        dirs[0].total_pkts = 1;
        dirs[1].total_pkts = 2;
        let s = StreamSnapshot {
            uid: 1,
            key: FlowKey::new_v4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2, Transport::Tcp),
            first_dir: Direction::Forward,
            status: StreamStatus::Active,
            errors: StreamErrors::default(),
            priority: 0,
            cutoff_exceeded: false,
            dirs,
            first_ts_ns: 0,
            last_ts_ns: 9,
            chunks: 0,
            processing_time_ns: 0,
            resume_gap_bytes: 0,
        };
        assert_eq!(s.total_bytes(), 42);
        assert_eq!(s.total_pkts(), 3);
    }
}
