//! Chaos: the full live capture pipeline under a seeded fault storm —
//! mangled frames, flow-director install failures, RX ring stalls, arena
//! squeezes, and worker threads that panic or wedge mid-dispatch.
//!
//! The invariants under test are the graceful-degradation claims: the
//! process never panics, every wire packet still takes exactly one exit
//! (delivered / dropped / discarded), hardware-offload failures degrade
//! to software enforcement, dead workers are replaced, and the overload
//! governor steps back down once the storm passes.

use scap::{FaultPlan, Scap, ScapConfig, ScapKernel, StreamCtx};
use scap_trace::gen::{CampusMix, CampusMixConfig};
use scap_trace::Packet;
use scap_wire::PacketBuilder;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SEED: u64 = 11;

/// Campus traffic followed by a calm tail: two seconds of keepalive-grade
/// packets past the configured fault windows, so timers keep firing and
/// the governor has quiet time to de-escalate before the capture ends.
fn storm_trace() -> Vec<Packet> {
    let mut pkts = CampusMix::new(CampusMixConfig::sized(SEED, 4 << 20)).collect_all();
    let start = pkts.last().map_or(0, |p| p.ts_ns);
    for i in 0..220u64 {
        let ts = start + (i + 1) * 10_000_000;
        pkts.push(Packet::new(
            ts,
            PacketBuilder::udp_v4([10, 1, 1, 1], [10, 1, 1, 2], 9999, 53, b"ping"),
        ));
    }
    pkts
}

#[test]
fn fault_storm_degrades_gracefully_and_recovers() {
    let touched = Arc::new(AtomicU64::new(0));
    let mut scap = Scap::builder()
        .worker_threads(2)
        .use_fdir(true)
        .cutoff(8 << 10)
        .memory(8 << 20)
        .inactivity_timeout_ns(500_000_000)
        .fault_plan(FaultPlan::storm(SEED))
        .try_build()
        .unwrap();
    let t = touched.clone();
    scap.dispatch_data(move |ctx: &StreamCtx<'_>| {
        t.fetch_add(ctx.data.map_or(0, |d| d.len() as u64), Ordering::Relaxed);
    });
    let stats = scap.start_capture(storm_trace());

    // Packet conservation: every frame the NIC saw took exactly one exit.
    let st = &stats.stack;
    assert_eq!(
        st.wire_packets,
        st.delivered_packets + st.dropped_packets + st.discarded_packets,
        "conservation violated: wire={} delivered={} dropped={} discarded={}",
        st.wire_packets,
        st.delivered_packets,
        st.dropped_packets,
        st.discarded_packets,
    );
    assert!(
        touched.load(Ordering::Relaxed) > 0,
        "capture still delivers data"
    );

    // The telemetry subsystem must tell the same conservation story as
    // ScapStats, counter for counter, even under the storm.
    {
        use scap::telemetry::Metric;
        let snap = scap.telemetry_snapshot().expect("telemetry captured");
        assert_eq!(snap.total(Metric::WirePackets), st.wire_packets);
        assert_eq!(snap.total(Metric::DeliveredPackets), st.delivered_packets);
        assert_eq!(snap.total(Metric::DroppedPackets), st.dropped_packets);
        assert_eq!(snap.total(Metric::DiscardedPackets), st.discarded_packets);
        assert_eq!(
            snap.total(Metric::WirePackets),
            snap.total(Metric::DeliveredPackets)
                + snap.total(Metric::DroppedPackets)
                + snap.total(Metric::DiscardedPackets),
            "telemetry conservation violated"
        );
    }

    let r = &stats.resilience;
    // Frame-level mangling registered.
    assert!(r.frames_corrupted > 0, "{r:?}");
    assert!(r.frames_truncated > 0, "{r:?}");
    assert!(r.frames_duplicated > 0, "{r:?}");
    assert!(r.frames_reordered > 0, "{r:?}");
    // Hardware offload degraded but recovered: at least one retry
    // eventually installed, and at least one stream fell back to the
    // software cutoff after exhausting its retry budget.
    assert!(r.fdir_transient_failures > 0, "{r:?}");
    assert!(r.fdir_retries > 0, "{r:?}");
    assert!(r.fdir_retry_successes >= 1, "{r:?}");
    assert!(r.fdir_fallback_software >= 1, "{r:?}");
    // Worker faults: one injected panic, one injected 80 ms wedge; the
    // watchdog must have noticed both and spawned replacements.
    assert!(r.worker_panics >= 1, "{r:?}");
    assert!(r.worker_stalls_detected >= 1, "{r:?}");
    assert!(r.worker_restarts >= 2, "{r:?}");
    // The overload governor escalated under the arena squeeze and stepped
    // back down to normal during the calm tail.
    assert!(r.arena_spikes >= 1, "{r:?}");
    assert!(r.governor_max_level >= 1, "{r:?}");
    assert!(r.governor_transitions >= 2, "{r:?}");
    assert_eq!(
        r.governor_level, 0,
        "governor must return to level 0: {r:?}"
    );

    // The damage report mirrors the counters.
    let err = scap
        .last_capture_error()
        .expect("worker failures must be reported");
    assert!(err.panics() >= 1, "{err}");
    assert!(err.stalls() >= 1, "{err}");
}

#[test]
fn ring_stalls_register_without_losing_accounting() {
    // Synchronous kernel drive (no workers): ring stall windows and arena
    // spikes fire deterministically on the trace clock.
    let plan = FaultPlan::storm(SEED);
    let (packets, frame_stats) = scap::live::mangle_packets(&plan, storm_trace());
    let mut kernel = ScapKernel::new(ScapConfig {
        use_fdir: true,
        faults: Some(plan),
        ..ScapConfig::default()
    });
    kernel.note_frame_faults(frame_stats);
    let mut now = 0;
    for pkt in &packets {
        now = pkt.ts_ns;
        kernel.nic_receive(pkt);
        for core in 0..kernel.ncores() {
            while kernel.kernel_poll(core, now).is_some() {}
            kernel.kernel_timers(core, now);
            while let Some(ev) = kernel.next_event(core) {
                if let scap::EventKind::Data { dir, chunk, .. } = ev.kind {
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }
    }
    kernel.finish(now.saturating_add(1));
    for core in 0..kernel.ncores() {
        while let Some(ev) = kernel.next_event(core) {
            if let scap::EventKind::Data { dir, chunk, .. } = ev.kind {
                kernel.release_data(ev.stream.uid, dir, chunk);
            }
        }
    }
    let stats = kernel.stats();
    let st = &stats.stack;
    assert_eq!(
        st.wire_packets,
        st.delivered_packets + st.dropped_packets + st.discarded_packets,
    );
    assert!(
        stats.resilience.ring_stall_windows >= 1,
        "{:?}",
        stats.resilience
    );
    assert!(stats.resilience.arena_spikes >= 1, "{:?}", stats.resilience);

    // Telemetry sees the same exits — including the ring-overflow drops
    // that ScapStats folds in from the NIC at snapshot time.
    {
        use scap::telemetry::Metric;
        let snap = kernel.telemetry_snapshot();
        assert_eq!(snap.total(Metric::WirePackets), st.wire_packets);
        assert_eq!(snap.total(Metric::DeliveredPackets), st.delivered_packets);
        assert_eq!(snap.total(Metric::DroppedPackets), st.dropped_packets);
        assert_eq!(snap.total(Metric::DiscardedPackets), st.discarded_packets);
    }
}

/// Feed a synchronous capture of the campus mix into an archive writer,
/// swallowing injected-fault errors exactly like the live sink does.
fn drive_store(writer: &mut scap_store::StoreWriter) {
    let trace = CampusMix::new(CampusMixConfig::sized(SEED, 2 << 20)).collect_all();
    let mut kernel = ScapKernel::new(ScapConfig {
        inactivity_timeout_ns: 500_000_000,
        ..ScapConfig::default()
    });
    let mut now = 0;
    let mut drain = |kernel: &mut ScapKernel| {
        for core in 0..kernel.ncores() {
            while let Some(ev) = kernel.next_event(core) {
                let _ = writer.observe(&ev);
                if let scap::EventKind::Data { dir, chunk, .. } = ev.kind {
                    kernel.release_data(ev.stream.uid, dir, chunk);
                }
            }
        }
    };
    for pkt in &trace {
        now = pkt.ts_ns;
        kernel.nic_receive(pkt);
        for core in 0..kernel.ncores() {
            while kernel.kernel_poll(core, now).is_some() {}
            kernel.kernel_timers(core, now);
        }
        drain(&mut kernel);
    }
    kernel.finish(now.saturating_add(1));
    drain(&mut kernel);
}

/// Archive chaos: a seeded fault storm against the store writer. A torn
/// segment append kills the writer mid-frame; recovery on reopen must
/// drop *only* the torn tail — every committed stream survives
/// byte-identical — and `verify` must tell the truth before and after.
/// A second phase kills the writer after a fully-flushed frame but
/// before its index record: the frame becomes a benign orphan.
#[test]
fn store_fault_storm_loses_only_the_torn_tail() {
    use scap_store::{StoreConfig, StoreReader, StoreWriter};
    use std::collections::BTreeMap;

    let base = std::env::temp_dir().join(format!("scap-chaos-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Phase 1 — torn append mid-storm.
    let dir = base.join("torn");
    let mut plan = FaultPlan::new(SEED);
    plan.store.torn_append_prob = 0.05;
    let mut writer = StoreWriter::open(StoreConfig::new(&dir).segment_bytes(64 << 10)).unwrap();
    writer.attach_faults(&plan);
    drive_store(&mut writer);
    assert!(
        writer.stats().write_errors >= 1,
        "torn-append fault never fired: {:?}",
        writer.stats()
    );
    drop(writer);

    // Before recovery: the committed records are readable, and verify
    // reports the torn tail instead of hiding it.
    let reader = StoreReader::open(&dir).unwrap();
    let report = reader.verify().unwrap();
    assert!(report.segment_torn_bytes > 0, "{report}");
    assert!(!report.is_clean(), "{report}");
    assert!(!reader.is_empty(), "no stream committed before the fault");
    let committed: BTreeMap<u64, [Vec<u8>; 2]> = reader
        .iter()
        .map(|r| (r.uid, reader.read_stream(r.uid).unwrap()))
        .collect();
    drop(reader);

    // Writer-side reopen truncates the torn tail; nothing else.
    let recovered = StoreWriter::open(StoreConfig::new(&dir)).unwrap();
    assert!(
        recovered.stats().torn_tail_bytes_recovered > 0,
        "{:?}",
        recovered.stats()
    );
    assert_eq!(recovered.live_streams(), committed.len());
    drop(recovered);

    let reader = StoreReader::open(&dir).unwrap();
    let report = reader.verify().unwrap();
    assert!(report.is_clean(), "dirty after recovery: {report}");
    assert_eq!(
        reader.len(),
        committed.len(),
        "recovery lost a committed stream"
    );
    for (uid, data) in &committed {
        assert_eq!(
            &reader.read_stream(*uid).unwrap(),
            data,
            "committed stream {uid} changed across recovery"
        );
    }

    // Phase 2 — mid-write kill after a fully-flushed frame: the frame is
    // on disk but unindexed, so it must surface as a benign orphan.
    let dir = base.join("kill");
    let mut plan = FaultPlan::new(SEED ^ 1);
    plan.store.kill_after_appends = 5;
    let mut writer = StoreWriter::open(StoreConfig::new(&dir)).unwrap();
    writer.attach_faults(&plan);
    drive_store(&mut writer);
    assert!(writer.stats().write_errors >= 1);
    drop(writer);

    let reader = StoreReader::open(&dir).unwrap();
    let report = reader.verify().unwrap();
    assert!(report.orphan_frames >= 1, "{report}");
    assert_eq!(report.segment_torn_bytes, 0, "{report}");
    assert!(report.is_clean(), "orphans are benign: {report}");
    for r in reader.iter() {
        let data = reader.read_stream(r.uid).unwrap();
        assert_eq!(
            data[0].len() as u64 + data[1].len() as u64,
            r.stored_bytes(),
            "indexed stream {} unreadable after kill",
            r.uid
        );
    }
}

// ---------------------------------------------------------------------------
// Warm restart: kill/resume storm
// ---------------------------------------------------------------------------

/// Per-stream observations from one synchronous kernel drive.
#[derive(Default)]
struct RunObs {
    /// uid → final snapshot from its Terminated event.
    terminated: std::collections::HashMap<u64, scap::StreamSnapshot>,
    /// (uid, direction) → lowest chunk start offset delivered.
    first_chunk_offset: std::collections::HashMap<(u64, usize), u64>,
}

fn drain_into(kernel: &mut ScapKernel, obs: &mut RunObs) {
    for core in 0..kernel.ncores() {
        while let Some(ev) = kernel.next_event(core) {
            if let scap::EventKind::Terminated = ev.kind {
                obs.terminated.insert(ev.stream.uid, ev.stream.clone());
            }
            if let scap::EventKind::Data { dir, chunk, .. } = ev.kind {
                let e = obs
                    .first_chunk_offset
                    .entry((ev.stream.uid, dir.index()))
                    .or_insert(u64::MAX);
                *e = (*e).min(chunk.start_offset);
                kernel.release_data(ev.stream.uid, dir, chunk);
            }
        }
    }
}

/// Feed `trace[from..to]` one packet at a time, draining every event and
/// (when `every` is set) snapshotting the kernel after each multiple of
/// `every` packets. Returns the latest checkpoint bytes with the index
/// of the first packet *after* it.
fn drive_range(
    kernel: &mut ScapKernel,
    trace: &[Packet],
    from: usize,
    to: usize,
    every: Option<u64>,
    obs: &mut RunObs,
) -> Option<(Vec<u8>, usize)> {
    let mut last_ckpt = None;
    let mut seq = 0u64;
    for (i, pkt) in trace[from..to].iter().enumerate() {
        let now = pkt.ts_ns;
        kernel.nic_receive(pkt);
        for core in 0..kernel.ncores() {
            while kernel.kernel_poll(core, now).is_some() {}
            kernel.kernel_timers(core, now);
        }
        drain_into(kernel, obs);
        if let Some(every) = every {
            if (i as u64 + 1).is_multiple_of(every) {
                seq += 1;
                last_ckpt = Some((kernel.checkpoint_bytes(now, seq), from + i + 1));
            }
        }
    }
    last_ckpt
}

fn finish_run(kernel: &mut ScapKernel, now: u64, obs: &mut RunObs) {
    kernel.finish(now);
    drain_into(kernel, obs);
}

/// The warm-restart acceptance storm: kill the capture at a seeded
/// packet index, resume from the latest periodic checkpoint, and check
/// the recovery invariants against an uninterrupted run of the same
/// trace — no stream vanishes, uids stay stable, resumed streams carry
/// the RESUMED flag with a blackout-bounded gap, and no byte below a
/// stream's committed offset is ever delivered again.
#[test]
fn kill_and_resume_storm_preserves_streams() {
    use scap::checkpoint::CheckpointImage;
    use scap_flow::StreamErrors;

    let seed: u64 = std::env::var("SCAP_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(23);
    let trace = CampusMix::new(CampusMixConfig::sized(seed, 2 << 20)).collect_all();
    let n = trace.len();
    // Kill somewhere in the middle of the trace, derived from the seed.
    let mix = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let kill_idx = n * 2 / 5 + ((mix >> 33) as usize) % (n / 4);
    const CKPT_EVERY: u64 = 200;
    let cfg = || ScapConfig {
        inactivity_timeout_ns: 2_000_000_000,
        ..ScapConfig::default()
    };

    // Uninterrupted baseline.
    let mut base = RunObs::default();
    let mut kb = ScapKernel::new(cfg());
    drive_range(&mut kb, &trace, 0, n, None, &mut base);
    finish_run(&mut kb, trace[n - 1].ts_ns + 1, &mut base);
    assert!(!base.terminated.is_empty());

    // Run 1: identical prefix with periodic checkpoints, killed at
    // `kill_idx` without `finish` — the crash model.
    let mut obs1 = RunObs::default();
    let mut k1 = ScapKernel::new(cfg());
    let (ckpt_bytes, ckpt_at) =
        drive_range(&mut k1, &trace, 0, kill_idx, Some(CKPT_EVERY), &mut obs1)
            .expect("kill index must leave at least one checkpoint behind");
    drop(k1);

    let img = CheckpointImage::decode(&ckpt_bytes).unwrap();
    assert_eq!(img.to_bytes(), ckpt_bytes, "encode→decode→encode differs");
    let uid_floor = img.globals.uid_counter;
    let blackout_wire: u64 = trace[ckpt_at..kill_idx]
        .iter()
        .map(|p| p.len() as u64)
        .sum();
    // Committed floor per resumed (uid, dir): the restored partial chunk
    // starts at committed − pending, and nothing below that may reappear.
    let mut committed = std::collections::HashMap::new();
    let mut live = std::collections::HashMap::new();
    for s in &img.streams {
        let Some(ks) = &s.kstate else { continue };
        live.insert(s.uid, s.key);
        for d in 0..2 {
            if let Some(a) = &ks.asm[d] {
                committed.insert((s.uid, d), a.committed - a.pending.len() as u64);
            }
        }
    }
    assert!(!live.is_empty(), "checkpoint captured no live stream");

    // Run 2: restore from the checkpoint and feed the post-crash suffix.
    let mut obs2 = RunObs::default();
    let mut k2 = ScapKernel::from_image(img, None).unwrap();
    drive_range(&mut k2, &trace, kill_idx, n, None, &mut obs2);
    finish_run(&mut k2, trace[n - 1].ts_ns + 1, &mut obs2);
    let stats2 = k2.stats();
    assert_eq!(stats2.resilience.restarts, 1);
    assert_eq!(stats2.resilience.resumed_streams, live.len() as u64);
    assert!(stats2.resilience.recovery_virtual_cycles > 0);
    assert!(stats2.resilience.resume_gap_bytes <= blackout_wire);

    // No stream vanishes and uids stay stable: every stream live at the
    // checkpoint terminates in the resumed run under its original uid
    // and key, flagged RESUMED with a blackout-bounded gap.
    for (uid, key) in &live {
        let snap = obs2
            .terminated
            .get(uid)
            .unwrap_or_else(|| panic!("stream uid {uid} vanished across the restart"));
        assert_eq!(
            snap.key.canonical().0,
            key.canonical().0,
            "uid {uid} re-bound to a different flow after restart"
        );
        assert!(
            snap.errors.contains(StreamErrors::RESUMED),
            "resumed stream uid {uid} not flagged RESUMED"
        );
        assert!(
            snap.resume_gap_bytes <= blackout_wire,
            "uid {uid}: resume gap {} exceeds blackout window {blackout_wire}",
            snap.resume_gap_bytes
        );
    }

    // The delivered stream set differs from the baseline only by the
    // RESUMED streams above and by genuinely new post-checkpoint streams.
    for (uid, snap) in &obs2.terminated {
        if live.contains_key(uid) {
            continue;
        }
        assert!(
            *uid >= uid_floor,
            "stream uid {uid} reappeared after the restart without RESUMED"
        );
        assert!(!snap.errors.contains(StreamErrors::RESUMED));
    }

    // Streams that completed before the crash match the baseline exactly
    // (run 1 is a deterministic prefix of the uninterrupted run).
    for (uid, snap) in &obs1.terminated {
        let b = base
            .terminated
            .get(uid)
            .unwrap_or_else(|| panic!("pre-crash stream uid {uid} missing from baseline"));
        assert_eq!(b.key.canonical().0, snap.key.canonical().0);
        assert_eq!(
            b.dirs, snap.dirs,
            "uid {uid} counters diverge from baseline"
        );
    }

    // No committed byte is ever re-delivered: every chunk the resumed
    // run emits for a restored stream starts at or above the committed
    // frontier recorded in the checkpoint.
    for ((uid, d), floor) in &committed {
        if let Some(min_off) = obs2.first_chunk_offset.get(&(*uid, *d)) {
            assert!(
                min_off >= floor,
                "uid {uid} dir {d}: chunk at offset {min_off} re-delivers bytes below committed offset {floor}"
            );
        }
    }
}

#[test]
fn storm_capture_is_deterministic_per_seed() {
    // Two synchronous runs with the same seed must agree exactly — the
    // property the `--exp faults` table relies on.
    let run = || {
        let plan = FaultPlan::storm(77);
        let (packets, frame_stats) = scap::live::mangle_packets(&plan, storm_trace());
        let mut kernel = ScapKernel::new(ScapConfig {
            use_fdir: true,
            faults: Some(plan),
            ..ScapConfig::default()
        });
        kernel.note_frame_faults(frame_stats);
        let mut now = 0;
        for pkt in &packets {
            now = pkt.ts_ns;
            kernel.nic_receive(pkt);
            for core in 0..kernel.ncores() {
                while kernel.kernel_poll(core, now).is_some() {}
                kernel.kernel_timers(core, now);
                while let Some(ev) = kernel.next_event(core) {
                    if let scap::EventKind::Data { dir, chunk, .. } = ev.kind {
                        kernel.release_data(ev.stream.uid, dir, chunk);
                    }
                }
            }
        }
        kernel.finish(now.saturating_add(1));
        kernel.stats()
    };
    let a = run();
    let b = run();
    assert_eq!(a.stack, b.stack);
    assert_eq!(a.resilience, b.resilience);
}
