//! Pattern matching over reassembled streams (§3.3.2 of the paper).
//!
//! A miniature NIDS: compile a set of web-attack signatures into an
//! Aho–Corasick automaton and scan every reassembled stream chunk,
//! carrying matcher state across chunk boundaries so signatures spanning
//! chunks are still found. The kernel module delivers contiguous
//! reassembled chunks, so the hot loop is a single pass over clean
//! memory — the locality the paper measures in Fig. 7.
//!
//! Run with: `cargo run --release --example pattern_match`

use scap::{Scap, StreamCtx};
use scap_patterns::{builtin_web_patterns, AhoCorasick, MatcherState};
use scap_trace::gen::{CampusMix, CampusMixConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

fn main() {
    // Attack signatures: a small built-in corpus (swap in
    // `scap_patterns::extract_contents` to load real Snort rules).
    let patterns = builtin_web_patterns();
    let ac = Arc::new(AhoCorasick::new(&patterns, true));
    println!(
        "compiled {} patterns into a {}-state DFA ({} KB)",
        ac.pattern_count(),
        ac.state_count(),
        ac.table_bytes() >> 10
    );

    // Traffic with those signatures embedded near stream starts.
    let traffic = CampusMix::new(CampusMixConfig {
        patterns: Some(Arc::new(patterns.clone())),
        pattern_prob: 0.4,
        ..CampusMixConfig::sized(7, 8 << 20)
    });

    let matches = Arc::new(AtomicU64::new(0));
    // Streaming matcher state per (stream, direction).
    let states: Arc<Mutex<HashMap<(u64, u8), MatcherState>>> = Arc::new(Mutex::new(HashMap::new()));

    let mut scap = Scap::builder()
        .memory(64 << 20)
        .worker_threads(4)
        .chunk_size(16 << 10)
        .try_build()
        .expect("valid configuration");

    {
        let ac = ac.clone();
        let matches = matches.clone();
        let data_states = states.clone();
        scap.dispatch_data(move |ctx: &StreamCtx<'_>| {
            let (Some(data), Some(dir)) = (ctx.data, ctx.dir) else {
                return;
            };
            let key = (ctx.stream.uid, dir.index() as u8);
            let mut st = data_states.lock().unwrap().remove(&key).unwrap_or_default();
            ac.scan(&mut st, data, |m| {
                let n = matches.fetch_add(1, Ordering::Relaxed) + 1;
                if n <= 10 {
                    println!(
                        "MATCH pattern #{:<3} at stream offset {:<8} in {}",
                        m.pattern, m.end, ctx.stream.key
                    );
                }
            });
            data_states.lock().unwrap().insert(key, st);
        });
        let states = states.clone();
        scap.dispatch_termination(move |ctx: &StreamCtx<'_>| {
            let mut s = states.lock().unwrap();
            s.remove(&(ctx.stream.uid, 0));
            s.remove(&(ctx.stream.uid, 1));
        });
    }

    let stats = scap.start_capture(traffic);
    println!("---");
    println!(
        "{} matches across {} streams ({} chunks, {} reassembled bytes)",
        matches.load(Ordering::Relaxed),
        stats.stack.streams_created,
        stats.chunks,
        stats.stack.delivered_bytes,
    );
}
