//! Trace statistics — the §6.1 trace-description table.

use crate::Packet;
use scap_wire::{ip_proto, parse_frame};
use std::collections::HashSet;

/// Aggregate statistics over a packet stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Total packets.
    pub packets: u64,
    /// Total frame bytes.
    pub total_bytes: u64,
    /// TCP packets.
    pub tcp_packets: u64,
    /// TCP frame bytes.
    pub tcp_bytes: u64,
    /// UDP packets.
    pub udp_packets: u64,
    /// UDP frame bytes.
    pub udp_bytes: u64,
    /// Packets that are neither TCP nor UDP (ICMP, ARP, ...).
    pub other_packets: u64,
    /// Distinct bidirectional flows (canonical 5-tuples).
    pub flows: u64,
    /// Distinct TCP flows.
    pub tcp_flows: u64,
    /// First packet timestamp (ns).
    pub first_ts_ns: u64,
    /// Last packet timestamp (ns).
    pub last_ts_ns: u64,
    /// Frames that failed to parse.
    pub parse_errors: u64,
}

impl TraceStats {
    /// Compute statistics over an iterator of packets.
    pub fn from_packets<'a>(packets: impl IntoIterator<Item = &'a Packet>) -> Self {
        let mut s = TraceStats::default();
        let mut flows = HashSet::new();
        let mut tcp_flows = HashSet::new();
        let mut first = None;
        for p in packets {
            s.packets += 1;
            s.total_bytes += p.len() as u64;
            first.get_or_insert(p.ts_ns);
            s.last_ts_ns = s.last_ts_ns.max(p.ts_ns);
            match parse_frame(&p.frame) {
                Ok(parsed) => {
                    match parsed.ip_proto {
                        Some(ip_proto::TCP) => {
                            s.tcp_packets += 1;
                            s.tcp_bytes += p.len() as u64;
                        }
                        Some(ip_proto::UDP) => {
                            s.udp_packets += 1;
                            s.udp_bytes += p.len() as u64;
                        }
                        _ => s.other_packets += 1,
                    }
                    if let Some(key) = parsed.key {
                        let (canon, _) = key.canonical();
                        flows.insert(canon);
                        if parsed.is_tcp() {
                            tcp_flows.insert(canon);
                        }
                    }
                }
                Err(_) => s.parse_errors += 1,
            }
        }
        s.first_ts_ns = first.unwrap_or(0);
        s.flows = flows.len() as u64;
        s.tcp_flows = tcp_flows.len() as u64;
        s
    }

    /// Trace duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        (self.last_ts_ns.saturating_sub(self.first_ts_ns)) as f64 / 1e9
    }

    /// Mean frame size in bytes.
    pub fn mean_packet_size(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.packets as f64
        }
    }

    /// TCP share of total bytes, in percent (paper reports 95.4 %).
    pub fn tcp_byte_percent(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            100.0 * self.tcp_bytes as f64 / self.total_bytes as f64
        }
    }

    /// Average bit rate of the trace as captured.
    pub fn mean_rate_bps(&self) -> f64 {
        let d = self.duration_secs();
        if d <= 0.0 {
            0.0
        } else {
            self.total_bytes as f64 * 8.0 / d
        }
    }

    /// Render as the §6.1-style description table.
    pub fn table(&self) -> String {
        format!(
            "packets            {:>14}\n\
             flows              {:>14}\n\
             total bytes        {:>14}\n\
             TCP traffic        {:>13.1}%\n\
             mean packet size   {:>13.1}B\n\
             duration           {:>13.2}s\n\
             mean capture rate  {:>10.1} Mbit/s",
            self.packets,
            self.flows,
            self.total_bytes,
            self.tcp_byte_percent(),
            self.mean_packet_size(),
            self.duration_secs(),
            self.mean_rate_bps() / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_wire::{PacketBuilder, TcpFlags};

    #[test]
    fn counts_by_protocol() {
        let pkts = [
            Packet::new(
                0,
                PacketBuilder::tcp_v4(
                    [1, 1, 1, 1],
                    [2, 2, 2, 2],
                    1,
                    2,
                    0,
                    0,
                    TcpFlags::SYN,
                    b"abc",
                ),
            ),
            Packet::new(
                1_000_000_000,
                PacketBuilder::tcp_v4(
                    [2, 2, 2, 2],
                    [1, 1, 1, 1],
                    2,
                    1,
                    0,
                    0,
                    TcpFlags::SYN | TcpFlags::ACK,
                    b"",
                ),
            ),
            Packet::new(
                2_000_000_000,
                PacketBuilder::udp_v4([3, 3, 3, 3], [4, 4, 4, 4], 5, 6, b"xy"),
            ),
            Packet::new(
                3_000_000_000,
                PacketBuilder::icmp_echo_v4([5, 5, 5, 5], [6, 6, 6, 6], 1, 1, b"p"),
            ),
        ];
        let s = TraceStats::from_packets(pkts.iter());
        assert_eq!(s.packets, 4);
        assert_eq!(s.tcp_packets, 2);
        assert_eq!(s.udp_packets, 1);
        assert_eq!(s.other_packets, 1);
        // Both TCP directions collapse to one flow; UDP adds one more.
        assert_eq!(s.flows, 2);
        assert_eq!(s.tcp_flows, 1);
        assert_eq!(s.duration_secs(), 3.0);
        assert!(s.mean_packet_size() > 0.0);
        assert!(s.table().contains("packets"));
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::from_packets(std::iter::empty());
        assert_eq!(s.packets, 0);
        assert_eq!(s.mean_packet_size(), 0.0);
        assert_eq!(s.tcp_byte_percent(), 0.0);
        assert_eq!(s.mean_rate_bps(), 0.0);
    }
}
