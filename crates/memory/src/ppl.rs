//! Prioritized Packet Loss (§2.2 and §7 of the paper).
//!
//! Below `base_threshold` memory use, nothing is dropped. Above it, the
//! remaining memory is divided into `n` equal regions by `n + 1`
//! watermarks (`watermark₀ = base_threshold`, `watermarkₙ = memory
//! size`). A packet of priority *i* (0-based, 0 = lowest):
//!
//! * is **dropped** when the used fraction exceeds `watermark_{i+1}`;
//! * is subject to the **overload cutoff** (drop bytes beyond a stream
//!   offset) when the used fraction is between `watermark_i` and
//!   `watermark_{i+1}`;
//! * is accepted otherwise.
//!
//! High-priority packets are therefore the last to go, and when memory
//! pressure is moderate the tails of long streams are shed before
//! anything else — favouring "recent and short streams" (§6.5.1).

/// PPL configuration.
#[derive(Debug, Clone, Copy)]
pub struct PplConfig {
    /// Used-memory fraction below which no packet is ever dropped.
    pub base_threshold: f64,
    /// Number of distinct priority levels in use (≥ 1).
    pub num_priorities: u8,
    /// Optional overload cutoff: under pressure, drop packet payload
    /// situated beyond this stream offset.
    pub overload_cutoff: Option<u64>,
}

impl Default for PplConfig {
    fn default() -> Self {
        PplConfig {
            base_threshold: 0.5,
            num_priorities: 1,
            overload_cutoff: None,
        }
    }
}

/// What to do with an arriving packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PplVerdict {
    /// Keep the packet.
    Accept,
    /// Drop it: memory above this priority's watermark.
    DropWatermark,
    /// Drop it: within the pressure band and beyond the overload cutoff.
    DropOverloadCutoff,
}

impl PplConfig {
    /// The `i`-th watermark (0 ⇒ base threshold, `num_priorities` ⇒ 1.0).
    pub fn watermark(&self, i: u8) -> f64 {
        let n = f64::from(self.num_priorities.max(1));
        let span = 1.0 - self.base_threshold;
        (self.base_threshold + span * f64::from(i) / n).min(1.0)
    }

    /// Decide a packet's fate.
    ///
    /// * `used_fraction` — current arena fill level;
    /// * `priority` — the stream's priority, 0-based, clamped to the
    ///   configured number of levels;
    /// * `stream_offset` — offset of this packet's payload within its
    ///   stream (for the overload cutoff).
    pub fn verdict(&self, used_fraction: f64, priority: u8, stream_offset: u64) -> PplVerdict {
        if used_fraction <= self.base_threshold {
            return PplVerdict::Accept;
        }
        let p = priority.min(self.num_priorities.saturating_sub(1));
        let upper = self.watermark(p + 1);
        let lower = self.watermark(p);
        if used_fraction > upper {
            return PplVerdict::DropWatermark;
        }
        if used_fraction > lower {
            if let Some(cutoff) = self.overload_cutoff {
                if stream_offset >= cutoff {
                    return PplVerdict::DropOverloadCutoff;
                }
            }
        }
        PplVerdict::Accept
    }

    /// [`PplConfig::verdict`] plus telemetry: the outcome is counted
    /// into `reg`'s shard (accept / watermark drop / cutoff drop), so
    /// PPL transitions are visible in the time-resolved view.
    pub fn verdict_recorded(
        &self,
        used_fraction: f64,
        priority: u8,
        stream_offset: u64,
        reg: &scap_telemetry::PlainRegistry,
        shard: usize,
    ) -> PplVerdict {
        use scap_telemetry::Metric;
        let v = self.verdict(used_fraction, priority, stream_offset);
        let m = match v {
            PplVerdict::Accept => Metric::PplAccepts,
            PplVerdict::DropWatermark => Metric::PplWatermarkDrops,
            PplVerdict::DropOverloadCutoff => Metric::PplCutoffDrops,
        };
        reg.inc(shard, m);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_drops_below_base_threshold() {
        let cfg = PplConfig {
            base_threshold: 0.5,
            num_priorities: 4,
            overload_cutoff: Some(0),
        };
        for p in 0..4 {
            assert_eq!(cfg.verdict(0.49, p, u64::MAX / 2), PplVerdict::Accept);
            assert_eq!(cfg.verdict(0.5, p, u64::MAX / 2), PplVerdict::Accept);
        }
    }

    #[test]
    fn watermarks_are_equally_spaced() {
        let cfg = PplConfig {
            base_threshold: 0.6,
            num_priorities: 2,
            overload_cutoff: None,
        };
        assert!((cfg.watermark(0) - 0.6).abs() < 1e-12);
        assert!((cfg.watermark(1) - 0.8).abs() < 1e-12);
        assert!((cfg.watermark(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn low_priority_dropped_first() {
        let cfg = PplConfig {
            base_threshold: 0.5,
            num_priorities: 2,
            overload_cutoff: None,
        };
        // watermark1 = 0.75, watermark2 = 1.0.
        // At 80 % memory: priority 0 exceeds its watermark, priority 1 not.
        assert_eq!(cfg.verdict(0.80, 0, 0), PplVerdict::DropWatermark);
        assert_eq!(cfg.verdict(0.80, 1, 0), PplVerdict::Accept);
        // At 100 %+: everything dropped... priority 1's watermark is 1.0,
        // so only a fraction strictly above 1.0 drops it.
        assert_eq!(cfg.verdict(1.01, 1, 0), PplVerdict::DropWatermark);
    }

    #[test]
    fn overload_cutoff_sheds_stream_tails_in_pressure_band() {
        let cfg = PplConfig {
            base_threshold: 0.5,
            num_priorities: 1,
            overload_cutoff: Some(10_000),
        };
        // Band for priority 0 is (0.5, 1.0].
        assert_eq!(cfg.verdict(0.7, 0, 5_000), PplVerdict::Accept);
        assert_eq!(cfg.verdict(0.7, 0, 10_000), PplVerdict::DropOverloadCutoff);
        assert_eq!(cfg.verdict(0.7, 0, 50_000), PplVerdict::DropOverloadCutoff);
        // Below base threshold the cutoff does not apply.
        assert_eq!(cfg.verdict(0.4, 0, 50_000), PplVerdict::Accept);
    }

    #[test]
    fn recorded_verdicts_count_each_outcome() {
        use scap_telemetry::{Metric, PlainRegistry};
        let reg = PlainRegistry::new(2);
        let cfg = PplConfig {
            base_threshold: 0.5,
            num_priorities: 1,
            overload_cutoff: Some(10_000),
        };
        assert_eq!(cfg.verdict_recorded(0.2, 0, 0, &reg, 1), PplVerdict::Accept);
        assert_eq!(
            cfg.verdict_recorded(0.7, 0, 50_000, &reg, 1),
            PplVerdict::DropOverloadCutoff
        );
        assert_eq!(
            cfg.verdict_recorded(1.01, 0, 0, &reg, 0),
            PplVerdict::DropWatermark
        );
        let s = reg.snapshot();
        assert_eq!(s.counter(1, Metric::PplAccepts), 1);
        assert_eq!(s.counter(1, Metric::PplCutoffDrops), 1);
        assert_eq!(s.counter(0, Metric::PplWatermarkDrops), 1);
    }

    #[test]
    fn priority_clamped_to_configured_levels() {
        let cfg = PplConfig {
            base_threshold: 0.5,
            num_priorities: 2,
            overload_cutoff: None,
        };
        // Priority 99 behaves like the top priority (1).
        assert_eq!(cfg.verdict(0.9, 99, 0), cfg.verdict(0.9, 1, 0));
    }

    proptest! {
        /// Monotonicity: raising priority never turns an Accept into a
        /// Drop; raising memory pressure never turns a Drop into Accept.
        #[test]
        fn verdicts_are_monotonic(
            base in 0.1f64..0.9,
            n in 1u8..6,
            used in 0.0f64..1.0,
            prio in 0u8..6,
            off in 0u64..1_000_000,
        ) {
            let cfg = PplConfig {
                base_threshold: base,
                num_priorities: n,
                overload_cutoff: Some(100_000),
            };
            let v = cfg.verdict(used, prio, off);
            // Higher priority: at least as permissive.
            if prio < 5 {
                let vh = cfg.verdict(used, prio + 1, off);
                if v == PplVerdict::Accept {
                    prop_assert_eq!(vh, PplVerdict::Accept);
                }
            }
            // Lower memory: at least as permissive.
            let vl = cfg.verdict((used - 0.05).max(0.0), prio, off);
            if v == PplVerdict::Accept {
                prop_assert!(vl == PplVerdict::Accept);
            }
            // Earlier offset: never worse than later offset.
            let ve = cfg.verdict(used, prio, 0);
            if v == PplVerdict::Accept {
                prop_assert!(ve == PplVerdict::Accept);
            }
        }
    }
}
