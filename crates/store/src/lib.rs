#![warn(missing_docs)]

//! # scap-store
//!
//! A persistent, cutoff- and priority-aware **stream archive** for the
//! Scap reproduction: the subsystem that turns "observe streams in
//! flight" into "capture once, analyze many times".
//!
//! * [`StoreWriter`] plugs into the core dispatch path (stream creation,
//!   data delivery, termination — via [`scap::EventSink`] on the live
//!   driver through [`SharedStoreWriter`], or [`StoreWriter::observe`]
//!   on a synchronous kernel drive) and persists each stream's
//!   reassembled bytes into append-only, CRC-checksummed segment files,
//!   with a per-stream [`IndexRecord`] (canonical 5-tuple, timestamps,
//!   byte/packet counters, status + error flags, priority, segment
//!   extents) in a sidecar index.
//! * Durability is by write ordering: payload frames are flushed before
//!   their index record, so a crash loses at most an uncommitted tail.
//!   Reopening with [`StoreWriter::open`] scans back to the last valid
//!   frame/record and truncates the torn tail (counted in
//!   [`StoreStats::torn_tail_bytes_recovered`]).
//! * Retention mirrors the paper's Prioritized Packet Loss on disk: when
//!   a disk budget is exceeded, the lowest-priority / most-truncated /
//!   oldest streams are tombstoned first, and [`StoreWriter::compact`]
//!   rewrites segments to reclaim their bytes.
//! * [`StoreReader`] answers queries from the index alone — iteration,
//!   5-tuple point lookup, time-range scans, and `scap-filter` BPF
//!   expressions — and only touches payload segments for
//!   [`StoreReader::read_stream`], [`StoreReader::verify`], and pcap
//!   export via `scap-trace`.
//!
//! Fault injection (torn appends, mid-write kills) comes from
//! `scap-faults`; writer counters and seal spans land in
//! `scap-telemetry`. The `scapstore` CLI in `scap-bench` fronts all of
//! it.

pub mod federated;
mod format;
mod reader;
#[cfg(test)]
mod tests;
mod writer;

pub use federated::{FederatedReader, FederatedResult, ShardOutcome, ShardQueryStatus};
pub use format::{
    crc32, decode_body, encode_stream_body, encode_tombstone_body, parse_segment_file_name,
    scan_index, scan_segment, segment_file_name, segment_path, Extent, FrameInfo, IndexEntry,
    IndexRecord, IndexScan, SegmentScan, FORMAT_VERSION, INDEX_FILE,
};
pub use reader::{StoreReader, VerifyReport};
pub use writer::{PriorityStats, SharedStoreWriter, StoreConfig, StoreStats, StoreWriter};

/// Errors from archive I/O.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// On-disk structure is invalid beyond a recoverable torn tail.
    Corrupt(String),
    /// An injected fault (torn append or kill) stopped the writer; the
    /// archive is still readable up to the last committed record.
    Injected(scap_faults::StoreFault),
    /// The writer already died to an injected fault; no further writes
    /// are accepted.
    Dead,
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "archive i/o error: {e}"),
            StoreError::Corrupt(s) => write!(f, "archive corrupt: {s}"),
            StoreError::Injected(k) => write!(f, "injected store fault: {k:?}"),
            StoreError::Dead => write!(f, "store writer is dead (injected fault)"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<scap::CheckpointError> for StoreError {
    fn from(e: scap::CheckpointError) -> Self {
        match e {
            scap::CheckpointError::Io(io) => StoreError::Io(io),
            other => StoreError::Corrupt(other.to_string()),
        }
    }
}

impl From<scap_trace::TraceError> for StoreError {
    fn from(e: scap_trace::TraceError) -> Self {
        match e {
            scap_trace::TraceError::Io(io) => StoreError::Io(io),
            other => StoreError::Corrupt(other.to_string()),
        }
    }
}
