#![warn(missing_docs)]

//! # scap-nic
//!
//! A simulated Intel-82599-class 10GbE NIC: the hardware features Scap
//! depends on, emulated faithfully enough that the kernel-side logic is
//! identical to what would drive the real card.
//!
//! * [`rss`] — Receive Side Scaling: the real Toeplitz hash over the
//!   packet 5-tuple, a 128-entry indirection table, and the symmetric-seed
//!   variant of Woo & Park so both directions of a TCP connection land on
//!   the same RX queue (§4.2 of the paper).
//! * [`fdir`] — Flow Director: up to 8 K perfect-match filters over the
//!   5-tuple plus the *flexible 2-byte tuple* (the paper matches the TCP
//!   data-offset/flags bytes so pure data/ACK packets are dropped in
//!   hardware while RST/FIN still reach the host, §5.5). Only aggregate
//!   match statistics are exposed — per-filter counters do not exist on
//!   the real card, which is why Scap estimates flow sizes from FIN/RST
//!   sequence numbers.
//! * [`queue`] — RX descriptor rings with finite capacity; a full ring
//!   drops packets exactly like exhausted descriptors on hardware.
//!
//! The [`Nic`] type composes the three: every incoming frame is checked
//! against FDIR first (hardware precedence), then RSS-dispatched.

pub mod fdir;
pub mod queue;
pub mod rss;

pub use fdir::{FdirAction, FdirError, FdirFilter, FdirTable, FlexMatch};
pub use queue::RxQueue;
pub use rss::{RssHasher, SYMMETRIC_RSS_KEY};
pub use scap_offload::{
    OffloadAction, OffloadError, OffloadRule, OffloadStats, OffloadTable, OffloadVerdict,
    DEFAULT_OFFLOAD_CAPACITY,
};

use scap_telemetry::{Metric, PlainRegistry};
use scap_wire::ParsedPacket;

/// What the NIC did with a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NicVerdict {
    /// An FDIR filter dropped the frame; it never touches host memory.
    DroppedByFilter,
    /// An FDIR filter steered the frame to this queue.
    SteeredToQueue(usize),
    /// RSS dispatched the frame to this queue.
    HashedToQueue(usize),
    /// The target ring was full; the frame was dropped at the NIC.
    DroppedRingFull(usize),
    /// An offload `Drop` rule dropped the frame (subzero copy).
    DroppedByOffload,
    /// An offload `Sample` rule dropped this non-kept 1-in-N frame.
    SampledByOffload,
    /// An offload `Bypass` rule shunted the frame: counted delivered at
    /// the NIC, never enqueued to a ring.
    BypassedByOffload,
}

impl NicVerdict {
    /// The queue the frame landed in, if it survived.
    pub fn queue(&self) -> Option<usize> {
        match self {
            NicVerdict::SteeredToQueue(q) | NicVerdict::HashedToQueue(q) => Some(*q),
            _ => None,
        }
    }
}

/// Aggregate NIC counters (mirrors what the real card exposes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Frames received from the wire.
    pub rx_frames: u64,
    /// Bytes received from the wire.
    pub rx_bytes: u64,
    /// Frames dropped by FDIR filters (aggregate across all filters).
    pub fdir_dropped_frames: u64,
    /// Bytes dropped by FDIR filters.
    pub fdir_dropped_bytes: u64,
    /// Frames steered by FDIR to an explicit queue.
    pub fdir_steered_frames: u64,
    /// Frames dropped because a descriptor ring was full.
    pub ring_dropped_frames: u64,
    /// Bytes dropped because a descriptor ring was full.
    pub ring_dropped_bytes: u64,
    /// Frames delivered into descriptor rings.
    pub delivered_frames: u64,
    /// Bytes delivered into descriptor rings.
    pub delivered_bytes: u64,
    /// Frames dropped by offload `Drop` rules.
    pub offload_dropped_frames: u64,
    /// Bytes dropped by offload `Drop` rules.
    pub offload_dropped_bytes: u64,
    /// Frames dropped by offload `Sample` rules.
    pub offload_sampled_frames: u64,
    /// Bytes dropped by offload `Sample` rules.
    pub offload_sampled_bytes: u64,
    /// Frames shunted by offload `Bypass` rules (delivered at the NIC).
    pub offload_bypass_frames: u64,
    /// Bytes shunted by offload `Bypass` rules.
    pub offload_bypass_bytes: u64,
}

/// The simulated NIC.
///
/// `T` is the host-side handle stored in the descriptor rings: the
/// discrete-time simulation stores packet indices, the live driver stores
/// the packets themselves.
#[derive(Debug)]
pub struct Nic<T> {
    rss: RssHasher,
    fdir: FdirTable,
    offload: OffloadTable,
    queues: Vec<RxQueue<T>>,
    stats: NicStats,
    /// Telemetry: per-queue shards; table-wide FDIR ops land in shard 0.
    tele: PlainRegistry,
}

/// Seed for the offload table's symmetric flow hash (deterministic, like
/// the RSS key: the simulated hardware has no entropy source).
const OFFLOAD_HASH_SEED: u64 = 0x0FF1_0AD5_CA90_FF1C;

/// Rule capacity of the offload table a NIC powers on with. Deliberately
/// modest: the host sizes the table up (to [`DEFAULT_OFFLOAD_CAPACITY`]
/// or beyond) via [`Nic::set_offload_capacity`] only when the offload
/// stage is actually enabled, so captures that never use it don't pay
/// the million-entry allocation.
pub const BASELINE_OFFLOAD_RULES: usize = 4096;

impl<T> Nic<T> {
    /// Build a NIC with `nqueues` RX rings of `ring_capacity` descriptors,
    /// using the symmetric RSS key.
    pub fn new(nqueues: usize, ring_capacity: usize) -> Self {
        assert!(nqueues > 0, "a NIC needs at least one RX queue");
        Nic {
            rss: RssHasher::symmetric(nqueues),
            fdir: FdirTable::new(fdir::PERFECT_FILTER_CAPACITY),
            offload: OffloadTable::new(BASELINE_OFFLOAD_RULES, OFFLOAD_HASH_SEED),
            queues: (0..nqueues).map(|_| RxQueue::new(ring_capacity)).collect(),
            stats: NicStats::default(),
            tele: PlainRegistry::new(nqueues),
        }
    }

    /// Replace the offload table with one of a different rule capacity.
    /// Intended at bring-up, before any rules are installed (a capacity
    /// change re-programs the hardware table, discarding its contents).
    pub fn set_offload_capacity(&mut self, capacity: usize) {
        self.offload = OffloadTable::new(capacity, OFFLOAD_HASH_SEED);
    }

    /// The NIC's telemetry registry (one shard per RX queue). The kernel
    /// merges this into the capture-wide snapshot.
    pub fn telemetry(&self) -> &PlainRegistry {
        &self.tele
    }

    /// Number of RX queues.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Access a queue (the per-core driver side).
    pub fn queue_mut(&mut self, q: usize) -> &mut RxQueue<T> {
        &mut self.queues[q]
    }

    /// Access a queue read-only (fill-level monitoring).
    pub fn queue(&self, q: usize) -> &RxQueue<T> {
        &self.queues[q]
    }

    /// Access the FDIR table (the kernel module installs filters here).
    pub fn fdir_mut(&mut self) -> &mut FdirTable {
        &mut self.fdir
    }

    /// Access the FDIR table read-only.
    pub fn fdir(&self) -> &FdirTable {
        &self.fdir
    }

    /// Access the flow-offload table (rule install/evict).
    pub fn offload_mut(&mut self) -> &mut OffloadTable {
        &mut self.offload
    }

    /// Access the flow-offload table read-only (mark lookups, stats).
    pub fn offload(&self) -> &OffloadTable {
        &self.offload
    }

    /// Aggregate counters.
    pub fn stats(&self) -> NicStats {
        self.stats
    }

    /// The RSS queue a flow key maps to (used by the load balancer to know
    /// where RSS would send a stream before overriding it with FDIR).
    pub fn rss_queue(&self, key: &scap_wire::FlowKey) -> usize {
        self.rss.queue_for(key)
    }

    /// Receive one frame: the offload flow table first (the programmable
    /// stage subsumes FDIR on modern hardware), then FDIR, then RSS.
    /// `item` is the host-side handle; it is only stored if the frame
    /// survives to a ring.
    pub fn receive(&mut self, parsed: &ParsedPacket<'_>, item: T) -> NicVerdict {
        self.stats.rx_frames += 1;
        self.stats.rx_bytes += parsed.frame.len() as u64;
        self.tele.inc(0, Metric::NicRxFrames);
        self.tele
            .add(0, Metric::NicRxBytes, parsed.frame.len() as u64);

        if let Some(verdict) = self.offload.lookup(parsed) {
            self.tele.inc(0, Metric::NicOffloadHits);
            match verdict {
                OffloadVerdict::Drop => {
                    self.stats.offload_dropped_frames += 1;
                    self.stats.offload_dropped_bytes += parsed.frame.len() as u64;
                    self.tele.inc(0, Metric::NicOffloadDropFrames);
                    return NicVerdict::DroppedByOffload;
                }
                OffloadVerdict::SampleDrop => {
                    self.stats.offload_sampled_frames += 1;
                    self.stats.offload_sampled_bytes += parsed.frame.len() as u64;
                    self.tele.inc(0, Metric::NicOffloadSampleDrops);
                    return NicVerdict::SampledByOffload;
                }
                OffloadVerdict::Bypass => {
                    // Shunted: complete at the NIC, counted delivered so
                    // the conservation identity holds without a softirq.
                    self.stats.offload_bypass_frames += 1;
                    self.stats.offload_bypass_bytes += parsed.frame.len() as u64;
                    self.stats.delivered_frames += 1;
                    self.stats.delivered_bytes += parsed.frame.len() as u64;
                    self.tele.inc(0, Metric::NicOffloadBypassFrames);
                    return NicVerdict::BypassedByOffload;
                }
                OffloadVerdict::Mark(_) => {
                    // Tagged flows continue down the normal path; the
                    // kernel reads the mark at stream creation.
                    self.tele.inc(0, Metric::NicOffloadMarkFrames);
                }
                OffloadVerdict::SampleKeep => {}
            }
        }

        if let Some(action) = self.fdir.lookup(parsed) {
            match action {
                FdirAction::Drop => {
                    self.stats.fdir_dropped_frames += 1;
                    self.stats.fdir_dropped_bytes += parsed.frame.len() as u64;
                    self.tele.inc(0, Metric::NicFdirDropFrames);
                    return NicVerdict::DroppedByFilter;
                }
                FdirAction::ToQueue(q) => {
                    let q = q.min(self.queues.len() - 1);
                    self.stats.fdir_steered_frames += 1;
                    self.tele.inc(q, Metric::NicFdirSteeredFrames);
                    return if self.queues[q].push(item) {
                        self.stats.delivered_frames += 1;
                        self.stats.delivered_bytes += parsed.frame.len() as u64;
                        self.tele.inc(q, Metric::NicRingPushes);
                        NicVerdict::SteeredToQueue(q)
                    } else {
                        self.stats.ring_dropped_frames += 1;
                        self.stats.ring_dropped_bytes += parsed.frame.len() as u64;
                        self.tele.inc(q, Metric::NicRingFullDrops);
                        // Ring overflows count as stack-level drops when
                        // ScapStats are snapshotted; mirror that here so
                        // the merged telemetry conserves packets too.
                        self.tele.inc(q, Metric::DroppedPackets);
                        self.tele
                            .add(q, Metric::DroppedBytes, parsed.frame.len() as u64);
                        NicVerdict::DroppedRingFull(q)
                    };
                }
            }
        }

        let q = match &parsed.key {
            Some(key) => self.rss.queue_for(key),
            // Non-IP traffic goes to queue 0, like the default queue on
            // the real card.
            None => 0,
        };
        if self.queues[q].push(item) {
            self.stats.delivered_frames += 1;
            self.stats.delivered_bytes += parsed.frame.len() as u64;
            self.tele.inc(q, Metric::NicRingPushes);
            NicVerdict::HashedToQueue(q)
        } else {
            self.stats.ring_dropped_frames += 1;
            self.stats.ring_dropped_bytes += parsed.frame.len() as u64;
            self.tele.inc(q, Metric::NicRingFullDrops);
            self.tele.inc(q, Metric::DroppedPackets);
            self.tele
                .add(q, Metric::DroppedBytes, parsed.frame.len() as u64);
            NicVerdict::DroppedRingFull(q)
        }
    }

    /// Program one FDIR filter, recording the operation (and any
    /// failure) in telemetry. Prefer this over `fdir_mut().add` so the
    /// op counters stay complete.
    pub fn fdir_install(&mut self, filter: FdirFilter) -> Result<(), FdirError> {
        self.tele.inc(0, Metric::NicFdirOps);
        let r = self.fdir.add(filter);
        if r.is_err() {
            self.tele.inc(0, Metric::NicFdirOpFailures);
        }
        r
    }

    /// Remove one FDIR filter, recording the operation.
    pub fn fdir_uninstall(
        &mut self,
        key: &scap_wire::FlowKey,
        flex: Option<FlexMatch>,
    ) -> Result<(), FdirError> {
        self.tele.inc(0, Metric::NicFdirOps);
        let r = self.fdir.remove(key, flex);
        if r.is_err() {
            self.tele.inc(0, Metric::NicFdirOpFailures);
        }
        r
    }

    /// Remove every filter on a directed key, recording the operation.
    pub fn fdir_uninstall_all_for(&mut self, key: &scap_wire::FlowKey) -> usize {
        self.tele.inc(0, Metric::NicFdirOps);
        self.fdir.remove_all_for(key)
    }

    /// Program one offload rule, recording the operation (and any
    /// failure) in telemetry. Prefer this over `offload_mut().add` so
    /// the op counters stay complete.
    pub fn offload_install(&mut self, rule: OffloadRule) -> Result<(), OffloadError> {
        self.tele.inc(0, Metric::NicOffloadOps);
        let r = self.offload.add(rule);
        if r.is_err() {
            self.tele.inc(0, Metric::NicOffloadOpFailures);
        }
        r
    }

    /// Remove the offload rule for a flow, recording the operation.
    pub fn offload_uninstall(
        &mut self,
        key: &scap_wire::FlowKey,
    ) -> Result<OffloadRule, OffloadError> {
        self.tele.inc(0, Metric::NicOffloadOps);
        let r = self.offload.remove(key);
        if r.is_err() {
            self.tele.inc(0, Metric::NicOffloadOpFailures);
        }
        r
    }

    /// Evict one rule under table pressure, recording the eviction.
    pub fn offload_evict(&mut self, max_scan: usize) -> Option<OffloadRule> {
        let r = self.offload.evict_tiered(max_scan);
        if r.is_some() {
            self.tele.inc(0, Metric::NicOffloadEvictions);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_wire::{parse_frame, PacketBuilder, TcpFlags};

    fn frame(sp: u16, dp: u16, flags: TcpFlags) -> Vec<u8> {
        PacketBuilder::tcp_v4(
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            sp,
            dp,
            100,
            200,
            flags,
            b"data",
        )
    }

    #[test]
    fn both_directions_hash_to_same_queue() {
        let mut nic: Nic<u32> = Nic::new(8, 64);
        let f1 = frame(1234, 80, TcpFlags::ACK);
        let f2 = PacketBuilder::tcp_v4(
            [10, 0, 0, 2],
            [10, 0, 0, 1],
            80,
            1234,
            1,
            1,
            TcpFlags::ACK,
            b"resp",
        );
        let p1 = parse_frame(&f1).unwrap();
        let p2 = parse_frame(&f2).unwrap();
        let v1 = nic.receive(&p1, 0);
        let v2 = nic.receive(&p2, 1);
        match (v1, v2) {
            (NicVerdict::HashedToQueue(a), NicVerdict::HashedToQueue(b)) => assert_eq!(a, b),
            other => panic!("unexpected verdicts {other:?}"),
        }
    }

    #[test]
    fn fdir_drop_filter_blocks_data_but_not_fin() {
        let mut nic: Nic<u32> = Nic::new(4, 64);
        let data = frame(1234, 80, TcpFlags::ACK);
        let parsed = parse_frame(&data).unwrap();
        let key = parsed.key.unwrap();
        // Install the paper's two filters: ACK-only and ACK|PSH drop.
        nic.fdir_mut()
            .add(FdirFilter::drop_tcp_flags(key, TcpFlags::ACK))
            .unwrap();
        nic.fdir_mut()
            .add(FdirFilter::drop_tcp_flags(
                key,
                TcpFlags::ACK | TcpFlags::PSH,
            ))
            .unwrap();

        assert_eq!(nic.receive(&parsed, 0), NicVerdict::DroppedByFilter);
        let push = frame(1234, 80, TcpFlags::ACK | TcpFlags::PSH);
        let parsed_push = parse_frame(&push).unwrap();
        assert_eq!(nic.receive(&parsed_push, 1), NicVerdict::DroppedByFilter);

        // FIN/ACK does not match either filter: it reaches a ring.
        let fin = frame(1234, 80, TcpFlags::FIN | TcpFlags::ACK);
        let parsed_fin = parse_frame(&fin).unwrap();
        assert!(matches!(
            nic.receive(&parsed_fin, 2),
            NicVerdict::HashedToQueue(_)
        ));
        // And the reverse direction is unaffected (filters are directed).
        let rev = PacketBuilder::tcp_v4(
            [10, 0, 0, 2],
            [10, 0, 0, 1],
            80,
            1234,
            1,
            1,
            TcpFlags::ACK,
            b"resp",
        );
        let parsed_rev = parse_frame(&rev).unwrap();
        assert!(matches!(
            nic.receive(&parsed_rev, 3),
            NicVerdict::HashedToQueue(_)
        ));

        let s = nic.stats();
        assert_eq!(s.fdir_dropped_frames, 2);
        assert_eq!(s.rx_frames, 4);
        assert_eq!(s.delivered_frames, 2);
    }

    #[test]
    fn ring_overflow_drops() {
        let mut nic: Nic<u32> = Nic::new(1, 2);
        let f = frame(1, 2, TcpFlags::ACK);
        let p = parse_frame(&f).unwrap();
        assert!(matches!(nic.receive(&p, 0), NicVerdict::HashedToQueue(0)));
        assert!(matches!(nic.receive(&p, 1), NicVerdict::HashedToQueue(0)));
        assert_eq!(nic.receive(&p, 2), NicVerdict::DroppedRingFull(0));
        assert_eq!(nic.stats().ring_dropped_frames, 1);
        // Draining the ring makes room again.
        assert_eq!(nic.queue_mut(0).pop(), Some(0));
        assert!(matches!(nic.receive(&p, 3), NicVerdict::HashedToQueue(0)));
    }

    #[test]
    fn telemetry_mirrors_nic_stats() {
        use scap_telemetry::Metric;
        let mut nic: Nic<u32> = Nic::new(2, 1);
        let f = frame(1, 2, TcpFlags::ACK);
        let p = parse_frame(&f).unwrap();
        let key = p.key.unwrap();
        for i in 0..3 {
            nic.receive(&p, i); // same queue: 1 push, 2 ring-full drops
        }
        nic.fdir_install(FdirFilter::drop_tcp_flags(key, TcpFlags::ACK))
            .unwrap();
        nic.receive(&p, 9); // hardware drop
        assert_eq!(nic.fdir_uninstall_all_for(&key), 1);

        let s = nic.stats();
        let t = nic.telemetry().snapshot();
        assert_eq!(t.total(Metric::NicRxFrames), s.rx_frames);
        assert_eq!(t.total(Metric::NicRxBytes), s.rx_bytes);
        assert_eq!(t.total(Metric::NicRingPushes), s.delivered_frames);
        assert_eq!(t.total(Metric::NicRingFullDrops), s.ring_dropped_frames);
        assert_eq!(t.total(Metric::NicFdirDropFrames), s.fdir_dropped_frames);
        assert_eq!(t.total(Metric::NicFdirOps), 2);
        assert_eq!(t.total(Metric::NicFdirOpFailures), 0);
    }

    #[test]
    fn steering_filter_redirects() {
        let mut nic: Nic<u32> = Nic::new(4, 16);
        let f = frame(5555, 443, TcpFlags::ACK);
        let p = parse_frame(&f).unwrap();
        let key = p.key.unwrap();
        nic.fdir_mut().add(FdirFilter::steer(key, 3)).unwrap();
        assert_eq!(nic.receive(&p, 9), NicVerdict::SteeredToQueue(3));
        assert_eq!(nic.queue_mut(3).pop(), Some(9));
    }

    #[test]
    fn offload_rule_takes_precedence_over_fdir() {
        let mut nic: Nic<u32> = Nic::new(4, 16);
        let f = frame(7777, 80, TcpFlags::ACK);
        let p = parse_frame(&f).unwrap();
        let key = p.key.unwrap();
        // FDIR would steer the flow; the offload drop rule wins.
        nic.fdir_mut().add(FdirFilter::steer(key, 2)).unwrap();
        nic.offload_install(OffloadRule::new(key, OffloadAction::Drop, 1))
            .unwrap();
        assert_eq!(nic.receive(&p, 0), NicVerdict::DroppedByOffload);
        assert_eq!(nic.stats().offload_dropped_frames, 1);
        assert_eq!(nic.stats().fdir_steered_frames, 0);
        // Removing the rule restores the FDIR behaviour.
        nic.offload_uninstall(&key).unwrap();
        assert_eq!(nic.receive(&p, 1), NicVerdict::SteeredToQueue(2));
    }

    #[test]
    fn offload_bypass_counts_delivered_without_ring() {
        let mut nic: Nic<u32> = Nic::new(2, 16);
        let f = frame(1234, 80, TcpFlags::ACK);
        let p = parse_frame(&f).unwrap();
        let key = p.key.unwrap();
        nic.offload_install(OffloadRule::new(key, OffloadAction::Bypass, 0))
            .unwrap();
        assert_eq!(nic.receive(&p, 0), NicVerdict::BypassedByOffload);
        let s = nic.stats();
        assert_eq!(s.delivered_frames, 1);
        assert_eq!(s.offload_bypass_frames, 1);
        // Nothing landed in a ring.
        assert_eq!(nic.queue_mut(0).pop(), None);
        assert_eq!(nic.queue_mut(1).pop(), None);
        // Conservation at the NIC: rx == delivered (+ no drops).
        assert_eq!(s.rx_frames, s.delivered_frames);
    }

    #[test]
    fn offload_telemetry_mirrors_stats() {
        use scap_telemetry::Metric;
        let mut nic: Nic<u32> = Nic::new(2, 16);
        let f = frame(4321, 80, TcpFlags::ACK);
        let p = parse_frame(&f).unwrap();
        let key = p.key.unwrap();
        nic.offload_install(OffloadRule::new(key, OffloadAction::Sample(2), 0))
            .unwrap();
        for i in 0..4 {
            nic.receive(&p, i); // keep, drop, keep, drop
        }
        let s = nic.stats();
        assert_eq!(s.offload_sampled_frames, 2);
        assert_eq!(s.delivered_frames, 2);
        let t = nic.telemetry().snapshot();
        assert_eq!(t.total(Metric::NicOffloadHits), 4);
        assert_eq!(t.total(Metric::NicOffloadSampleDrops), 2);
        assert_eq!(t.total(Metric::NicOffloadOps), 1);
        assert_eq!(nic.offload().stats().sample_kept_frames, 2);
    }
}
