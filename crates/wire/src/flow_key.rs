//! Canonical flow identification.
//!
//! Scap tracks *bidirectional* streams: both directions of a TCP connection
//! must resolve to the same flow record (and, in the NIC emulation with the
//! symmetric RSS seed, the same RX queue). [`FlowKey`] stores the 5-tuple
//! as observed on the wire; [`FlowKey::canonical`] maps both directions to
//! one representative key and remembers which direction the original was.

/// Transport protocol of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Transport {
    /// TCP (IP protocol 6).
    Tcp,
    /// UDP (IP protocol 17).
    Udp,
    /// Any other protocol, identified by its IP protocol number.
    Other(u8),
}

impl Transport {
    /// The IP protocol number.
    pub fn proto_number(self) -> u8 {
        match self {
            Transport::Tcp => crate::ip_proto::TCP,
            Transport::Udp => crate::ip_proto::UDP,
            Transport::Other(p) => p,
        }
    }
}

impl From<u8> for Transport {
    fn from(p: u8) -> Self {
        match p {
            crate::ip_proto::TCP => Transport::Tcp,
            crate::ip_proto::UDP => Transport::Udp,
            other => Transport::Other(other),
        }
    }
}

/// Direction of a packet relative to the canonical orientation of its flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Same orientation as the canonical key (client → server for TCP
    /// connections whose SYN was observed).
    Forward,
    /// Opposite orientation.
    Reverse,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Forward => Direction::Reverse,
            Direction::Reverse => Direction::Forward,
        }
    }

    /// Index (0/1) for direction-indexed arrays.
    pub fn index(self) -> usize {
        match self {
            Direction::Forward => 0,
            Direction::Reverse => 1,
        }
    }
}

/// An IP address of either family, stored uniformly.
///
/// IPv4 addresses are kept in their 4-byte form (not mapped), so the two
/// families never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IpAddrBytes {
    /// IPv4 address.
    V4([u8; 4]),
    /// IPv6 address.
    V6([u8; 16]),
}

impl core::fmt::Display for IpAddrBytes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IpAddrBytes::V4(a) => write!(f, "{}.{}.{}.{}", a[0], a[1], a[2], a[3]),
            IpAddrBytes::V6(a) => {
                for (i, pair) in a.chunks(2).enumerate() {
                    if i > 0 {
                        f.write_str(":")?;
                    }
                    write!(f, "{:x}", u16::from_be_bytes([pair[0], pair[1]]))?;
                }
                Ok(())
            }
        }
    }
}

/// A directed 5-tuple identifying one direction of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    src: IpAddrBytes,
    dst: IpAddrBytes,
    src_port: u16,
    dst_port: u16,
    transport: Transport,
}

impl FlowKey {
    /// Build a key from IPv4 endpoints.
    pub fn new_v4(
        src: [u8; 4],
        dst: [u8; 4],
        src_port: u16,
        dst_port: u16,
        transport: Transport,
    ) -> Self {
        FlowKey {
            src: IpAddrBytes::V4(src),
            dst: IpAddrBytes::V4(dst),
            src_port,
            dst_port,
            transport,
        }
    }

    /// Build a key from IPv6 endpoints.
    pub fn new_v6(
        src: [u8; 16],
        dst: [u8; 16],
        src_port: u16,
        dst_port: u16,
        transport: Transport,
    ) -> Self {
        FlowKey {
            src: IpAddrBytes::V6(src),
            dst: IpAddrBytes::V6(dst),
            src_port,
            dst_port,
            transport,
        }
    }

    /// Source address.
    pub fn src(&self) -> IpAddrBytes {
        self.src
    }

    /// Destination address.
    pub fn dst(&self) -> IpAddrBytes {
        self.dst
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        self.src_port
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        self.dst_port
    }

    /// Transport protocol.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// The same 5-tuple viewed from the opposite direction.
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            src_port: self.dst_port,
            dst_port: self.src_port,
            transport: self.transport,
        }
    }

    /// Canonicalize: both directions of a connection map to the same key.
    ///
    /// The canonical orientation is the lexicographically smaller
    /// `(addr, port)` endpoint first. Returns the canonical key and the
    /// direction of `self` relative to it.
    pub fn canonical(&self) -> (FlowKey, Direction) {
        let a = (self.src, self.src_port);
        let b = (self.dst, self.dst_port);
        if a <= b {
            (*self, Direction::Forward)
        } else {
            (self.reversed(), Direction::Reverse)
        }
    }

    /// A well-distributed 64-bit direction-independent hash of the 5-tuple,
    /// salted with `seed`.
    ///
    /// The flow table salts with a random per-run seed (the paper picks a
    /// random hash function at initialization to resist algorithmic-
    /// complexity attacks on the table).
    pub fn sym_hash(&self, seed: u64) -> u64 {
        // Combine the two endpoints order-independently so both directions
        // collide (desired), then finalize with splitmix64.
        let ep = |addr: IpAddrBytes, port: u16| -> u64 {
            let mut h: u64 = match addr {
                IpAddrBytes::V4(a) => u64::from(u32::from_be_bytes(a)),
                IpAddrBytes::V6(a) => {
                    let hi = u64::from_be_bytes(a[0..8].try_into().unwrap());
                    let lo = u64::from_be_bytes(a[8..16].try_into().unwrap());
                    hi ^ lo.rotate_left(32)
                }
            };
            h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(port);
            splitmix64(h)
        };
        let ha = ep(self.src, self.src_port);
        let hb = ep(self.dst, self.dst_port);
        // xor+add of the two endpoint hashes is symmetric under swap.
        let combined = (ha ^ hb).wrapping_add(ha.wrapping_mul(hb) | 1);
        splitmix64(combined ^ seed ^ u64::from(self.transport.proto_number()))
    }
}

impl core::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let proto = match self.transport {
            Transport::Tcp => "tcp",
            Transport::Udp => "udp",
            Transport::Other(_) => "ip",
        };
        write!(
            f,
            "{} {}:{} -> {}:{}",
            proto, self.src, self.src_port, self.dst, self.dst_port
        )
    }
}

/// splitmix64 finalizer: cheap, well-distributed 64-bit mixing.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key() -> FlowKey {
        FlowKey::new_v4([10, 0, 0, 1], [10, 0, 0, 2], 40000, 80, Transport::Tcp)
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let k = key();
        let r = k.reversed();
        assert_eq!(r.src_port(), 80);
        assert_eq!(r.dst_port(), 40000);
        assert_eq!(r.reversed(), k);
    }

    #[test]
    fn both_directions_share_canonical_key() {
        let k = key();
        let (c1, d1) = k.canonical();
        let (c2, d2) = k.reversed().canonical();
        assert_eq!(c1, c2);
        assert_ne!(d1, d2);
    }

    #[test]
    fn sym_hash_is_direction_independent() {
        let k = key();
        assert_eq!(k.sym_hash(123), k.reversed().sym_hash(123));
        assert_ne!(k.sym_hash(123), k.sym_hash(456));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(key().to_string(), "tcp 10.0.0.1:40000 -> 10.0.0.2:80");
    }

    #[test]
    fn v4_and_v6_do_not_alias() {
        let v4 = FlowKey::new_v4([1, 2, 3, 4], [5, 6, 7, 8], 1, 2, Transport::Udp);
        let mut a = [0u8; 16];
        a[..4].copy_from_slice(&[1, 2, 3, 4]);
        let mut b = [0u8; 16];
        b[..4].copy_from_slice(&[5, 6, 7, 8]);
        let v6 = FlowKey::new_v6(a, b, 1, 2, Transport::Udp);
        assert_ne!(v4, v6);
    }

    proptest! {
        /// Canonicalization is a projection: canonical(canonical(k)) == canonical(k).
        #[test]
        fn canonical_is_idempotent(
            s: [u8; 4], d: [u8; 4], sp: u16, dp: u16
        ) {
            let k = FlowKey::new_v4(s, d, sp, dp, Transport::Tcp);
            let (c, _) = k.canonical();
            let (cc, dir) = c.canonical();
            prop_assert_eq!(c, cc);
            prop_assert_eq!(dir, Direction::Forward);
        }

        /// Hash symmetry holds for arbitrary keys and seeds.
        #[test]
        fn hash_symmetry(s: [u8;4], d: [u8;4], sp: u16, dp: u16, seed: u64) {
            let k = FlowKey::new_v4(s, d, sp, dp, Transport::Udp);
            prop_assert_eq!(k.sym_hash(seed), k.reversed().sym_hash(seed));
        }
    }
}
