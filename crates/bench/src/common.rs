//! Shared experiment infrastructure: scales, workload construction,
//! stack runners, and table/CSV output.

use scap::apps::{FlowStatsApp, PatternMatchApp, StreamTouchApp};
use scap::{ScapConfig, ScapKernel, ScapSimStack, SimApp};
use scap_baseline::{BaselineApp, UserStack, UserStackConfig};
use scap_memory;
use scap_patterns::AhoCorasick;
use scap_sim::{CostModel, Engine, EngineConfig, EngineReport};
use scap_trace::gen::{CampusMix, CampusMixConfig};
use scap_trace::replay::{natural_rate_bps, RateReplay};
use scap_trace::stats::TraceStats;
use scap_trace::Packet;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

/// Experiment sizing. The paper's testbed replays a 46 GB trace against
/// 512 MB / 1 GB buffers for minutes; the reproduction scales trace and
/// buffers together so the same buffer-fill dynamics appear in seconds.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Name used in output headers.
    pub name: &'static str,
    /// Synthetic campus trace size in bytes.
    pub trace_bytes: u64,
    /// PF_PACKET ring size for the baselines.
    pub ring_bytes: usize,
    /// Scap stream-memory arena.
    pub arena_bytes: usize,
    /// Baseline user-level stream-buffer budget.
    pub stream_mem: usize,
    /// The replay-rate ladder (Gbit/s).
    pub rates_gbps: Vec<f64>,
    /// Concurrent-stream levels for Fig. 5.
    pub conc_levels: Vec<u64>,
    /// Data packets per stream in the Fig. 5 workload (paper: 100;
    /// scaled down so the largest level stays tractable).
    pub conc_pkts_per_stream: u32,
    /// Baseline static flow-table limit (paper observes ~1 M; scaled
    /// with the stream levels so the failure appears on the axis).
    pub baseline_max_flows: usize,
    /// Cutoff ladder for Fig. 8, in bytes.
    pub cutoffs: Vec<u64>,
    /// Number of generated attack patterns (paper: 2,120).
    pub pattern_count: usize,
}

impl Scale {
    /// The scale used for the recorded EXPERIMENTS.md run.
    pub fn default_scale() -> Self {
        Scale {
            name: "default",
            trace_bytes: 128 << 20,
            ring_bytes: 8 << 20,
            arena_bytes: 16 << 20,
            stream_mem: 16 << 20,
            rates_gbps: vec![
                0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0,
            ],
            conc_levels: vec![10, 100, 1_000, 10_000, 100_000],
            conc_pkts_per_stream: 20,
            baseline_max_flows: 10_000,
            cutoffs: vec![
                0,
                1 << 10,
                10 << 10,
                100 << 10,
                1 << 20,
                10 << 20,
                100 << 20,
            ],
            pattern_count: 2120,
        }
    }

    /// A fast scale for CI-style smoke runs.
    pub fn smoke() -> Self {
        Scale {
            name: "smoke",
            trace_bytes: 12 << 20,
            ring_bytes: 4 << 20,
            arena_bytes: 8 << 20,
            stream_mem: 8 << 20,
            rates_gbps: vec![0.5, 2.0, 4.0, 6.0],
            conc_levels: vec![10, 100, 1_000],
            conc_pkts_per_stream: 10,
            baseline_max_flows: 500,
            cutoffs: vec![0, 10 << 10, 1 << 20],
            pattern_count: 300,
        }
    }
}

/// Configuration of one experiment invocation.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Sizing.
    pub scale: Scale,
    /// Output directory for text/CSV results.
    pub out_dir: PathBuf,
    /// Workload seed.
    pub seed: u64,
}

impl ExpConfig {
    /// Default config writing into `results/`.
    pub fn new(scale: Scale) -> Self {
        ExpConfig {
            scale,
            out_dir: PathBuf::from("results"),
            seed: 42,
        }
    }
}

/// One produced figure/table.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Identifier, e.g. `fig3a`.
    pub name: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (headline observations for EXPERIMENTS.md).
    pub notes: Vec<String>,
}

impl FigureResult {
    /// Render as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.name));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Write `name.txt` and `name.csv` into the output directory.
    pub fn write(&self, out_dir: &PathBuf) -> std::io::Result<()> {
        std::fs::create_dir_all(out_dir)?;
        let mut t = std::fs::File::create(out_dir.join(format!("{}.txt", self.name)))?;
        t.write_all(self.to_table().as_bytes())?;
        let mut c = std::fs::File::create(out_dir.join(format!("{}.csv", self.name)))?;
        writeln!(c, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(c, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Format helpers.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format to two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format in scientific notation.
pub fn sci(v: f64) -> String {
    format!("{v:.2e}")
}

/// The standard engine (8 cores, 1 ms ticks, calibrated cost model).
pub fn engine() -> Engine {
    Engine::new(EngineConfig::default())
}

/// An engine whose cores are effectively infinite — the drop-free oracle
/// used to establish ground-truth match counts.
pub fn oracle_engine() -> Engine {
    Engine::new(EngineConfig {
        model: CostModel {
            core_hz: 1e15,
            ..CostModel::default()
        },
        ..EngineConfig::default()
    })
}

/// The campus trace for an experiment (optionally with embedded attack
/// patterns), plus its ground-truth statistics.
pub struct Workload {
    /// The packets, at the generator's natural rate.
    pub trace: Vec<Packet>,
    /// Ground-truth statistics.
    pub stats: TraceStats,
    /// Natural replay rate.
    pub natural_bps: f64,
    /// The compiled pattern set (when patterns were embedded).
    pub patterns: Option<AhoCorasick>,
}

/// Build the plain campus workload.
pub fn campus_workload(cfg: &ExpConfig) -> Workload {
    let trace =
        CampusMix::new(CampusMixConfig::sized(cfg.seed, cfg.scale.trace_bytes)).collect_all();
    let stats = TraceStats::from_packets(trace.iter());
    let natural_bps = natural_rate_bps(&trace);
    Workload {
        trace,
        stats,
        natural_bps,
        patterns: None,
    }
}

/// Build the campus workload with embedded web-attack patterns
/// (the §6.5 pattern-matching evaluation).
pub fn pattern_workload(cfg: &ExpConfig) -> Workload {
    let pats = scap_patterns::generate_web_attack_patterns(cfg.scale.pattern_count, cfg.seed ^ 1);
    let trace = CampusMix::new(CampusMixConfig {
        patterns: Some(Arc::new(pats.clone())),
        pattern_prob: 0.35,
        ..CampusMixConfig::sized(cfg.seed, cfg.scale.trace_bytes)
    })
    .collect_all();
    let stats = TraceStats::from_packets(trace.iter());
    let natural_bps = natural_rate_bps(&trace);
    Workload {
        trace,
        stats,
        natural_bps,
        patterns: Some(AhoCorasick::new(&pats, false)),
    }
}

impl Workload {
    /// The trace rescaled to a target rate.
    pub fn at_rate(&self, gbps: f64) -> Vec<Packet> {
        RateReplay::new(self.trace.iter().cloned(), self.natural_bps, gbps * 1e9).collect()
    }
}

/// Scap configuration shared by the experiments (single worker unless
/// overridden, paper-like parameters, scaled arena).
pub fn scap_config(cfg: &ExpConfig) -> ScapConfig {
    ScapConfig {
        memory_bytes: cfg.scale.arena_bytes,
        // Replay compresses trace time (a multi-minute capture plays in
        // well under a second of simulated time), so the wall-clock
        // timeouts compress along with it: the paper's 10 s inactivity
        // timeout scales to 500 ms, the flush timeout to 5 ms.
        inactivity_timeout_ns: 500_000_000,
        flush_timeout_ns: 5_000_000,
        // Scap's standing overload control (§2.2): above half-full
        // memory, shed the tails of long streams first. This is what
        // keeps matches and streams alive under overload in Fig. 6.
        // base_threshold 0.75: the arena is scaled ~64× below the
        // paper's 1 GB, so a single elephant-flow burst is a far larger
        // *fraction* of it; shedding starts at 75% to absorb those
        // transients while preserving the overload dynamics.
        ppl: scap_memory::PplConfig {
            base_threshold: 0.75,
            num_priorities: 1,
            overload_cutoff: Some(64 << 10),
        },
        ..ScapConfig::default()
    }
}

/// Run a Scap stack over packets; returns the report and the stack.
pub fn run_scap<A: SimApp>(
    engine: &Engine,
    config: ScapConfig,
    app: A,
    packets: Vec<Packet>,
) -> (EngineReport, ScapSimStack<A>) {
    let mut stack = ScapSimStack::new(ScapKernel::new(config), app);
    let report = engine.run(packets, &mut stack);
    (report, stack)
}

/// Run a baseline stack over packets.
pub fn run_baseline<A: BaselineApp>(
    engine: &Engine,
    config: UserStackConfig,
    app: A,
    packets: Vec<Packet>,
) -> (EngineReport, UserStack<A>) {
    let mut stack = UserStack::new(config, app);
    let report = engine.run(packets, &mut stack);
    (report, stack)
}

/// Baseline configs with experiment-scaled buffers.
pub fn libnids_cfg(cfg: &ExpConfig) -> UserStackConfig {
    UserStackConfig {
        ring_bytes: cfg.scale.ring_bytes,
        stream_memory: cfg.scale.stream_mem,
        inactivity_timeout_ns: 500_000_000,
        ..UserStackConfig::libnids()
    }
}

/// Stream5 baseline at experiment scale.
pub fn stream5_cfg(cfg: &ExpConfig) -> UserStackConfig {
    UserStackConfig {
        ring_bytes: cfg.scale.ring_bytes,
        stream_memory: cfg.scale.stream_mem,
        inactivity_timeout_ns: 500_000_000,
        ..UserStackConfig::stream5()
    }
}

/// YAF baseline at experiment scale.
pub fn yaf_cfg(cfg: &ExpConfig) -> UserStackConfig {
    UserStackConfig {
        ring_bytes: cfg.scale.ring_bytes,
        stream_memory: cfg.scale.stream_mem,
        inactivity_timeout_ns: 500_000_000,
        ..UserStackConfig::yaf()
    }
}

/// Ground-truth pattern matches: the oracle run with unlimited CPU.
pub fn oracle_matches(cfg: &ExpConfig, wl: &Workload) -> u64 {
    let ac = wl.patterns.clone().expect("pattern workload");
    let (report, _) = run_scap(
        &oracle_engine(),
        scap_config(cfg),
        PatternMatchApp::new(ac),
        wl.at_rate(1.0),
    );
    report.stats.matches
}

/// Convenience constructors for app models (so figures read cleanly).
pub fn flow_stats_app() -> FlowStatsApp {
    FlowStatsApp::default()
}

/// Stream-touch app.
pub fn touch_app() -> StreamTouchApp {
    StreamTouchApp::default()
}

/// Distill a pulse snapshot into the standard per-stage latency table
/// every pulse-reporting experiment emits: one row per active stage with
/// interpolated p50/p99/p999, the exported exemplar count, and the
/// tail-sampling threshold those exemplars cleared.
pub fn latency_figure(
    name: &str,
    snap: &scap::telemetry::PulseSnapshot,
    mut notes: Vec<String>,
) -> FigureResult {
    use scap::telemetry::PulseStage;
    let mut rows = Vec::new();
    for st in PulseStage::ALL {
        let (count, p50, p99, p999) = snap.summary(st);
        if count == 0 {
            continue;
        }
        rows.push(vec![
            st.name().to_string(),
            count.to_string(),
            p50.to_string(),
            p99.to_string(),
            p999.to_string(),
            snap.stage_exemplars(st).len().to_string(),
            snap.threshold(st).to_string(),
        ]);
    }
    notes.push(format!(
        "exemplars tail-sampled at q={:.3}; every exemplar's delay >= its stage's \
         threshold_ns (the conservative bucket-floor quantile estimate)",
        snap.quantile()
    ));
    FigureResult {
        name: name.into(),
        headers: [
            "stage",
            "count",
            "p50_ns",
            "p99_ns",
            "p999_ns",
            "exemplars",
            "threshold_ns",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
        notes,
    }
}

/// The pulse-plane acceptance gate shared by the latency-reporting
/// experiments: delivery latency was actually measured (nonzero p99),
/// every exported exemplar clears its stage's final threshold, and —
/// when the producing journal is at hand — every exemplar uid resolves
/// to at least one journal event (its own `pulse_exemplar` record at
/// minimum), so `scapcat --trace <uid>` can reconstruct the slow packet.
pub fn assert_pulse_acceptance(
    snap: &scap::telemetry::PulseSnapshot,
    journal: Option<&scap_flight::Journal>,
) {
    use scap::telemetry::pulse::exemplar_consistent;
    use scap::telemetry::PulseStage;
    assert!(
        snap.stage(PulseStage::Delivery).quantile(0.99) > 0,
        "pulse plane recorded no delivery latency (p99 == 0)"
    );
    for e in &snap.exemplars {
        assert!(
            exemplar_consistent(snap, e),
            "exemplar {e:?} below its stage's sampling threshold {}",
            snap.threshold(e.stage)
        );
        if let Some(j) = journal {
            assert!(
                !j.for_uid(e.uid).is_empty(),
                "exemplar uid {} resolves to no flight-journal events",
                e.uid
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns() {
        let fr = FigureResult {
            name: "test".into(),
            headers: vec!["rate".into(), "drop%".into()],
            rows: vec![
                vec!["0.25".into(), "0.0".into()],
                vec!["6.00".into(), "81.2".into()],
            ],
            notes: vec!["hello".into()],
        };
        let t = fr.to_table();
        assert!(t.contains("rate"));
        assert!(t.contains("81.2"));
        assert!(t.contains("note: hello"));
    }

    #[test]
    fn workload_rate_scaling() {
        let cfg = ExpConfig::new(Scale::smoke());
        let wl = campus_workload(&cfg);
        let fast = wl.at_rate(6.0);
        let slow = wl.at_rate(0.5);
        assert_eq!(fast.len(), slow.len());
        let fd = fast.last().unwrap().ts_ns - fast.first().unwrap().ts_ns;
        let sd = slow.last().unwrap().ts_ns - slow.first().unwrap().ts_ns;
        assert!(sd > fd * 10);
    }
}
