//! A set-associative LRU cache model.
//!
//! Used for the locality experiment (Fig. 7): the stacks trace their data
//! touches through this model using stable synthetic addresses (ring
//! slots, per-stream buffers, flow records) and the model counts misses.
//! Default geometry matches the sensor machine in §6.1: 6 MB, 8-way,
//! 64-byte lines.

/// Set-associative LRU cache.
#[derive(Debug)]
pub struct CacheSim {
    line_size: u64,
    nsets: u64,
    ways: usize,
    /// sets × ways tag store; u64::MAX = invalid.
    tags: Vec<u64>,
    /// LRU rank per line (lower = more recent).
    stamp: Vec<u64>,
    clock: u64,
    /// Total line accesses.
    pub accesses: u64,
    /// Total misses.
    pub misses: u64,
}

impl CacheSim {
    /// A cache of `size_bytes` with `ways` associativity and `line_size`
    /// lines (sizes must make the set count a power of two-ish; any
    /// positive set count works here).
    pub fn new(size_bytes: u64, ways: usize, line_size: u64) -> Self {
        assert!(ways > 0 && line_size > 0);
        let nsets = (size_bytes / line_size / ways as u64).max(1);
        CacheSim {
            line_size,
            nsets,
            ways,
            tags: vec![u64::MAX; (nsets as usize) * ways],
            stamp: vec![0; (nsets as usize) * ways],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// The sensor machine's L2: 6 MB, 8-way, 64 B lines.
    pub fn paper_l2() -> Self {
        CacheSim::new(6 << 20, 8, 64)
    }

    /// Touch `len` bytes at `addr`; returns the number of misses.
    pub fn access(&mut self, addr: u64, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = addr / self.line_size;
        let last = (addr + len as u64 - 1) / self.line_size;
        let mut misses = 0;
        for line in first..=last {
            self.clock += 1;
            self.accesses += 1;
            let set = (line % self.nsets) as usize;
            let base = set * self.ways;
            let slots = &mut self.tags[base..base + self.ways];
            if let Some(i) = slots.iter().position(|&t| t == line) {
                self.stamp[base + i] = self.clock;
                continue;
            }
            misses += 1;
            self.misses += 1;
            // Evict LRU way.
            let mut victim = 0;
            let mut best = u64::MAX;
            for i in 0..self.ways {
                if self.tags[base + i] == u64::MAX {
                    victim = i;
                    break;
                }
                if self.stamp[base + i] < best {
                    best = self.stamp[base + i];
                    victim = i;
                }
            }
            self.tags[base + victim] = line;
            self.stamp[base + victim] = self.clock;
        }
        misses
    }

    /// Overall miss ratio.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheSim::new(1 << 16, 4, 64);
        assert_eq!(c.access(0x1000, 64), 1);
        assert_eq!(c.access(0x1000, 64), 0);
        assert_eq!(c.access(0x1010, 16), 0); // same line
        assert_eq!(c.miss_ratio(), 1.0 / 3.0);
    }

    #[test]
    fn spans_count_all_lines() {
        let mut c = CacheSim::new(1 << 16, 4, 64);
        // 200 bytes from offset 32 touches lines 0..=3 (4 lines).
        assert_eq!(c.access(32, 200), 4);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = CacheSim::new(4096, 2, 64); // 64 lines total
                                                // Stream over 1 MB twice: second pass misses again (capacity).
        let mut first = 0;
        for i in 0..16384u64 {
            first += c.access(i * 64, 64);
        }
        let mut second = 0;
        for i in 0..16384u64 {
            second += c.access(i * 64, 64);
        }
        assert_eq!(first, 16384);
        assert_eq!(second, 16384);
    }

    #[test]
    fn working_set_within_cache_hits_on_reuse() {
        let mut c = CacheSim::new(1 << 20, 8, 64);
        for i in 0..1024u64 {
            c.access(i * 64, 64);
        }
        let mut second = 0;
        for i in 0..1024u64 {
            second += c.access(i * 64, 64);
        }
        assert_eq!(second, 0);
    }

    #[test]
    fn lru_evicts_oldest_within_set() {
        // 1 set, 2 ways, 64-byte lines: cache holds exactly 2 lines.
        let mut c = CacheSim::new(128, 2, 64);
        assert_eq!(c.nsets, 1);
        c.access(0, 1); // line 0 (miss)
        c.access(64, 1); // line 1 (miss)
        c.access(0, 1); // hit; line 1 is now LRU
        assert_eq!(c.access(128, 1), 1); // evicts line 1
        assert_eq!(c.access(0, 1), 0); // line 0 survived
        assert_eq!(c.access(64, 1), 1); // line 1 was evicted
    }
}
