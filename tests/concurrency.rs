//! The Fig. 5 property as an integration test: Scap's dynamically-grown
//! flow table tracks every concurrent stream, while the baselines' static
//! tables saturate and lose the excess.

use scap::apps::StreamTouchApp;
use scap::{ScapConfig, ScapKernel, ScapSimStack};
use scap_baseline::apps::TouchApp;
use scap_baseline::{UserStack, UserStackConfig};
use scap_bench::common::engine;
use scap_trace::concurrent::ConcurrentStreams;
use scap_trace::Packet;

fn workload(streams: u64) -> Vec<Packet> {
    ConcurrentStreams {
        streams,
        data_packets_per_stream: 8,
        payload_per_packet: 1000,
        wire_gap_ns: 12_000,
    }
    .iter()
    .collect()
}

#[test]
fn scap_tracks_every_concurrent_stream() {
    let n = 20_000u64;
    let mut stack = ScapSimStack::new(
        ScapKernel::new(ScapConfig {
            memory_bytes: 512 << 20,
            inactivity_timeout_ns: 10_000_000_000,
            ..ScapConfig::default()
        }),
        StreamTouchApp::default(),
    );
    let report = engine().run(workload(n), &mut stack);
    assert_eq!(report.stats.streams_created, n);
    assert_eq!(report.stats.streams_reported, n);
    assert_eq!(report.stats.streams_lost, 0);
    // Payload delivered for every stream: 8 packets × 1000 B each.
    assert_eq!(stack.app().bytes, n * 8 * 1000);
}

#[test]
fn baseline_static_table_saturates() {
    let n = 5_000u64;
    let cap = 1_000usize;
    let mut stack = UserStack::new(
        UserStackConfig {
            max_flows: cap,
            ..UserStackConfig::libnids()
        },
        TouchApp::default(),
    );
    let report = engine().run(workload(n), &mut stack);
    // Only the table-capacity prefix is tracked; the rest are lost.
    assert!(report.stats.streams_created as usize <= cap);
    assert!(
        report.stats.streams_lost >= n - cap as u64,
        "lost {} of {}",
        report.stats.streams_lost,
        n
    );
}

#[test]
fn interleaving_does_not_confuse_reassembly() {
    // Round-robin interleaving at maximum stream concurrency: every
    // stream's bytes must come out whole and in order.
    let n = 500u64;
    let mut stack = ScapSimStack::new(
        ScapKernel::new(ScapConfig {
            memory_bytes: 256 << 20,
            chunk_size: 2048,
            inactivity_timeout_ns: 10_000_000_000,
            ..ScapConfig::default()
        }),
        StreamTouchApp::default(),
    );
    let report = engine().run(workload(n), &mut stack);
    assert_eq!(report.stats.dropped_packets, 0);
    assert_eq!(stack.app().bytes, n * 8 * 1000);
    assert_eq!(report.stats.streams_reported, n);
}

#[test]
fn scap_survives_an_order_of_magnitude_beyond_baseline_capacity() {
    // The crossover the paper plots: at N far beyond the baseline table
    // size, scap still reports everything.
    let n = 30_000u64;
    let cap = 2_000usize;

    let mut nids = UserStack::new(
        UserStackConfig {
            max_flows: cap,
            ..UserStackConfig::stream5()
        },
        TouchApp::default(),
    );
    let nids_rep = engine().run(workload(n), &mut nids);
    let nids_lost_pct = 100.0 * nids_rep.stats.streams_lost as f64 / n as f64;

    let mut sc = ScapSimStack::new(
        ScapKernel::new(ScapConfig {
            memory_bytes: 512 << 20,
            inactivity_timeout_ns: 10_000_000_000,
            ..ScapConfig::default()
        }),
        StreamTouchApp::default(),
    );
    let scap_rep = engine().run(workload(n), &mut sc);

    assert!(nids_lost_pct > 90.0, "baseline lost {nids_lost_pct:.1}%");
    assert_eq!(scap_rep.stats.streams_reported, n);
}
