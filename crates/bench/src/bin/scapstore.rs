//! scapstore — front-end for the persistent stream archive.
//!
//! ```text
//! scapstore write <dir> <file.pcap> [filter] [--cutoff BYTES]
//!           [--budget BYTES] [--segment BYTES] [--workers N]
//!     capture the pcap through the full Scap stack and archive every
//!     delivered stream into <dir>
//! scapstore ls <dir>                  list archived streams (uid order)
//! scapstore query <dir> <expr> [--since NS] [--until NS]
//!           [--export out.pcap]      BPF query over index records only
//! scapstore fquery <root> <expr> [--timeout-ms N]
//!     federated query across every <root>/shard-N archive with a
//!     per-shard time budget; reports per-shard status and whether the
//!     merged result is partial
//! scapstore cat <dir> <uid>          dump a stream's payload to stdout
//! scapstore compact <dir> [--budget BYTES]
//!     re-enforce the budget and rewrite segments without dead weight
//! scapstore verify <dir|ckpt> [--repair]  integrity check (exit 1 if dirty);
//!     --repair runs torn-tail recovery first. A plain-file argument is
//!     treated as a warm-restart checkpoint instead of an archive
//! ```

use scap::Scap;
use scap_store::{IndexRecord, SharedStoreWriter, StoreConfig, StoreReader, StoreWriter};
use scap_trace::pcap::PcapReader;
use std::io::Write;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage(if args.is_empty() { 2 } else { 0 });
    }
    match args[0].as_str() {
        "write" => cmd_write(&args[1..]),
        "ls" => cmd_ls(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "fquery" => cmd_fquery(&args[1..]),
        "cat" => cmd_cat(&args[1..]),
        "compact" => cmd_compact(&args[1..]),
        "verify" => cmd_verify(&args[1..]),
        other => die(&format!("unknown command {other}")),
    }
}

fn usage(code: i32) -> ! {
    eprintln!(
        "usage: scapstore write <dir> <file.pcap> [filter] [--cutoff BYTES] \
         [--budget BYTES] [--segment BYTES] [--workers N]\n\
         \x20      scapstore ls <dir>\n\
         \x20      scapstore query <dir> <expr> [--since NS] [--until NS] [--export out.pcap]\n\
         \x20      scapstore fquery <root> <expr> [--timeout-ms N]\n\
         \x20      scapstore cat <dir> <uid>\n\
         \x20      scapstore compact <dir> [--budget BYTES]\n\
         \x20      scapstore verify <dir|ckpt> [--repair]"
    );
    std::process::exit(code);
}

fn die(msg: &str) -> ! {
    eprintln!("scapstore: {msg}");
    std::process::exit(2);
}

/// Split `args` into positionals and `--flag value` pairs, rejecting
/// unknown flags.
fn parse(args: &[String], known: &[&str]) -> (Vec<String>, Vec<(String, String)>) {
    let mut pos = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if !known.contains(&name) {
                die(&format!("unknown flag --{name}"));
            }
            if name == "repair" {
                flags.push((name.to_string(), String::new()));
            } else {
                i += 1;
                let v = args
                    .get(i)
                    .unwrap_or_else(|| die(&format!("--{name} needs a value")));
                flags.push((name.to_string(), v.clone()));
            }
        } else {
            pos.push(a.clone());
        }
        i += 1;
    }
    (pos, flags)
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn num(flags: &[(String, String)], name: &str) -> Option<u64> {
    flag(flags, name).map(|v| {
        v.parse()
            .unwrap_or_else(|_| die(&format!("--{name} needs a number, got {v}")))
    })
}

fn cmd_write(args: &[String]) {
    let (pos, flags) = parse(args, &["cutoff", "budget", "segment", "workers"]);
    let [dir, pcap] = &pos[..2.min(pos.len())] else {
        usage(2)
    };
    let filter = pos.get(2).map(String::as_str).unwrap_or("");
    let f = std::fs::File::open(pcap).unwrap_or_else(|e| die(&format!("cannot open {pcap}: {e}")));
    let packets = PcapReader::new(f)
        .unwrap_or_else(|e| die(&format!("not a pcap file: {e}")))
        .read_all()
        .unwrap_or_else(|e| die(&format!("read error: {e}")));

    let mut cfg = StoreConfig::new(dir);
    if let Some(b) = num(&flags, "budget") {
        cfg = cfg.disk_budget(b);
    }
    if let Some(b) = num(&flags, "segment") {
        cfg = cfg.segment_bytes(b);
    }
    let writer = StoreWriter::open(cfg).unwrap_or_else(|e| die(&format!("open archive: {e}")));
    let shared = SharedStoreWriter::new(writer);

    let mut builder = Scap::builder()
        .filter(filter)
        .worker_threads(num(&flags, "workers").unwrap_or(1) as usize);
    if let Some(c) = num(&flags, "cutoff") {
        builder = builder.cutoff(c);
    }
    let mut scap = builder
        .try_build()
        .unwrap_or_else(|e| die(&format!("bad filter expression: {e}")));
    scap.attach_sink(Arc::new(shared.clone()));
    let stats = scap.start_capture(packets);
    let store = shared
        .finish()
        .unwrap_or_else(|e| die(&format!("archive finish: {e}")));

    println!(
        "captured {} packets, {} streams | archived {} streams, {} payload bytes, {} segment(s)",
        stats.stack.wire_packets,
        stats.stack.streams_reported,
        store.streams_archived,
        store.bytes_archived,
        store.segments_created,
    );
    if store.streams_pruned > 0 {
        println!(
            "retention pruned {} stream(s) / {} bytes; compaction reclaimed {} bytes",
            store.streams_pruned, store.bytes_pruned, store.bytes_reclaimed
        );
    }
    if store.write_errors > 0 {
        eprintln!("scapstore: {} write error(s)", store.write_errors);
        std::process::exit(1);
    }
}

fn open_reader(dir: &str) -> StoreReader {
    StoreReader::open(dir).unwrap_or_else(|e| die(&format!("open archive {dir}: {e}")))
}

fn print_records<'a>(records: impl IntoIterator<Item = &'a IndexRecord>) -> usize {
    println!(
        "{:>8} {:<48} {:<16} {:>4} {:>12} {:>16} {:>16} flags",
        "uid", "stream", "status", "prio", "stored", "first_ns", "last_ns"
    );
    let mut n = 0;
    for r in records {
        n += 1;
        println!(
            "{:>8} {:<48} {:<16} {:>4} {:>12} {:>16} {:>16} {}{}",
            r.uid,
            r.key.to_string(),
            status_str(r),
            r.priority,
            r.stored_bytes(),
            r.first_ts_ns,
            r.last_ts_ns,
            if r.cutoff_exceeded { "C" } else { "" },
            if r.errors.0 != 0 { "E" } else { "" },
        );
    }
    n
}

fn status_str(r: &IndexRecord) -> &'static str {
    match r.status {
        scap::StreamStatus::Active => "active",
        scap::StreamStatus::ClosedFin => "closed(fin)",
        scap::StreamStatus::ClosedRst => "closed(rst)",
        scap::StreamStatus::ClosedTimeout => "closed(timeout)",
    }
}

fn cmd_ls(args: &[String]) {
    let (pos, _) = parse(args, &[]);
    let [dir] = &pos[..] else { usage(2) };
    let r = open_reader(dir);
    let n = print_records(r.iter());
    println!("{n} stream(s)");
}

fn cmd_query(args: &[String]) {
    let (pos, flags) = parse(args, &["since", "until", "export"]);
    let [dir, expr] = &pos[..] else { usage(2) };
    let r = open_reader(dir);
    let mut hits = r
        .query(expr)
        .unwrap_or_else(|e| die(&format!("bad filter expression: {e}")));
    let since = num(&flags, "since").unwrap_or(0);
    let until = num(&flags, "until").unwrap_or(u64::MAX);
    hits.retain(|rec| rec.first_ts_ns <= until && rec.last_ts_ns >= since);
    let uids: Vec<u64> = hits.iter().map(|rec| rec.uid).collect();
    let n = print_records(hits);
    println!("{n} stream(s) matched");
    if let Some(out) = flag(&flags, "export") {
        let f = std::fs::File::create(out)
            .unwrap_or_else(|e| die(&format!("cannot create {out}: {e}")));
        let pkts = r
            .export_pcap(&uids, f, 65535)
            .unwrap_or_else(|e| die(&format!("export failed: {e}")));
        println!("exported {pkts} synthesized packet(s) to {out}");
    }
}

fn cmd_fquery(args: &[String]) {
    use scap_store::{FederatedReader, ShardOutcome};
    let (pos, flags) = parse(args, &["timeout-ms"]);
    let [root, expr] = &pos[..] else { usage(2) };
    let budget = std::time::Duration::from_millis(num(&flags, "timeout-ms").unwrap_or(5_000));
    let fed = FederatedReader::open(root)
        .unwrap_or_else(|e| die(&format!("open fleet root {root}: {e}")));
    let res = fed.query(expr, budget);
    let n = print_records(res.records.iter().map(|(_, r)| r));
    println!(
        "{n} stream(s) matched across {}/{} shard(s){}",
        res.ok_shards(),
        fed.nshards(),
        if res.partial {
            " — PARTIAL result"
        } else {
            ""
        }
    );
    for s in &res.statuses {
        let outcome = match &s.outcome {
            ShardOutcome::Ok(k) => format!("ok ({k} record(s))"),
            ShardOutcome::Error(e) => format!("ERROR: {e}"),
            ShardOutcome::TimedOut => "TIMED OUT (records excluded)".into(),
        };
        println!(
            "  shard {:>3}  {:>8.2} ms  {}",
            s.shard,
            s.elapsed.as_secs_f64() * 1e3,
            outcome
        );
    }
    if res.partial {
        std::process::exit(1);
    }
}

fn cmd_cat(args: &[String]) {
    let (pos, _) = parse(args, &[]);
    let [dir, uid] = &pos[..] else { usage(2) };
    let uid: u64 = uid
        .parse()
        .unwrap_or_else(|_| die(&format!("bad uid {uid}")));
    let r = open_reader(dir);
    let data = r
        .read_stream(uid)
        .unwrap_or_else(|e| die(&format!("read stream {uid}: {e}")));
    // Ignore write errors (e.g. a closed pipe under `| head`).
    let mut out = std::io::stdout().lock();
    for (di, d) in data.iter().enumerate() {
        if !d.is_empty() {
            let _ = writeln!(out, "--- direction {di} ({} bytes) ---", d.len());
            let _ = out.write_all(d);
            let _ = writeln!(out);
        }
    }
}

fn cmd_compact(args: &[String]) {
    let (pos, flags) = parse(args, &["budget"]);
    let [dir] = &pos[..] else { usage(2) };
    let mut cfg = StoreConfig::new(dir);
    if let Some(b) = num(&flags, "budget") {
        cfg = cfg.disk_budget(b);
    }
    let mut w = StoreWriter::open(cfg).unwrap_or_else(|e| die(&format!("open archive: {e}")));
    let stats = w.finish().unwrap_or_else(|e| die(&format!("compact: {e}")));
    println!(
        "{} live stream(s), {} live bytes | pruned {} / reclaimed {} bytes, recovered {} torn bytes",
        w.live_streams(),
        w.live_bytes(),
        stats.streams_pruned,
        stats.bytes_reclaimed,
        stats.torn_tail_bytes_recovered,
    );
}

fn cmd_verify(args: &[String]) {
    let (pos, flags) = parse(args, &["repair"]);
    let [dir] = &pos[..] else { usage(2) };
    // A plain file is a capture checkpoint or a flight-recorder black
    // box, not an archive directory; the file magic distinguishes them.
    if std::path::Path::new(dir).is_file() {
        if is_flight_file(dir) {
            return verify_flight(dir);
        }
        return verify_checkpoint(dir, flag(&flags, "repair").is_some());
    }
    if flag(&flags, "repair").is_some() {
        // Writer-side open runs torn-tail recovery (truncating torn
        // segment/index tails and dropping records whose payload no
        // longer resolves); compaction then rewrites the index and
        // segments so the on-disk state matches the surviving records.
        let mut w =
            StoreWriter::open(StoreConfig::new(dir)).unwrap_or_else(|e| die(&format!("{e}")));
        if w.stats().torn_tail_bytes_recovered > 0 {
            println!(
                "recovered {} torn tail byte(s)",
                w.stats().torn_tail_bytes_recovered
            );
        }
        w.compact().unwrap_or_else(|e| die(&format!("repair: {e}")));
        println!("repaired: {} stream(s) retained", w.live_streams());
    }
    let r = open_reader(dir);
    let report = r.verify().unwrap_or_else(|e| die(&format!("verify: {e}")));
    println!("{report}");
    for e in &report.errors {
        eprintln!("scapstore: {e}");
    }
    if !report.is_clean() {
        eprintln!("scapstore: archive is NOT clean (run verify --repair to truncate torn tails)");
        std::process::exit(1);
    }
    println!("archive is clean");
}

/// True when the file starts with the flight-journal magic.
fn is_flight_file(path: &str) -> bool {
    std::fs::read(path).is_ok_and(|b| {
        b.len() >= 4 && u32::from_le_bytes([b[0], b[1], b[2], b[3]]) == scap::flight::FLIGHT_MAGIC
    })
}

/// Decode and summarize a flight-recorder black box (the journal tail the
/// live driver dumps next to the checkpoint when the process dies),
/// printing the last few events — the ones that explain the death.
fn verify_flight(path: &str) {
    let j = scap::flight::read_journal(std::path::Path::new(path))
        .unwrap_or_else(|e| die(&format!("black box is NOT clean: {e}")));
    println!(
        "flight black box is clean: {} event(s) from {} core ring(s) (cap {}), \
         {} recorded / {} overwritten lifetime",
        j.events.len(),
        j.ncores,
        j.ring_cap,
        j.total_recorded(),
        j.total_dropped(),
    );
    if j.torn_bytes > 0 {
        println!(
            "torn tail: {} byte(s) past the last valid record",
            j.torn_bytes
        );
    }
    println!("{}", scap::flight::top_reasons_line(&j.events, 3));
    let tail = j.events.len().saturating_sub(8);
    for e in &j.events[tail..] {
        println!("{}", e.format());
    }
}

/// Verify a warm-restart checkpoint file; with `repair`, truncate its
/// torn tail first (idempotent: a second repair removes nothing).
fn verify_checkpoint(path: &str, repair: bool) {
    let p = std::path::Path::new(path);
    if repair {
        let r = scap::checkpoint::repair_file(p).unwrap_or_else(|e| die(&format!("repair: {e}")));
        if r.torn_bytes_removed > 0 {
            println!(
                "recovered {} torn tail byte(s), {} valid bytes kept",
                r.torn_bytes_removed, r.valid_len
            );
        } else {
            println!("nothing to repair ({} valid bytes)", r.valid_len);
        }
    }
    match scap::checkpoint::read_image(p) {
        Ok(img) => println!(
            "checkpoint seq {} is clean: {} stream(s), {} fdir filter(s), uid counter {}",
            img.seq,
            img.streams.len(),
            img.fdir.len(),
            img.globals.uid_counter,
        ),
        Err(e) => {
            eprintln!("scapstore: checkpoint is NOT clean: {e}");
            std::process::exit(1);
        }
    }
}
