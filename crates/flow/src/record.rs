//! Stream records: the `stream_t` of the paper.

use scap_wire::{Direction, FlowKey};

/// Opaque stream handle: index into the record pool plus a generation
/// counter so stale handles never alias a recycled slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId {
    pub(crate) slot: u32,
    pub(crate) generation: u32,
}

impl StreamId {
    /// A dense index usable for side tables (valid while the stream lives).
    pub fn slot(&self) -> usize {
        self.slot as usize
    }
}

/// Stream lifecycle status (`sd->status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamStatus {
    /// Packets are still expected.
    #[default]
    Active,
    /// Closed by FIN handshake.
    ClosedFin,
    /// Closed by RST.
    ClosedRst,
    /// Expired by inactivity timeout.
    ClosedTimeout,
}

impl StreamStatus {
    /// True when the stream is finished.
    pub fn is_closed(&self) -> bool {
        !matches!(self, StreamStatus::Active)
    }
}

/// Reassembly/protocol error flags (`sd->error`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamErrors(pub u8);

impl StreamErrors {
    /// No three-way handshake was observed before data.
    pub const INCOMPLETE_HANDSHAKE: StreamErrors = StreamErrors(0x01);
    /// A sequence-number hole was skipped (fast mode under loss).
    pub const SEQUENCE_GAP: StreamErrors = StreamErrors(0x02);
    /// Overlapping segments disagreed about payload bytes.
    pub const INCONSISTENT_OVERLAP: StreamErrors = StreamErrors(0x04);
    /// A segment had an out-of-window / invalid sequence number.
    pub const INVALID_SEQUENCE: StreamErrors = StreamErrors(0x08);
    /// A worker thread processing this stream died or stalled; events may
    /// have been lost while the watchdog recovered.
    pub const WORKER_FAILURE: StreamErrors = StreamErrors(0x10);
    /// The stream survived a warm restart: it was restored from a
    /// checkpoint, and packets arriving during the restart blackout were
    /// lost (see `resume_gap_bytes` on the record).
    pub const RESUMED: StreamErrors = StreamErrors(0x20);

    /// Set the given flag(s).
    pub fn set(&mut self, e: StreamErrors) {
        self.0 |= e.0;
    }

    /// True when the given flag(s) are all set.
    pub fn contains(&self, e: StreamErrors) -> bool {
        self.0 & e.0 == e.0
    }

    /// True when no error has been recorded.
    pub fn is_clean(&self) -> bool {
        self.0 == 0
    }
}

/// Per-direction byte/packet counters (the paper's "all, dropped,
/// discarded, and captured" accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirStats {
    /// Everything observed on the wire for this direction.
    pub total_pkts: u64,
    /// Total wire bytes (frame lengths).
    pub total_bytes: u64,
    /// Payload bytes accepted into the stream buffer.
    pub captured_bytes: u64,
    /// Packets whose payload was accepted.
    pub captured_pkts: u64,
    /// Packets deliberately not kept (cutoff, duplicates, filters).
    pub discarded_pkts: u64,
    /// Bytes deliberately not kept.
    pub discarded_bytes: u64,
    /// Packets lost to overload (memory/queue pressure).
    pub dropped_pkts: u64,
    /// Bytes lost to overload.
    pub dropped_bytes: u64,
}

/// A tracked stream: one bidirectional transport flow.
///
/// The paper materializes one `stream_t` per direction with a pointer to
/// its opposite; here the two directions live in one record (`dirs[0]` is
/// the canonical [`Direction::Forward`]), which makes the opposite-
/// direction link free and keeps both halves on one cache line group.
#[derive(Debug, Clone)]
pub struct StreamRecord {
    /// Handle of this record.
    pub id: StreamId,
    /// Canonical (direction-independent) flow key.
    pub key: FlowKey,
    /// Direction of the first observed packet relative to `key`; the API
    /// layer uses it to present client/server orientation.
    pub first_dir: Direction,
    /// Timestamp of the first packet (ns).
    pub first_ts_ns: u64,
    /// Timestamp of the most recent packet (ns).
    pub last_ts_ns: u64,
    /// Lifecycle status.
    pub status: StreamStatus,
    /// Error flags accumulated by reassembly.
    pub errors: StreamErrors,
    /// Application-assigned priority (0 = lowest). Used by PPL.
    pub priority: u8,
    /// Per-direction stream cutoff in payload bytes (`None` = unlimited).
    pub cutoff: [Option<u64>; 2],
    /// True once a cutoff was exceeded (stream stays tracked for stats).
    pub cutoff_exceeded: bool,
    /// The application asked to discard the rest of this stream.
    pub discarded: bool,
    /// Per-direction counters.
    pub dirs: [DirStats; 2],
    /// Chunk size override (0 = socket default).
    pub chunk_size: u32,
    /// Chunk overlap override.
    pub overlap: u32,
    /// Per-stream reassembly-policy override (target-based reassembly);
    /// `None` follows the socket default.
    pub reassembly_policy: Option<u8>,
    /// Cumulative user-level processing time charged to this stream (ns);
    /// lets applications spot algorithmic-complexity attacks (§3.2).
    pub processing_time_ns: u64,
    /// Number of chunks delivered so far.
    pub chunks: u64,
    /// Payload bytes skipped over the warm-restart blackout window
    /// (0 for streams that never crossed a restart). Bounded by the
    /// checkpoint interval worth of traffic.
    pub resume_gap_bytes: u64,
    // Intrusive access-list links (most-recently-used list).
    pub(crate) lru_prev: Option<u32>,
    pub(crate) lru_next: Option<u32>,
}

impl StreamRecord {
    pub(crate) fn new(id: StreamId, key: FlowKey, first_dir: Direction, now: u64) -> Self {
        StreamRecord {
            id,
            key,
            first_dir,
            first_ts_ns: now,
            last_ts_ns: now,
            status: StreamStatus::Active,
            errors: StreamErrors::default(),
            priority: 0,
            cutoff: [None, None],
            cutoff_exceeded: false,
            discarded: false,
            dirs: [DirStats::default(), DirStats::default()],
            chunk_size: 0,
            overlap: 0,
            reassembly_policy: None,
            processing_time_ns: 0,
            chunks: 0,
            resume_gap_bytes: 0,
            lru_prev: None,
            lru_next: None,
        }
    }

    /// Total wire bytes over both directions.
    pub fn total_bytes(&self) -> u64 {
        self.dirs[0].total_bytes + self.dirs[1].total_bytes
    }

    /// Total packets over both directions.
    pub fn total_pkts(&self) -> u64 {
        self.dirs[0].total_pkts + self.dirs[1].total_pkts
    }

    /// Captured payload bytes over both directions.
    pub fn captured_bytes(&self) -> u64 {
        self.dirs[0].captured_bytes + self.dirs[1].captured_bytes
    }

    /// The effective cutoff for a direction.
    pub fn cutoff_for(&self, dir: Direction) -> Option<u64> {
        self.cutoff[dir.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_wire::Transport;

    fn rec() -> StreamRecord {
        let key = FlowKey::new_v4([1, 2, 3, 4], [5, 6, 7, 8], 10, 20, Transport::Tcp);
        StreamRecord::new(
            StreamId {
                slot: 0,
                generation: 1,
            },
            key,
            Direction::Forward,
            42,
        )
    }

    #[test]
    fn new_record_is_active_and_clean() {
        let r = rec();
        assert_eq!(r.status, StreamStatus::Active);
        assert!(!r.status.is_closed());
        assert!(r.errors.is_clean());
        assert_eq!(r.first_ts_ns, 42);
        assert_eq!(r.total_bytes(), 0);
    }

    #[test]
    fn error_flags_accumulate() {
        let mut r = rec();
        r.errors.set(StreamErrors::SEQUENCE_GAP);
        r.errors.set(StreamErrors::INCOMPLETE_HANDSHAKE);
        assert!(r.errors.contains(StreamErrors::SEQUENCE_GAP));
        assert!(r.errors.contains(StreamErrors::INCOMPLETE_HANDSHAKE));
        assert!(!r.errors.contains(StreamErrors::INVALID_SEQUENCE));
        assert!(!r.errors.is_clean());
    }

    #[test]
    fn per_direction_cutoffs() {
        let mut r = rec();
        r.cutoff[Direction::Forward.index()] = Some(100);
        assert_eq!(r.cutoff_for(Direction::Forward), Some(100));
        assert_eq!(r.cutoff_for(Direction::Reverse), None);
    }

    #[test]
    fn aggregates_sum_both_directions() {
        let mut r = rec();
        r.dirs[0].total_bytes = 10;
        r.dirs[1].total_bytes = 5;
        r.dirs[0].total_pkts = 2;
        r.dirs[1].total_pkts = 1;
        r.dirs[0].captured_bytes = 7;
        assert_eq!(r.total_bytes(), 15);
        assert_eq!(r.total_pkts(), 3);
        assert_eq!(r.captured_bytes(), 7);
    }

    #[test]
    fn closed_statuses() {
        for s in [
            StreamStatus::ClosedFin,
            StreamStatus::ClosedRst,
            StreamStatus::ClosedTimeout,
        ] {
            assert!(s.is_closed());
        }
        assert!(!StreamStatus::Active.is_closed());
    }
}
