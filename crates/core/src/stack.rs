//! The simulation driver: wires [`ScapKernel`] into the discrete-time
//! engine and runs a real application model on top.
//!
//! Scheduling per tick mirrors the paper's §4.2 layout: a kernel thread
//! per core drains its own RX ring (softirq priority), and worker threads
//! pinned one-per-core consume the event queues their core produced
//! (locality by construction). With fewer workers than cores — the
//! single-worker comparison experiments — each worker round-robins over
//! the queues it covers.

use crate::event::{Event, EventKind};
use crate::kernel::ScapKernel;
use scap_sim::{CacheSim, CaptureStack, CoreBudgets, CostModel, StackStats, Work};
use scap_telemetry::{Metric, Stage};
use scap_trace::Packet;
#[allow(unused_imports)]
use CacheSim as _CacheSimUsed;

/// A user-level application under simulation.
///
/// `on_event` runs the application's *real* logic (e.g. Aho–Corasick over
/// the delivered chunk) and returns the work receipt for the cost model.
pub trait SimApp {
    /// Handle one event; return the user-side work it cost.
    fn on_event(&mut self, ev: &Event) -> Work;
    /// Total pattern matches found so far (0 for non-matching apps).
    fn matches(&self) -> u64 {
        0
    }
}

/// The Scap capture stack under simulation.
pub struct ScapSimStack<A: SimApp> {
    kernel: ScapKernel,
    app: A,
    nworkers: usize,
    events_delivered: u64,
}

impl<A: SimApp> ScapSimStack<A> {
    /// Wrap a kernel and an application; `nworkers` worker threads are
    /// pinned to cores `0..nworkers`.
    pub fn new(kernel: ScapKernel, app: A) -> Self {
        let nworkers = kernel.config().worker_threads.max(1);
        ScapSimStack {
            kernel,
            app,
            nworkers,
            events_delivered: 0,
        }
    }

    /// Attach a cache model (the Fig. 7 locality experiment): the kernel
    /// traces its touches (frame headers, flow records, chunk writes into
    /// stream-specific regions) and the worker's chunk reads follow —
    /// Scap's locality argument made literal.
    pub fn with_cache(mut self, cache: CacheSim) -> Self {
        self.kernel.set_cache(cache);
        self
    }

    /// Total cache misses recorded (when a cache model is attached).
    pub fn cache_misses(&self) -> u64 {
        self.kernel.cache_misses()
    }

    /// Access the kernel (inspection in tests/harness).
    pub fn kernel(&self) -> &ScapKernel {
        &self.kernel
    }

    /// Access the application model.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Split one kernel work receipt into per-stage virtual-cycle spans
    /// and record them into the kernel's telemetry registry. The same
    /// stage histograms hold wall-clock nanoseconds under the live
    /// driver; here they hold deterministic virtual cycles, so a seeded
    /// run always produces identical telemetry.
    fn record_kernel_spans(kernel: &ScapKernel, model: &CostModel, core: usize, w: &Work) {
        let tele = kernel.telemetry();
        let nic = w.k_packets as f64 * model.cyc_k_packet;
        let kern = w.k_hash_probes as f64 * model.cyc_k_hash_probe
            + w.k_bytes_touched as f64 * model.cyc_k_byte_touch
            + w.k_fdir_ops as f64 * model.cyc_k_fdir_op
            + w.k_timer_ops as f64 * model.cyc_k_timer_op;
        let mem = w.k_bytes_copied as f64 * model.cyc_k_byte_copy;
        let evq = w.k_events as f64 * model.cyc_k_event;
        let fp =
            w.fp_bursts as f64 * model.cyc_fp_burst + w.fp_packets as f64 * model.cyc_fp_packet;
        for (stage, cyc) in [
            (Stage::Nic, nic),
            (Stage::Kernel, kern),
            (Stage::Memory, mem),
            (Stage::EventQueue, evq),
            (Stage::Fastpath, fp),
        ] {
            if cyc > 0.0 {
                tele.record_stage(core, stage, cyc as u64);
            }
        }
    }

    /// Pull work from a core's ring via the configured dispatch mode.
    fn poll_dispatch(kernel: &mut ScapKernel, core: usize, now: u64) -> Option<Work> {
        match kernel.config().dispatch {
            crate::DispatchMode::Classic => kernel.kernel_poll(core, now),
            crate::DispatchMode::Fastpath => kernel.poll_burst(core, now),
        }
    }

    fn deliver(kernel: &mut ScapKernel, app: &mut A, ev: Event, now_ns: u64) -> Work {
        kernel.note_delivery(&ev, now_ns);
        let mut w = Work {
            u_events: 1,
            ..Default::default()
        };
        if let EventKind::Data { chunk, .. } = &ev.kind {
            // The worker reads the chunk the kernel just wrote — on the
            // same core, still warm (the §6.5.2 locality effect).
            w.u_cache_misses += kernel.user_touch_chunk(chunk);
        }
        let app_work = app.on_event(&ev);
        w.add(&app_work);
        if let EventKind::Data { chunk, dir, .. } = ev.kind {
            kernel.release_data(ev.stream.uid, dir, chunk);
        }
        w
    }
}

impl<A: SimApp> CaptureStack for ScapSimStack<A> {
    fn tick(&mut self, now_ns: u64, packets: &[Packet], budgets: &mut CoreBudgets) {
        // Stages 1+2 interleaved — NIC admission (hardware, unbudgeted)
        // with immediate softirq drain while the core has budget. The
        // interleaving matters for dynamics *within* a tick: softirq runs
        // concurrently with arrival on real hardware, so a flow-director
        // filter installed in response to packet N must already drop
        // packet N+1, not take effect a tick later.
        let ncores = self.kernel.ncores();
        let model = *budgets.model();
        for p in packets {
            let verdict = self.kernel.nic_receive(p);
            if let Some(q) = verdict.queue() {
                while budgets.can_run(q) {
                    match Self::poll_dispatch(&mut self.kernel, q, now_ns) {
                        Some(w) => {
                            budgets.charge_kernel(q, &w);
                            Self::record_kernel_spans(&self.kernel, &model, q, &w);
                        }
                        None => break,
                    }
                }
            }
        }
        // Timers, plus backlog drain on cores that regained budget.
        for core in 0..ncores {
            let tw = self.kernel.kernel_timers(core, now_ns);
            budgets.charge_kernel(core, &tw);
            Self::record_kernel_spans(&self.kernel, &model, core, &tw);
            while budgets.can_run(core) {
                match Self::poll_dispatch(&mut self.kernel, core, now_ns) {
                    Some(w) => {
                        budgets.charge_kernel(core, &w);
                        Self::record_kernel_spans(&self.kernel, &model, core, &w);
                    }
                    None => break,
                }
            }
        }

        // Stage 3 — workers: each pinned to its core, consuming the event
        // queues it covers with whatever budget softirq left.
        for worker in 0..self.nworkers {
            // One poll syscall per tick with pending work.
            let mut polled = false;
            let mut queue_offset = 0;
            while budgets.can_run(worker) {
                // Find the next covered queue with an event.
                let mut ev = None;
                for i in 0..ncores {
                    let q = (queue_offset + i) % ncores;
                    if q % self.nworkers != worker {
                        continue;
                    }
                    if let Some(e) = self.kernel.next_event(q) {
                        queue_offset = q + 1;
                        ev = Some(e);
                        break;
                    }
                }
                let Some(ev) = ev else { break };
                if !polled {
                    budgets.charge_user(
                        worker,
                        &Work {
                            u_syscalls: 1,
                            ..Default::default()
                        },
                    );
                    polled = true;
                }
                self.events_delivered += 1;
                let w = Self::deliver(&mut self.kernel, &mut self.app, ev, now_ns);
                budgets.charge_user(worker, &w);
                // Shard by worker, clamped into the per-core registry
                // (workers normally number at most the cores).
                let shard = worker % ncores;
                let tele = self.kernel.telemetry();
                tele.inc(shard, Metric::WorkerEventsHandled);
                tele.record_stage(shard, Stage::Worker, model.user_cycles(&w) as u64);
            }
        }
        self.kernel.set_worker_heartbeats(self.events_delivered);
    }

    fn finish(&mut self, now_ns: u64) {
        self.kernel.finish(now_ns);
        // Post-run catch-up: remaining queued events are processed
        // unbudgeted so final accounting (streams, matches) is complete.
        for q in 0..self.kernel.ncores() {
            let worker = q % self.nworkers;
            while let Some(ev) = self.kernel.next_event(q) {
                self.events_delivered += 1;
                Self::deliver(&mut self.kernel, &mut self.app, ev, now_ns);
                self.kernel
                    .telemetry()
                    .inc(worker, Metric::WorkerEventsHandled);
            }
        }
        self.kernel.set_worker_heartbeats(self.events_delivered);
    }

    fn stats(&self) -> StackStats {
        let mut s = self.kernel.stats().stack;
        s.matches = self.app.matches();
        s.events_delivered = self.events_delivered;
        s
    }
}

/// Built-in application models used by the experiments.
pub mod apps {
    use super::SimApp;
    use crate::event::{Event, EventKind};
    use scap_patterns::{AhoCorasick, MatcherState};
    use scap_sim::Work;
    use std::collections::HashMap;

    /// §3.3.1 — flow statistics export: no data is consumed at all; the
    /// termination callback reads counters from the snapshot.
    #[derive(Default)]
    pub struct FlowStatsApp {
        /// Exported flow records: (key, bytes, pkts).
        pub exported: u64,
        /// Total bytes across exported flows (wire bytes, incl. FDIR
        /// estimates).
        pub exported_bytes: u64,
    }

    impl SimApp for FlowStatsApp {
        fn on_event(&mut self, ev: &Event) -> Work {
            if matches!(ev.kind, EventKind::Terminated) {
                self.exported += 1;
                self.exported_bytes += ev.stream.total_bytes();
            }
            // Reading a handful of snapshot fields: negligible beyond the
            // event dispatch the stack already charges.
            Work::default()
        }
    }

    /// §6.3 — stream delivery: receive all stream data, touch every byte,
    /// no further processing.
    #[derive(Default)]
    pub struct StreamTouchApp {
        /// Total delivered bytes observed.
        pub bytes: u64,
    }

    impl SimApp for StreamTouchApp {
        fn on_event(&mut self, ev: &Event) -> Work {
            let n = ev.data_len() as u64;
            self.bytes += n;
            Work {
                u_bytes_touched: n,
                ..Default::default()
            }
        }
    }

    /// §3.3.2 / §6.5 — pattern matching over reassembled streams, with
    /// per-stream-direction matcher state carried across chunks.
    pub struct PatternMatchApp {
        ac: AhoCorasick,
        states: HashMap<(u64, u8), MatcherState>,
        matches: u64,
        /// Scan delivered per-packet payloads instead of the chunk
        /// (§6.5.3, "Scap with packets").
        pub per_packet: bool,
    }

    impl PatternMatchApp {
        /// Build from a compiled automaton.
        pub fn new(ac: AhoCorasick) -> Self {
            PatternMatchApp {
                ac,
                states: HashMap::new(),
                matches: 0,
                per_packet: false,
            }
        }

        /// Matches found so far.
        pub fn total_matches(&self) -> u64 {
            self.matches
        }
    }

    impl SimApp for PatternMatchApp {
        fn on_event(&mut self, ev: &Event) -> Work {
            match &ev.kind {
                EventKind::Data {
                    dir,
                    chunk,
                    packets,
                } => {
                    let key = (ev.stream.uid, dir.index() as u8);
                    let st = self.states.entry(key).or_default();
                    if self.per_packet {
                        // Packet-based processing: scan each packet's
                        // payload slice out of the chunk. Patterns
                        // spanning packets may be missed (the observed
                        // small accuracy dip in Fig. 6b).
                        let mut n = 0u64;
                        for pr in packets {
                            if pr.chunk_off == u32::MAX {
                                continue;
                            }
                            let start =
                                (pr.chunk_off as u64).saturating_sub(chunk.start_offset) as usize;
                            let end = (start + pr.payload_len as usize).min(chunk.len);
                            if start >= end {
                                continue;
                            }
                            let mut local = MatcherState::new();
                            n += self.ac.count(&mut local, &chunk.bytes()[start..end]);
                        }
                        self.matches += n;
                        Work {
                            u_bytes_scanned: chunk.len as u64,
                            ..Default::default()
                        }
                    } else {
                        self.matches += self.ac.count(st, chunk.bytes());
                        Work {
                            u_bytes_scanned: chunk.len as u64,
                            ..Default::default()
                        }
                    }
                }
                EventKind::Terminated => {
                    self.states.remove(&(ev.stream.uid, 0));
                    self.states.remove(&(ev.stream.uid, 1));
                    Work::default()
                }
                EventKind::Created => Work::default(),
            }
        }

        fn matches(&self) -> u64 {
            self.matches
        }
    }
}

#[cfg(test)]
mod tests {
    use super::apps::*;
    use super::*;
    use crate::config::ScapConfig;
    use scap_patterns::AhoCorasick;
    use scap_sim::{Engine, EngineConfig};
    use scap_trace::gen::{CampusMix, CampusMixConfig};
    use std::sync::Arc;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default())
    }

    #[test]
    fn flow_stats_app_exports_every_stream() {
        let trace = CampusMix::new(CampusMixConfig::sized(3, 2 << 20)).collect_all();
        let expected = scap_trace::stats::TraceStats::from_packets(trace.iter()).flows;
        let kernel = ScapKernel::new(ScapConfig {
            cutoff: crate::config::CutoffPolicy {
                default: Some(0),
                ..Default::default()
            },
            ..Default::default()
        });
        let mut stack = ScapSimStack::new(kernel, FlowStatsApp::default());
        let report = engine().run(trace, &mut stack);
        assert_eq!(report.stats.dropped_packets, 0);
        assert_eq!(stack.app().exported, expected);
        // Flow-stats export with zero cutoff keeps user CPU tiny (§6.2).
        assert!(
            report.user_cpu_percent() < 10.0,
            "cpu {}",
            report.user_cpu_percent()
        );
    }

    #[test]
    fn stream_touch_app_receives_all_payload() {
        let trace = CampusMix::new(CampusMixConfig::sized(5, 2 << 20)).collect_all();
        let kernel = ScapKernel::new(ScapConfig::default());
        let mut stack = ScapSimStack::new(kernel, StreamTouchApp::default());
        let report = engine().run(trace, &mut stack);
        assert_eq!(report.stats.dropped_packets, 0);
        // Delivered bytes are payload only, well below wire bytes but
        // a substantial share of them.
        assert!(stack.app().bytes > report.stats.wire_bytes / 2);
        assert!(stack.app().bytes < report.stats.wire_bytes);
    }

    #[test]
    fn pattern_match_app_finds_embedded_patterns() {
        let pats: Vec<Vec<u8>> = vec![b"XXWEBATTACKXX".to_vec()];
        let trace = CampusMix::new(CampusMixConfig {
            patterns: Some(Arc::new(pats.clone())),
            pattern_prob: 1.0,
            ..CampusMixConfig::sized(7, 2 << 20)
        })
        .collect_all();
        let ac = AhoCorasick::new(&pats, false);
        let kernel = ScapKernel::new(ScapConfig::default());
        let mut stack = ScapSimStack::new(kernel, PatternMatchApp::new(ac));
        let report = engine().run(trace, &mut stack);
        assert_eq!(report.stats.dropped_packets, 0);
        assert!(report.stats.matches > 0, "no matches found");
    }

    #[test]
    fn overload_drops_packets_but_keeps_more_streams() {
        // Replay a trace far above single-worker matching capacity.
        let pats = scap_patterns::generate_web_attack_patterns(200, 1);
        let trace = CampusMix::new(CampusMixConfig {
            patterns: Some(Arc::new(pats.clone())),
            ..CampusMixConfig::sized(9, 8 << 20)
        })
        .collect_all();
        let natural = scap_trace::replay::natural_rate_bps(&trace);
        let fast: Vec<Packet> =
            scap_trace::replay::RateReplay::new(trace.into_iter(), natural, 6e9).collect();
        let ac = AhoCorasick::new(&pats, false);
        let kernel = ScapKernel::new(ScapConfig {
            memory_bytes: 2 << 20,
            inactivity_timeout_ns: 500_000_000,
            flush_timeout_ns: 5_000_000,
            ..Default::default()
        });
        let mut stack = ScapSimStack::new(kernel, PatternMatchApp::new(ac));
        let report = engine().run(fast, &mut stack);
        assert!(
            report.stats.drop_percent() > 10.0,
            "expected overload, drop = {:.1}%",
            report.stats.drop_percent()
        );
        // Stream loss stays far below packet loss (§6.5.1): handshakes
        // are cheap and PPL shelters young streams.
        assert!(
            report.stats.stream_loss_percent() < report.stats.drop_percent() / 2.0,
            "stream loss {:.1}% vs packet loss {:.1}%",
            report.stats.stream_loss_percent(),
            report.stats.drop_percent()
        );
    }

    #[test]
    fn multiple_workers_raise_capacity() {
        let pats = scap_patterns::generate_web_attack_patterns(200, 2);
        let ac = AhoCorasick::new(&pats, false);
        let trace = CampusMix::new(CampusMixConfig::sized(13, 24 << 20)).collect_all();
        let natural = scap_trace::replay::natural_rate_bps(&trace);
        let run = |workers: usize| {
            let fast: Vec<Packet> =
                scap_trace::replay::RateReplay::new(trace.clone().into_iter(), natural, 3e9)
                    .collect();
            let kernel = ScapKernel::new(ScapConfig {
                worker_threads: workers,
                memory_bytes: 6 << 20,
                // Timeouts scaled to the compressed replay timebase so
                // idle chunks release promptly (see the experiments'
                // scap_config for the same reasoning).
                inactivity_timeout_ns: 500_000_000,
                flush_timeout_ns: 5_000_000,
                ..Default::default()
            });
            let mut stack = ScapSimStack::new(kernel, PatternMatchApp::new(ac.clone()));
            engine().run(fast, &mut stack).stats.drop_percent()
        };
        let one = run(1);
        let eight = run(8);
        assert!(
            one > 5.0,
            "one worker must be overloaded at 3 Gbit/s (got {one:.1}%)"
        );
        assert!(
            eight < one / 2.0,
            "8 workers ({eight:.1}%) should drop far less than 1 ({one:.1}%)"
        );
    }
}

#[cfg(test)]
mod memory_invariant_tests {
    use super::*;
    use crate::config::ScapConfig;
    use crate::kernel::ScapKernel;
    use scap_sim::{Engine, EngineConfig};
    use scap_trace::gen::{CampusMix, CampusMixConfig};

    /// Arena conservation: after a full run and finish, every allocated
    /// chunk has been released — no stream memory leaks, whatever mix of
    /// chunks, merges, flushes, evictions and terminations happened.
    #[test]
    fn arena_returns_to_empty_after_capture() {
        let trace = CampusMix::new(CampusMixConfig {
            retrans_prob: 0.02,
            reorder_prob: 0.02,
            overlap_prob: 0.01,
            ..CampusMixConfig::sized(17, 3 << 20)
        })
        .collect_all();
        let kernel = ScapKernel::new(ScapConfig {
            chunk_size: 2048,
            inactivity_timeout_ns: 500_000_000,
            flush_timeout_ns: 5_000_000,
            ..ScapConfig::default()
        });
        let mut stack = ScapSimStack::new(kernel, apps::StreamTouchApp::default());
        Engine::new(EngineConfig::default()).run(trace, &mut stack);
        assert_eq!(
            stack.kernel().memory_used_fraction(),
            0.0,
            "stream memory leaked"
        );
    }

    /// The same invariant under overload (drops, PPL, OOM paths taken).
    #[test]
    fn arena_returns_to_empty_after_overloaded_capture() {
        let trace = CampusMix::new(CampusMixConfig::sized(19, 6 << 20)).collect_all();
        let natural = scap_trace::replay::natural_rate_bps(&trace);
        let fast: Vec<Packet> =
            scap_trace::replay::RateReplay::new(trace.into_iter(), natural, 6e9).collect();
        let kernel = ScapKernel::new(ScapConfig {
            memory_bytes: 1 << 20, // deliberately tiny: force every drop path
            inactivity_timeout_ns: 500_000_000,
            flush_timeout_ns: 5_000_000,
            ..ScapConfig::default()
        });
        let mut stack = ScapSimStack::new(
            kernel,
            apps::PatternMatchApp::new(scap_patterns::AhoCorasick::new(
                &scap_patterns::builtin_web_patterns(),
                false,
            )),
        );
        let report = Engine::new(EngineConfig::default()).run(fast, &mut stack);
        assert!(report.stats.dropped_packets > 0, "overload expected");
        assert_eq!(
            stack.kernel().memory_used_fraction(),
            0.0,
            "stream memory leaked under overload"
        );
    }
}
