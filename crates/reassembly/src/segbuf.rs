//! The out-of-order segment buffer.
//!
//! Holds undelivered segments keyed by their (relative) stream offset,
//! maintaining the invariant that stored segments never overlap. Insertion
//! resolves overlaps against existing segments with the target-based
//! policy, reporting whether any conflicting bytes disagreed (the
//! evasion-detection signal).

use crate::OverlapPolicy;
use std::collections::BTreeMap;

/// Result of inserting a segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Bytes of the new segment actually stored.
    pub stored: u64,
    /// Bytes of the new segment discarded as duplicates/losers.
    pub duplicate: u64,
    /// Overlapping bytes disagreed with what was already buffered.
    pub inconsistent: bool,
}

/// Non-overlapping segment store.
#[derive(Debug, Default)]
pub struct SegmentBuffer {
    /// offset → payload; invariant: entries never overlap.
    segs: BTreeMap<u64, Vec<u8>>,
    bytes: usize,
}

impl SegmentBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered segments.
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Total buffered payload bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Lowest buffered offset.
    pub fn first_offset(&self) -> Option<u64> {
        self.segs.keys().next().copied()
    }

    /// Iterate buffered extents in ascending offset order (deterministic;
    /// used by the checkpoint serializer).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.segs.iter().map(|(off, data)| (*off, data.as_slice()))
    }

    /// Insert `data` at `offset`, resolving overlaps with `policy`.
    pub fn insert(&mut self, offset: u64, data: &[u8], policy: OverlapPolicy) -> InsertOutcome {
        let mut out = InsertOutcome::default();
        if data.is_empty() {
            return out;
        }
        let end = offset + data.len() as u64;

        // Collect existing segments overlapping [offset, end).
        let overlapping: Vec<(u64, Vec<u8>)> = {
            // A predecessor may extend into our range.
            let start_key = self
                .segs
                .range(..offset)
                .next_back()
                .filter(|(k, v)| *k + v.len() as u64 > offset)
                .map(|(k, _)| *k);
            let mut keys: Vec<u64> = self.segs.range(offset..end).map(|(k, _)| *k).collect();
            if let Some(k) = start_key {
                keys.insert(0, k);
            }
            keys.into_iter()
                .map(|k| {
                    let v = self.segs.remove(&k).expect("key just listed");
                    self.bytes -= v.len();
                    (k, v)
                })
                .collect()
        };

        // Build the winning coverage over [offset, end) plus preserved
        // old fragments outside the range.
        // Start with the new segment as a candidate everywhere, then for
        // each old segment decide who wins in the pairwise overlap.
        let mut new_keep = vec![true; data.len()]; // new byte i kept?
        for (old_off, old_data) in &overlapping {
            let old_end = old_off + old_data.len() as u64;
            let ov_start = offset.max(*old_off);
            let ov_end = end.min(old_end);
            let new_wins = policy.new_wins(offset, *old_off);
            for o in ov_start..ov_end {
                let ni = (o - offset) as usize;
                let oi = (o - old_off) as usize;
                if data[ni] != old_data[oi] {
                    out.inconsistent = true;
                }
                if !new_wins {
                    new_keep[ni] = false;
                }
            }
            // Reinsert the old fragments that the new segment does not
            // replace: the parts outside [offset,end) always survive; the
            // overlapped part survives iff old wins.
            let mut piece_start = *old_off;
            let mut piece: Vec<u8> = Vec::new();
            let flush_piece = |segs: &mut BTreeMap<u64, Vec<u8>>,
                               bytes: &mut usize,
                               start: u64,
                               p: &mut Vec<u8>| {
                if !p.is_empty() {
                    *bytes += p.len();
                    segs.insert(start, std::mem::take(p));
                }
            };
            for o in *old_off..old_end {
                let keep_old = if o < offset || o >= end {
                    true
                } else {
                    !new_wins
                };
                if keep_old {
                    if piece.is_empty() {
                        piece_start = o;
                    }
                    piece.push(old_data[(o - old_off) as usize]);
                } else {
                    flush_piece(&mut self.segs, &mut self.bytes, piece_start, &mut piece);
                }
            }
            flush_piece(&mut self.segs, &mut self.bytes, piece_start, &mut piece);
        }

        // Insert the surviving new-segment runs.
        let mut i = 0usize;
        while i < data.len() {
            if new_keep[i] {
                let run_start = i;
                while i < data.len() && new_keep[i] {
                    i += 1;
                }
                let payload = data[run_start..i].to_vec();
                out.stored += payload.len() as u64;
                self.bytes += payload.len();
                self.segs.insert(offset + run_start as u64, payload);
            } else {
                out.duplicate += 1;
                i += 1;
            }
        }
        out
    }

    /// Pop contiguous data starting exactly at `from`, advancing through
    /// any adjacent buffered segments. Each popped segment is passed to
    /// `sink(offset, bytes)`. Returns the new frontier offset.
    pub fn drain_from(&mut self, mut from: u64, mut sink: impl FnMut(u64, &[u8])) -> u64 {
        loop {
            // The last segment starting at or before `from`, if it still
            // covers `from` (segments never overlap, so it is unique).
            let key = self
                .segs
                .range(..=from)
                .next_back()
                .filter(|(k, v)| *k + v.len() as u64 > from)
                .map(|(k, _)| *k);
            let Some(k) = key else { return from };
            let v = self.segs.remove(&k).expect("key just found");
            self.bytes -= v.len();
            let skip = (from - k) as usize;
            sink(from, &v[skip..]);
            from += (v.len() - skip) as u64;
        }
    }

    /// Drop every buffered byte below `offset` (already delivered or
    /// abandoned). Returns bytes discarded.
    pub fn discard_below(&mut self, offset: u64) -> u64 {
        let mut removed = 0u64;
        let keys: Vec<u64> = self.segs.range(..offset).map(|(k, _)| *k).collect();
        for k in keys {
            let v = self.segs.remove(&k).expect("listed");
            self.bytes -= v.len();
            let end = k + v.len() as u64;
            if end > offset {
                // Tail extends past the cut: keep the tail.
                let tail = v[(offset - k) as usize..].to_vec();
                removed += (offset - k).min(v.len() as u64);
                self.bytes += tail.len();
                self.segs.insert(offset, tail);
            } else {
                removed += v.len() as u64;
            }
        }
        removed
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.segs.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn collect(buf: &mut SegmentBuffer, from: u64) -> (u64, Vec<u8>) {
        let mut got = Vec::new();
        let new_from = buf.drain_from(from, |_, d| got.extend_from_slice(d));
        (new_from, got)
    }

    #[test]
    fn disjoint_segments_stored_and_drained_in_order() {
        let mut b = SegmentBuffer::new();
        b.insert(10, b"cd", OverlapPolicy::First);
        b.insert(0, b"ab", OverlapPolicy::First);
        assert_eq!(b.len(), 2);
        assert_eq!(b.bytes(), 4);
        let (f, got) = collect(&mut b, 0);
        assert_eq!(f, 2);
        assert_eq!(got, b"ab");
        // Hole at 2..10 blocks the rest.
        assert_eq!(b.first_offset(), Some(10));
        let (f2, got2) = collect(&mut b, 10);
        assert_eq!(f2, 12);
        assert_eq!(got2, b"cd");
    }

    #[test]
    fn adjacent_segments_drain_through() {
        let mut b = SegmentBuffer::new();
        b.insert(0, b"ab", OverlapPolicy::First);
        b.insert(2, b"cd", OverlapPolicy::First);
        b.insert(4, b"ef", OverlapPolicy::First);
        let (f, got) = collect(&mut b, 0);
        assert_eq!(f, 6);
        assert_eq!(got, b"abcdef");
        assert!(b.is_empty());
    }

    #[test]
    fn exact_duplicate_is_discarded() {
        let mut b = SegmentBuffer::new();
        b.insert(0, b"abcd", OverlapPolicy::First);
        let out = b.insert(0, b"abcd", OverlapPolicy::First);
        assert_eq!(out.stored, 0);
        assert_eq!(out.duplicate, 4);
        assert!(!out.inconsistent);
        assert_eq!(b.bytes(), 4);
    }

    #[test]
    fn first_policy_keeps_old_bytes() {
        let mut b = SegmentBuffer::new();
        b.insert(0, b"AAAA", OverlapPolicy::First);
        let out = b.insert(2, b"BBBB", OverlapPolicy::First);
        assert!(out.inconsistent);
        assert_eq!(out.stored, 2); // only bytes 4..6
        let (_, got) = collect(&mut b, 0);
        assert_eq!(got, b"AAAABB");
    }

    #[test]
    fn last_policy_takes_new_bytes() {
        let mut b = SegmentBuffer::new();
        b.insert(0, b"AAAA", OverlapPolicy::Last);
        b.insert(2, b"BBBB", OverlapPolicy::Last);
        let (_, got) = collect(&mut b, 0);
        assert_eq!(got, b"AABBBB");
    }

    #[test]
    fn bsd_policy_depends_on_start() {
        // New starts before old: new wins the overlap.
        let mut b = SegmentBuffer::new();
        b.insert(2, b"OOOO", OverlapPolicy::Bsd); // covers 2..6
        b.insert(0, b"NNNNN", OverlapPolicy::Bsd); // covers 0..5, starts earlier
        let (_, got) = collect(&mut b, 0);
        assert_eq!(got, b"NNNNNO");

        // New starts at/after old start: old wins.
        let mut b = SegmentBuffer::new();
        b.insert(0, b"OOOO", OverlapPolicy::Bsd);
        b.insert(2, b"NNNN", OverlapPolicy::Bsd); // 2..6, old wins 2..4
        let (_, got) = collect(&mut b, 0);
        assert_eq!(got, b"OOOONN");
    }

    #[test]
    fn new_segment_inside_old_fragment_splits_correctly() {
        let mut b = SegmentBuffer::new();
        b.insert(0, b"XXXXXXXXXX", OverlapPolicy::Last); // 0..10
        b.insert(3, b"yyy", OverlapPolicy::Last); // replaces 3..6
        let (_, got) = collect(&mut b, 0);
        assert_eq!(got, b"XXXyyyXXXX");
        let mut b = SegmentBuffer::new();
        b.insert(0, b"XXXXXXXXXX", OverlapPolicy::First);
        let out = b.insert(3, b"yyy", OverlapPolicy::First);
        assert_eq!(out.stored, 0);
        let (_, got) = collect(&mut b, 0);
        assert_eq!(got, b"XXXXXXXXXX");
    }

    #[test]
    fn discard_below_trims_and_splits() {
        let mut b = SegmentBuffer::new();
        b.insert(0, b"abcdef", OverlapPolicy::First);
        b.insert(10, b"gh", OverlapPolicy::First);
        let removed = b.discard_below(3);
        assert_eq!(removed, 3);
        let (_, got) = collect(&mut b, 3);
        assert_eq!(got, b"def");
        assert_eq!(b.first_offset(), Some(10));
    }

    #[test]
    fn drain_from_mid_segment() {
        let mut b = SegmentBuffer::new();
        b.insert(0, b"abcdef", OverlapPolicy::First);
        // Frontier advanced past the segment start (e.g. after a skip).
        let (f, got) = collect(&mut b, 2);
        assert_eq!(f, 6);
        assert_eq!(got, b"cdef");
    }

    proptest! {
        /// Whatever the insertion order, overlap pattern, and policy,
        /// when all segments carry bytes from one consistent source
        /// stream, draining yields exactly that stream.
        #[test]
        fn consistent_source_reassembles_exactly(
            source in proptest::collection::vec(any::<u8>(), 30..200),
            cuts in proptest::collection::vec((0usize..200, 1usize..40), 1..30),
            policy_idx in 0usize..6,
            shuffle_seed: u64,
        ) {
            let policy = [
                OverlapPolicy::First, OverlapPolicy::Last, OverlapPolicy::Bsd,
                OverlapPolicy::Windows, OverlapPolicy::Solaris, OverlapPolicy::Linux,
            ][policy_idx];
            // Build segments covering the whole source plus random extras.
            let mut segments: Vec<(u64, Vec<u8>)> = Vec::new();
            let mut off = 0usize;
            while off < source.len() {
                let len = (7 + off % 13).min(source.len() - off);
                segments.push((off as u64, source[off..off+len].to_vec()));
                off += len;
            }
            for (start, len) in cuts {
                let s = start.min(source.len().saturating_sub(1));
                let e = (s + len).min(source.len());
                if e > s {
                    segments.push((s as u64, source[s..e].to_vec()));
                }
            }
            // Deterministic shuffle.
            let mut order: Vec<usize> = (0..segments.len()).collect();
            let mut st = shuffle_seed;
            for i in (1..order.len()).rev() {
                st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
                order.swap(i, (st as usize) % (i + 1));
            }
            let mut b = SegmentBuffer::new();
            let mut inconsistent = false;
            for &i in &order {
                let (o, d) = &segments[i];
                let out = b.insert(*o, d, policy);
                inconsistent |= out.inconsistent;
            }
            prop_assert!(!inconsistent, "consistent source flagged inconsistent");
            let mut got = Vec::new();
            let end = b.drain_from(0, |_, d| got.extend_from_slice(d));
            prop_assert_eq!(end as usize, source.len());
            prop_assert_eq!(got, source);
        }
    }
}
