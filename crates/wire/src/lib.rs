#![warn(missing_docs)]

//! # scap-wire
//!
//! Typed, zero-copy wire-format views and packet builders for the Scap
//! reproduction.
//!
//! The design follows the smoltcp idiom: a *view* type (e.g. [`Ipv4Packet`])
//! wraps a byte slice and exposes checked, typed accessors for every header
//! field. Views never allocate; parsing is a bounds/shape check performed by
//! `new_checked`, after which field accessors are infallible. Builders
//! ([`builder`]) construct well-formed packets for the synthetic traffic
//! generator and the test suites.
//!
//! The crate also provides the TCP sequence-number arithmetic ([`seq`])
//! and the canonical bidirectional flow key ([`FlowKey`]) that the flow
//! table, NIC RSS/FDIR emulation and reassembly engine all share.

pub mod builder;
pub mod checksum;
pub mod ethernet;
pub mod flow_key;
pub mod icmp;
pub mod ipv4;
pub mod ipv6;
pub mod seq;
pub mod tcp;
pub mod udp;

pub use builder::PacketBuilder;
pub use ethernet::{EtherType, EthernetFrame, MacAddr};
pub use flow_key::{splitmix64, Direction, FlowKey, IpAddrBytes, Transport};
pub use icmp::IcmpPacket;
pub use ipv4::Ipv4Packet;
pub use ipv6::Ipv6Packet;
pub use seq::{seq_add, seq_diff, seq_ge, seq_gt, seq_le, seq_lt, SeqNum};
pub use tcp::{TcpFlags, TcpOption, TcpPacket};
pub use udp::UdpPacket;

/// Errors produced while parsing wire formats.
///
/// Parsing is deliberately strict: monitoring code must never panic on
/// malformed input, so every shape violation maps to a distinct variant
/// that callers can count and report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header of the protocol.
    Truncated,
    /// A length field points beyond the end of the buffer.
    BadLength,
    /// A version/field value is not the one expected by this parser.
    BadVersion,
    /// Header length field smaller than the minimum legal header.
    BadHeaderLen,
    /// Checksum verification failed (only reported by explicit verify calls).
    BadChecksum,
    /// The protocol is not one this crate understands.
    Unsupported,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            WireError::Truncated => "buffer truncated",
            WireError::BadLength => "length field out of range",
            WireError::BadVersion => "unexpected protocol version",
            WireError::BadHeaderLen => "illegal header length",
            WireError::BadChecksum => "checksum mismatch",
            WireError::Unsupported => "unsupported protocol",
        };
        f.write_str(s)
    }
}

impl std::error::Error for WireError {}

/// Convenience result alias for wire parsing.
pub type Result<T> = core::result::Result<T, WireError>;

/// IP protocol numbers used throughout the workspace.
pub mod ip_proto {
    /// ICMP (1).
    pub const ICMP: u8 = 1;
    /// TCP (6).
    pub const TCP: u8 = 6;
    /// UDP (17).
    pub const UDP: u8 = 17;
    /// ICMPv6 (58).
    pub const ICMPV6: u8 = 58;
}

/// A fully parsed packet: the layered views decoded from one frame.
///
/// This is the "cooked" form the capture stacks consume. It borrows the
/// original frame, so decoding performs no copies; offsets locate the
/// transport payload inside the frame for later extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedPacket<'a> {
    /// The entire L2 frame.
    pub frame: &'a [u8],
    /// Ethernet type of the L3 payload.
    pub ethertype: EtherType,
    /// Canonicalized flow key, if the packet has an L4 header we understand.
    pub key: Option<FlowKey>,
    /// IP protocol number (6 = TCP, 17 = UDP, ...), if L3 parsed.
    pub ip_proto: Option<u8>,
    /// Offset of the transport payload within `frame`.
    pub payload_off: usize,
    /// Length of the transport payload in bytes.
    pub payload_len: usize,
    /// TCP-specific fields, when the packet is TCP.
    pub tcp: Option<TcpMeta>,
}

/// The TCP header fields the monitoring stacks need, copied out of the view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpMeta {
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl<'a> ParsedPacket<'a> {
    /// Transport payload bytes of the packet (empty for pure-ACK segments).
    pub fn payload(&self) -> &'a [u8] {
        &self.frame[self.payload_off..self.payload_off + self.payload_len]
    }

    /// True when the packet is a TCP segment.
    pub fn is_tcp(&self) -> bool {
        self.ip_proto == Some(ip_proto::TCP)
    }

    /// True when the packet is a UDP datagram.
    pub fn is_udp(&self) -> bool {
        self.ip_proto == Some(ip_proto::UDP)
    }
}

/// Decode an Ethernet frame down to its transport payload.
///
/// Returns a [`ParsedPacket`] describing every layer that could be decoded.
/// Unknown upper layers are not an error: the result simply carries less
/// information (e.g. `key == None`), matching how a capture stack treats
/// non-IP traffic (counted, never reassembled).
pub fn parse_frame(frame: &[u8]) -> Result<ParsedPacket<'_>> {
    let eth = EthernetFrame::new_checked(frame)?;
    let ethertype = eth.ethertype();
    let l3_off = EthernetFrame::HEADER_LEN;

    match ethertype {
        EtherType::Ipv4 => {
            let ip = Ipv4Packet::new_checked(&frame[l3_off..])?;
            let proto = ip.protocol();
            let l4_off = l3_off + ip.header_len();
            // Honour the IP total-length field: the frame may carry padding.
            let l3_total = ip.total_len() as usize;
            if l3_total < ip.header_len() {
                return Err(WireError::BadLength);
            }
            let l4_len = l3_total - ip.header_len();
            if l3_off + l3_total > frame.len() {
                return Err(WireError::BadLength);
            }
            parse_transport(
                frame,
                ethertype,
                proto,
                l4_off,
                l4_len,
                IpPair::V4(ip.src_addr(), ip.dst_addr()),
            )
        }
        EtherType::Ipv6 => {
            let ip = Ipv6Packet::new_checked(&frame[l3_off..])?;
            let proto = ip.next_header();
            let l4_off = l3_off + Ipv6Packet::HEADER_LEN;
            let l4_len = ip.payload_len() as usize;
            if l4_off + l4_len > frame.len() {
                return Err(WireError::BadLength);
            }
            parse_transport(
                frame,
                ethertype,
                proto,
                l4_off,
                l4_len,
                IpPair::V6(ip.src_addr(), ip.dst_addr()),
            )
        }
        _ => Ok(ParsedPacket {
            frame,
            ethertype,
            key: None,
            ip_proto: None,
            payload_off: l3_off,
            payload_len: frame.len().saturating_sub(l3_off),
            tcp: None,
        }),
    }
}

enum IpPair {
    V4([u8; 4], [u8; 4]),
    V6([u8; 16], [u8; 16]),
}

fn parse_transport(
    frame: &[u8],
    ethertype: EtherType,
    proto: u8,
    l4_off: usize,
    l4_len: usize,
    ips: IpPair,
) -> Result<ParsedPacket<'_>> {
    let l4 = &frame[l4_off..l4_off + l4_len];
    let (key, payload_off, payload_len, tcp) = match proto {
        ip_proto::TCP => {
            let t = TcpPacket::new_checked(l4)?;
            let meta = TcpMeta {
                seq: t.seq_number(),
                ack: t.ack_number(),
                flags: t.flags(),
                window: t.window(),
            };
            let key = make_key(&ips, Transport::Tcp, t.src_port(), t.dst_port());
            (
                Some(key),
                l4_off + t.header_len(),
                l4_len - t.header_len(),
                Some(meta),
            )
        }
        ip_proto::UDP => {
            let u = UdpPacket::new_checked(l4)?;
            let key = make_key(&ips, Transport::Udp, u.src_port(), u.dst_port());
            let plen = (u.length() as usize)
                .checked_sub(UdpPacket::HEADER_LEN)
                .ok_or(WireError::BadLength)?;
            if UdpPacket::HEADER_LEN + plen > l4_len {
                return Err(WireError::BadLength);
            }
            (Some(key), l4_off + UdpPacket::HEADER_LEN, plen, None)
        }
        _ => (None, l4_off, l4_len, None),
    };
    Ok(ParsedPacket {
        frame,
        ethertype,
        key,
        ip_proto: Some(proto),
        payload_off,
        payload_len,
        tcp,
    })
}

fn make_key(ips: &IpPair, transport: Transport, sport: u16, dport: u16) -> FlowKey {
    match ips {
        IpPair::V4(s, d) => FlowKey::new_v4(*s, *d, sport, dport, transport),
        IpPair::V6(s, d) => FlowKey::new_v6(*s, *d, sport, dport, transport),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_frame_rejects_short_buffers() {
        assert_eq!(parse_frame(&[0u8; 4]), Err(WireError::Truncated));
    }

    #[test]
    fn parse_tcp_frame_roundtrip() {
        let payload = b"GET / HTTP/1.1\r\n";
        let frame = PacketBuilder::tcp_v4(
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            1234,
            80,
            1000,
            2000,
            TcpFlags::ACK | TcpFlags::PSH,
            payload,
        );
        let p = parse_frame(&frame).unwrap();
        assert!(p.is_tcp());
        assert_eq!(p.payload(), payload);
        let meta = p.tcp.unwrap();
        assert_eq!(meta.seq, 1000);
        assert_eq!(meta.ack, 2000);
        assert!(meta.flags.contains(TcpFlags::PSH));
        let key = p.key.unwrap();
        assert_eq!(key.src_port(), 1234);
        assert_eq!(key.dst_port(), 80);
    }

    #[test]
    fn parse_udp_frame_roundtrip() {
        let frame = PacketBuilder::udp_v4([192, 168, 1, 1], [8, 8, 8, 8], 5353, 53, b"dns-query");
        let p = parse_frame(&frame).unwrap();
        assert!(p.is_udp());
        assert_eq!(p.payload(), b"dns-query");
    }

    #[test]
    fn parse_frame_honours_ip_total_len_padding() {
        // Ethernet frames are padded to 60 bytes; payload extraction must
        // follow the IP total-length field, not the frame length.
        let mut frame = PacketBuilder::udp_v4([1, 1, 1, 1], [2, 2, 2, 2], 10, 20, b"x");
        while frame.len() < 60 {
            frame.push(0xAA);
        }
        let p = parse_frame(&frame).unwrap();
        assert_eq!(p.payload(), b"x");
    }

    #[test]
    fn non_ip_frames_have_no_key() {
        let mut frame = vec![0u8; 60];
        frame[12] = 0x08;
        frame[13] = 0x06; // ARP
        let p = parse_frame(&frame).unwrap();
        assert_eq!(p.ethertype, EtherType::Arp);
        assert!(p.key.is_none());
    }
}
