//! Work receipts and the calibrated cost model.
//!
//! Every capture stack reports what it *did* (counts of structural
//! operations); this module is the only place where counts become CPU
//! cycles. One table serves all stacks, so performance differences in
//! the experiments come from *structure* (which copies happen, at which
//! privilege level, with what locality) — the paper's actual argument —
//! not from per-stack fudge factors.
//!
//! ## Calibration
//!
//! Constants are anchored to the paper's testbed (2 GHz Xeon cores) via
//! its stated operating points, using the trace's ≈ 840-byte mean packet:
//!
//! * Libnids-class user-level reassembly saturates one core at
//!   ≈ 2.5 Gbit/s of flow export (Fig. 3b): per-packet libpcap+tracking
//!   cost ≈ 1.9 k cycles plus ≈ 3.5 cycles/byte of touch+copy.
//! * A single-threaded Aho-Corasick consumer saturates at ≈ 1 Gbit/s on
//!   Scap and ≈ 0.75 Gbit/s on user-level stacks (Fig. 6a): scan cost
//!   ≈ 15 cycles/byte; the baselines additionally pay their copy tax.
//! * FDIR filter updates complete "within no more than 10 µs" (§2.1);
//!   the update path itself is charged 1 µs (2 k cycles).
//!
//! Absolute Gbit/s values in our outputs depend on these constants; the
//! *shape* of every figure (who wins, where the knees fall) depends only
//! on the structural differences, which is what EXPERIMENTS.md compares.

/// A receipt of structural work performed by a stack. All fields are
/// plain counts; `Work` values add together.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Work {
    // ---- kernel (softirq) side ----
    /// Packets entering the driver / softirq path.
    pub k_packets: u64,
    /// Bytes copied by kernel code (ring writes, stream-buffer writes).
    pub k_bytes_copied: u64,
    /// Bytes of header examined without copying.
    pub k_bytes_touched: u64,
    /// Flow-table probes.
    pub k_hash_probes: u64,
    /// Events enqueued to user level.
    pub k_events: u64,
    /// NIC filter insertions/removals (10 µs each on real hardware).
    pub k_fdir_ops: u64,
    /// Timer/expiration bookkeeping operations.
    pub k_timer_ops: u64,
    // ---- fast path (poll-mode bypass) ----
    /// Poll-mode burst pulls (ring doorbell + prefetch, amortized over
    /// the whole burst instead of per packet).
    pub fp_bursts: u64,
    /// Packets dispatched through the batched fast path (replaces the
    /// per-packet `k_packets` softirq entry charge).
    pub fp_packets: u64,
    // ---- user side ----
    /// Packets handed to user code (libpcap-style per-packet path).
    pub u_packets: u64,
    /// poll()/recv() style syscalls.
    pub u_syscalls: u64,
    /// Bytes copied by user code (user-level reassembly).
    pub u_bytes_copied: u64,
    /// Bytes read by user code without copying (stream consumption).
    pub u_bytes_touched: u64,
    /// Bytes run through pattern matching.
    pub u_bytes_scanned: u64,
    /// Events dequeued and dispatched to callbacks.
    pub u_events: u64,
    /// User-level flow-tracking bookkeeping operations (per packet).
    pub u_tracking_ops: u64,
    // ---- cache model (optional) ----
    /// L2 misses attributed to kernel-side touches.
    pub k_cache_misses: u64,
    /// L2 misses attributed to user-side touches.
    pub u_cache_misses: u64,
}

impl Work {
    /// Sum two receipts.
    pub fn add(&mut self, other: &Work) {
        self.k_packets += other.k_packets;
        self.k_bytes_copied += other.k_bytes_copied;
        self.k_bytes_touched += other.k_bytes_touched;
        self.k_hash_probes += other.k_hash_probes;
        self.k_events += other.k_events;
        self.k_fdir_ops += other.k_fdir_ops;
        self.k_timer_ops += other.k_timer_ops;
        self.fp_bursts += other.fp_bursts;
        self.fp_packets += other.fp_packets;
        self.u_packets += other.u_packets;
        self.u_syscalls += other.u_syscalls;
        self.u_bytes_copied += other.u_bytes_copied;
        self.u_bytes_touched += other.u_bytes_touched;
        self.u_bytes_scanned += other.u_bytes_scanned;
        self.u_events += other.u_events;
        self.u_tracking_ops += other.u_tracking_ops;
        self.k_cache_misses += other.k_cache_misses;
        self.u_cache_misses += other.u_cache_misses;
    }
}

/// The cycle-cost table. See the module docs for calibration anchors.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Core clock (cycles per second of simulated time).
    pub core_hz: f64,
    /// Driver + softirq entry per packet.
    pub cyc_k_packet: f64,
    /// Kernel copy, per byte (stream-locality path).
    pub cyc_k_byte_copy: f64,
    /// Kernel header touch, per byte.
    pub cyc_k_byte_touch: f64,
    /// Flow-table probe.
    pub cyc_k_hash_probe: f64,
    /// Event enqueue + wakeup.
    pub cyc_k_event: f64,
    /// NIC filter update (the 82599 bound is "within 10 µs"; the
    /// update itself is a short register sequence, ~1 µs).
    pub cyc_k_fdir_op: f64,
    /// Timer list maintenance.
    pub cyc_k_timer_op: f64,
    /// Poll-mode burst pull: ring doorbell, descriptor scan, prefetch
    /// for the whole burst (paid once per burst, not per packet).
    pub cyc_fp_burst: f64,
    /// Batched dispatch per packet: parse + staged pipeline work with
    /// the softirq entry, wakeup, and per-packet copy amortized away.
    pub cyc_fp_packet: f64,
    /// Per-packet user receive path (libpcap dispatch).
    pub cyc_u_packet: f64,
    /// poll()/recvmmsg-style syscall.
    pub cyc_u_syscall: f64,
    /// User-level copy, per byte (interleaved-buffer locality).
    pub cyc_u_byte_copy: f64,
    /// User read of delivered data, per byte.
    pub cyc_u_byte_touch: f64,
    /// Pattern matching, per byte.
    pub cyc_u_byte_scan: f64,
    /// Event dequeue + callback dispatch.
    pub cyc_u_event: f64,
    /// User-level flow tracking per packet (hash, alloc, bookkeeping).
    pub cyc_u_tracking_op: f64,
    /// L2 miss penalty (either side).
    pub cyc_cache_miss: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            core_hz: 2.0e9,
            cyc_k_packet: 600.0,
            cyc_k_byte_copy: 1.0,
            cyc_k_byte_touch: 0.4,
            cyc_k_hash_probe: 150.0,
            cyc_k_event: 400.0,
            cyc_k_fdir_op: 2_000.0,
            cyc_k_timer_op: 120.0,
            cyc_fp_burst: 600.0,
            cyc_fp_packet: 150.0,
            cyc_u_packet: 350.0,
            cyc_u_syscall: 400.0,
            cyc_u_byte_copy: 2.5,
            cyc_u_byte_touch: 1.0,
            cyc_u_byte_scan: 15.0,
            cyc_u_event: 300.0,
            cyc_u_tracking_op: 2400.0,
            cyc_cache_miss: 60.0,
        }
    }
}

impl CostModel {
    /// Kernel-side cycles of a receipt.
    pub fn kernel_cycles(&self, w: &Work) -> f64 {
        w.k_packets as f64 * self.cyc_k_packet
            + w.k_bytes_copied as f64 * self.cyc_k_byte_copy
            + w.k_bytes_touched as f64 * self.cyc_k_byte_touch
            + w.k_hash_probes as f64 * self.cyc_k_hash_probe
            + w.k_events as f64 * self.cyc_k_event
            + w.k_fdir_ops as f64 * self.cyc_k_fdir_op
            + w.k_timer_ops as f64 * self.cyc_k_timer_op
            + w.fp_bursts as f64 * self.cyc_fp_burst
            + w.fp_packets as f64 * self.cyc_fp_packet
            + w.k_cache_misses as f64 * self.cyc_cache_miss
    }

    /// User-side cycles of a receipt.
    pub fn user_cycles(&self, w: &Work) -> f64 {
        w.u_packets as f64 * self.cyc_u_packet
            + w.u_syscalls as f64 * self.cyc_u_syscall
            + w.u_bytes_copied as f64 * self.cyc_u_byte_copy
            + w.u_bytes_touched as f64 * self.cyc_u_byte_touch
            + w.u_bytes_scanned as f64 * self.cyc_u_byte_scan
            + w.u_events as f64 * self.cyc_u_event
            + w.u_tracking_ops as f64 * self.cyc_u_tracking_op
            + w.u_cache_misses as f64 * self.cyc_cache_miss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receipts_add() {
        let mut a = Work {
            k_packets: 1,
            u_bytes_scanned: 10,
            ..Default::default()
        };
        let b = Work {
            k_packets: 2,
            u_bytes_scanned: 5,
            k_events: 1,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.k_packets, 3);
        assert_eq!(a.u_bytes_scanned, 15);
        assert_eq!(a.k_events, 1);
    }

    #[test]
    fn cycles_scale_linearly() {
        let m = CostModel::default();
        let w = Work {
            k_packets: 10,
            ..Default::default()
        };
        let w2 = Work {
            k_packets: 20,
            ..Default::default()
        };
        assert!((m.kernel_cycles(&w2) - 2.0 * m.kernel_cycles(&w)).abs() < 1e-9);
        assert_eq!(m.user_cycles(&w), 0.0);
    }

    /// The calibration anchor: a Libnids-class stack saturates one 2 GHz
    /// core near 2.5 Gbit/s of 840-byte packets.
    #[test]
    fn libnids_anchor_saturates_near_2_5_gbit() {
        let m = CostModel::default();
        let rate_bytes = 2.5e9 / 8.0;
        let pkts = rate_bytes / 840.0;
        let w = Work {
            u_packets: pkts as u64,
            u_syscalls: pkts as u64,
            u_tracking_ops: pkts as u64,
            u_bytes_touched: rate_bytes as u64,
            u_bytes_copied: rate_bytes as u64,
            ..Default::default()
        };
        let util = m.user_cycles(&w) / m.core_hz;
        assert!(
            (0.8..1.25).contains(&util),
            "libnids anchor utilization {util:.2} out of band"
        );
    }

    /// The pattern-matching anchor: AC scanning alone saturates one core
    /// near 1 Gbit/s.
    #[test]
    fn scan_anchor_saturates_near_1_gbit() {
        let m = CostModel::default();
        let rate_bytes = 1.0e9 / 8.0;
        let w = Work {
            u_bytes_scanned: rate_bytes as u64,
            ..Default::default()
        };
        let util = m.user_cycles(&w) / m.core_hz;
        assert!(
            (0.8..1.15).contains(&util),
            "scan anchor utilization {util:.2} out of band"
        );
    }
}
